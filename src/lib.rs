//! # cac — a conflict-avoiding cache
//!
//! A complete reproduction of **Topham, González & González, "The Design
//! and Performance of a Conflict-Avoiding Cache" (MICRO-30, 1997)**:
//! pseudo-random cache indexing with irreducible-polynomial-modulus
//! (I-Poly) hash functions over GF(2), evaluated with a cache simulator
//! and a trace-driven out-of-order superscalar processor model.
//!
//! This meta-crate re-exports the workspace members:
//!
//! * [`gf2`] — GF(2) polynomial arithmetic, irreducibility, XOR-tree
//!   synthesis ([`cac_gf2`]).
//! * [`core`] — the placement functions (`a2`, `a2-Hx-Sk`, `a2-Hp`,
//!   `a2-Hp-Sk`), hole model, address predictor, latency model
//!   ([`cac_core`]).
//! * [`sim`] — single-level and two-level virtual-real cache simulators,
//!   column-associative/victim organizations, 3C miss classification
//!   ([`cac_sim`]).
//! * [`trace`] — address/instruction trace generators, including the
//!   synthetic SPEC95 workload models used by the paper reproduction
//!   ([`cac_trace`]).
//! * [`cpu`] — the 4-way out-of-order superscalar model of the paper's §4
//!   ([`cac_cpu`]).
//! * [`interleave`] — the banked-memory simulator in which polynomial
//!   placement was invented (Rau \[18\]\[19\]), reproducing its
//!   stride-insensitivity results ([`cac_interleave`]).
//!
//! # Quick start
//!
//! ```
//! use cac::core::{CacheGeometry, IndexSpec};
//! use cac::sim::Cache;
//!
//! // The paper's 8KB 2-way cache with skewed I-Poly indexing.
//! let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
//! let mut cache = Cache::build(geom, IndexSpec::ipoly_skewed())?;
//!
//! // A power-of-two stride that devastates a conventional cache is
//! // conflict-free here.
//! for _round in 0..10 {
//!     for i in 0..64u64 {
//!         cache.read(i * 4096);
//!     }
//! }
//! assert_eq!(cache.stats().misses, 64); // compulsory only
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cac_core as core;
pub use cac_cpu as cpu;
pub use cac_gf2 as gf2;
pub use cac_interleave as interleave;
pub use cac_sim as sim;
pub use cac_trace as trace;

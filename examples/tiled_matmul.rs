//! Tiled matrix multiply: the conclusion of the paper argues that an
//! I-Poly cache "would eliminate the need to compute conflict-free tile
//! dimensions" when tiling for locality.
//!
//! This example generates the address trace of a tiled `C += A * B` over
//! double-precision matrices whose leading dimension is a power of two —
//! the worst case for conventional indexing — and compares miss ratios
//! across tile sizes.
//!
//! Run with: `cargo run --release --example tiled_matmul`

use cac::core::{CacheGeometry, IndexSpec};
use cac::sim::cache::Cache;

const N: u64 = 128; // matrix dimension
const ELEM: u64 = 8; // f64
const LD: u64 = 128; // leading dimension (power of two => pathological)

const A_BASE: u64 = 0x0010_0000;
const B_BASE: u64 = 0x0090_0000; // bases 8MB apart, congruent mod 4KB
const C_BASE: u64 = 0x0110_0000;

fn elem(base: u64, row: u64, col: u64) -> u64 {
    base + (row * LD + col) * ELEM
}

/// Emits the loads/stores of a tiled matmul into `sink`.
fn tiled_matmul(tile: u64, mut sink: impl FnMut(u64, bool)) {
    for ii in (0..N).step_by(tile as usize) {
        for kk in (0..N).step_by(tile as usize) {
            for jj in (0..N).step_by(tile as usize) {
                for i in ii..(ii + tile).min(N) {
                    for k in kk..(kk + tile).min(N) {
                        sink(elem(A_BASE, i, k), false);
                        for j in jj..(jj + tile).min(N) {
                            sink(elem(B_BASE, k, j), false);
                            sink(elem(C_BASE, i, j), false);
                            sink(elem(C_BASE, i, j), true);
                        }
                    }
                }
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    println!("tiled {N}x{N} f64 matmul, leading dimension {LD} (power of two), {geom}");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "tile", "conventional", "ipoly-skew", "speedup"
    );
    for tile in [8u64, 16, 32, 64] {
        let mut conv = Cache::build(geom, IndexSpec::modulo())?;
        let mut poly = Cache::build(geom, IndexSpec::ipoly_skewed())?;
        tiled_matmul(tile, |addr, w| {
            conv.access(addr, w);
        });
        tiled_matmul(tile, |addr, w| {
            poly.access(addr, w);
        });
        let (mc, mp) = (conv.stats().miss_ratio(), poly.stats().miss_ratio());
        println!(
            "{tile:>6} {:>13.2}% {:>13.2}% {:>9.2}x",
            mc * 100.0,
            mp * 100.0,
            mc / mp.max(1e-9)
        );
    }
    println!("\nwith I-Poly the tile size barely matters; with conventional");
    println!("indexing the programmer must tune tiles around the conflicts.");
    Ok(())
}

//! 2D FFT: the column pass as a conflict-miss showcase.
//!
//! A 2D FFT applies a 1D transform to every row, then to every column.
//! Rows are contiguous and behave under any placement. Columns are
//! strided by the matrix *pitch* — for a power-of-two matrix, a
//! power-of-two stride. One column's working set (128 blocks here) fits
//! in the cache many times over, and each of the `log2 n` butterfly
//! stages revisits it, so the column transform should run from cache.
//! Under conventional placement the pitch folds the whole column onto two
//! sets and every stage thrashes; under I-Poly the column spreads and the
//! reuse survives — the paper's fundamental stride result (§2.1.2) acting
//! on real signal-processing structure.
//!
//! Run with: `cargo run --release --example fft_butterfly [log2_n]`

use cac::core::{CacheGeometry, IndexSpec};
use cac::sim::cache::Cache;
use cac::trace::patterns::FftButterfly;
use cac::trace::MemRef;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log2_n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let n = 1u64 << log2_n; // matrix is n x n complex doubles
    let elem = 16u64;
    let pitch = n * elem;
    let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    println!("2D FFT over a {n}x{n} complex matrix (pitch {pitch}B), cache {geom}\n");

    let run = |spec: IndexSpec, refs: &[MemRef]| -> Result<f64, cac::core::Error> {
        let mut cache = Cache::build(geom, spec)?;
        for r in refs {
            cache.access(r.addr, r.is_write);
        }
        Ok(cache.stats().miss_ratio() * 100.0)
    };

    // Row pass: n transforms over contiguous rows.
    let rows: Vec<MemRef> = (0..n)
        .flat_map(|r| {
            FftButterfly::new(r * pitch, log2_n, elem)
                .full_transform()
                .collect::<Vec<_>>()
        })
        .collect();
    // Column pass: n transforms strided by the pitch.
    let cols: Vec<MemRef> = (0..n)
        .flat_map(|c| {
            FftButterfly::new(c * elem, log2_n, pitch)
                .full_transform()
                .collect::<Vec<_>>()
        })
        .collect();

    println!("{:<12} {:>12} {:>12}", "pass", "conv miss%", "ipoly miss%");
    for (name, refs) in [("rows", &rows), ("columns", &cols)] {
        println!(
            "{name:<12} {:>12.2} {:>12.2}",
            run(IndexSpec::modulo(), refs)?,
            run(IndexSpec::ipoly_skewed(), refs)?
        );
    }

    println!(
        "\nThe row pass is contiguous: both placements stream it identically.\n\
         The column pass strides by the pitch: one column fits in cache with room\n\
         to spare, and its {log2_n} butterfly stages reuse it — but conventional\n\
         placement folds the column onto two sets and loses all of that reuse.\n\
         The traditional fix is padding the pitch; the I-Poly cache needs none."
    );
    Ok(())
}

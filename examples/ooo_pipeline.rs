//! Drive the out-of-order processor model on one synthetic SPEC95
//! workload and print the paper's seven configurations side by side.
//!
//! Run with: `cargo run --release --example ooo_pipeline [benchmark] [ops]`
//! (default: tomcatv, 100000 instructions).

use cac::core::IndexSpec;
use cac::cpu::{CpuConfig, Processor};
use cac::trace::spec::SpecBenchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tomcatv".into());
    let ops: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let bench = SpecBenchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))?;

    println!("benchmark {name}, {ops} instructions per configuration\n");
    let configs: Vec<(&str, CpuConfig)> = vec![
        ("conv 16KB", CpuConfig::paper_16kb(IndexSpec::modulo())?),
        ("conv 8KB", CpuConfig::paper_baseline(IndexSpec::modulo())?),
        (
            "conv 8KB + pred",
            CpuConfig::paper_baseline(IndexSpec::modulo())?.with_address_prediction(),
        ),
        (
            "ipoly 8KB (XOR hidden)",
            CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())?,
        ),
        (
            "ipoly 8KB (XOR in CP)",
            CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())?.with_xor_in_critical_path(),
        ),
        (
            "ipoly 8KB (CP + pred)",
            CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())?
                .with_xor_in_critical_path()
                .with_address_prediction(),
        ),
    ];
    println!(
        "{:<24} {:>6} {:>8} {:>9} {:>10} {:>10}",
        "configuration", "IPC", "miss%", "br-acc%", "ROB-stall", "violations"
    );
    for (label, config) in configs {
        let mut cpu = Processor::new(config)?;
        let stats = cpu.run(bench.generator(7), ops);
        println!(
            "{label:<24} {:>6.3} {:>8.2} {:>9.1} {:>10} {:>10}",
            stats.ipc(),
            stats.load_miss_ratio_pct(),
            stats.branch_accuracy() * 100.0,
            stats.rob_stall_cycles,
            stats.memory_violations
        );
    }
    let row = bench.paper_row();
    println!(
        "\npaper reference: conv16 IPC {:.2}, conv8 {:.2}, ipoly {:.2} (miss {:.2}% -> {:.2}%)",
        row.conv16_ipc, row.conv8_ipc, row.ipoly_ipc, row.conv8_miss, row.ipoly_miss
    );
    Ok(())
}

//! Multicore sharing: holes from external coherency actions.
//!
//! §3.3 of the paper lists three causes of L1 holes in the two-level
//! virtual-real hierarchy. The third — invalidations from other
//! processors — is dismissed in one sentence: they "occur regardless of
//! the cache architecture". This example builds a little 2-core system
//! and lets you watch that argument play out: a producer core writes a
//! buffer, a consumer core reads it, and every handoff punches coherence
//! holes in the consumer's L1 — exactly as many under I-Poly indexing as
//! under conventional indexing.
//!
//! Run with: `cargo run --release --example multicore_sharing`

use cac::core::{CacheGeometry, IndexSpec};
use cac::sim::coherence::SnoopingBus;
use cac::sim::hierarchy::TwoLevelHierarchy;
use cac::sim::vm::PageMapper;

const BUFFER: u64 = 0x10_0000; // shared 2KB buffer: 64 blocks
const BLOCKS: u64 = 64;

fn system(l1_spec: IndexSpec) -> Result<SnoopingBus, Box<dyn std::error::Error>> {
    let node = || -> Result<TwoLevelHierarchy, cac::core::Error> {
        TwoLevelHierarchy::new(
            CacheGeometry::new(8 * 1024, 32, 2)?,
            l1_spec.clone(),
            CacheGeometry::new(256 * 1024, 32, 2)?,
            IndexSpec::modulo(),
            PageMapper::identity(),
        )
    };
    Ok(SnoopingBus::new(vec![node()?, node()?])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("producer/consumer handoff over a snooping bus, 64-block shared buffer\n");
    println!(
        "{:<22} {:>14} {:>16} {:>16} {:>14}",
        "L1 indexing", "consumer miss%", "coher holes (P)", "coher holes (C)", "snoop hit%"
    );

    for (name, spec) in [
        ("conventional", IndexSpec::modulo()),
        ("skewed I-Poly", IndexSpec::ipoly_skewed()),
    ] {
        let mut bus = system(spec)?;
        const PRODUCER: usize = 0;
        const CONSUMER: usize = 1;

        for _round in 0..128 {
            // Producer fills the buffer (write-through; each write
            // invalidates the consumer's stale copy).
            for b in 0..BLOCKS {
                bus.write(PRODUCER, BUFFER + b * 32).unwrap();
            }
            // Consumer walks the buffer; every block is a coherence miss.
            for b in 0..BLOCKS {
                bus.read(CONSUMER, BUFFER + b * 32).unwrap();
            }
            // Consumer also does private work between handoffs.
            for i in 0..32u64 {
                bus.read(CONSUMER, (1 << 33) + i * 4096).unwrap();
            }
        }

        assert!(bus.check_invariants(), "inclusion must hold");
        println!(
            "{name:<22} {:>14.2} {:>16} {:>16} {:>14.1}",
            bus.node(CONSUMER).unwrap().l1_stats().miss_ratio() * 100.0,
            bus.node(PRODUCER)
                .unwrap()
                .stats()
                .external_invalidations_l1,
            bus.node(CONSUMER)
                .unwrap()
                .stats()
                .external_invalidations_l1,
            bus.stats().snoop_hit_rate() * 100.0,
        );
    }

    println!(
        "\nThe consumer's coherence holes are essentially identical under both index\n\
         functions (the tiny gap is conventional indexing's own conflict evictions\n\
         removing a few shared blocks before the invalidation arrives): sharing\n\
         misses are a property of the access pattern, not the placement. What\n\
         I-Poly changes is only the *conflict* component of the miss ratio —\n\
         visible here in the private-work part of the consumer's traffic."
    );
    Ok(())
}

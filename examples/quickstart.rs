//! Quickstart: build a conflict-avoiding (I-Poly indexed) cache, run a
//! pathological strided workload against it and a conventional cache, and
//! print the difference.
//!
//! Run with: `cargo run --release --example quickstart`

use cac::core::{CacheGeometry, IndexSpec};
use cac::sim::cache::Cache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's primary configuration: 8KB, 2-way, 32-byte blocks.
    let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    println!("cache geometry : {geom}");

    let mut conventional = Cache::build(geom, IndexSpec::modulo())?;
    let mut ipoly = Cache::build(geom, IndexSpec::ipoly_skewed())?;
    println!(
        "index functions: {} vs {}",
        conventional.index_fn().label(),
        ipoly.index_fn().label()
    );

    // A classic pathological pattern: a vector whose elements sit 4KB
    // apart (a power-of-two stride), swept repeatedly. Under conventional
    // indexing every element maps to the same pair of sets.
    let elements: Vec<u64> = (0..64).map(|i| i * 4096).collect();
    for _pass in 0..16 {
        for &addr in &elements {
            conventional.read(addr);
            ipoly.read(addr);
        }
    }

    println!("\nafter 16 sweeps of 64 elements at a 4KB stride:");
    println!(
        "  conventional: {:5.1}% miss ratio  ({} misses)",
        conventional.stats().miss_ratio() * 100.0,
        conventional.stats().misses
    );
    println!(
        "  I-Poly      : {:5.1}% miss ratio  ({} misses — compulsory only)",
        ipoly.stats().miss_ratio() * 100.0,
        ipoly.stats().misses
    );

    // The polynomial behind the magic.
    println!("\nwhy: the skewed I-Poly cache indexes way 0 with A(x) mod P0(x)");
    println!("and way 1 with A(x) mod P1(x), P0 != P1 irreducible over GF(2),");
    println!("which provably spreads every power-of-two stride (Rau 1991).");
    Ok(())
}

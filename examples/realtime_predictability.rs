//! Real-time predictability: the paper's §5 argues that I-Poly's real
//! value is *predictable* cache behaviour — pathological miss ratios
//! cannot occur, so worst-case execution time bounds tighten.
//!
//! This example measures the spread (min / mean / max / standard
//! deviation) of miss ratios across many randomly-parameterised strided
//! tasks, per placement function. A real-time architect cares about the
//! max and the spread, not the mean.
//!
//! Run with: `cargo run --release --example realtime_predictability [tasks]`

use cac::core::{CacheGeometry, IndexSpec};
use cac::sim::cache::Cache;
use cac::trace::kernels::ArrayWalk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    println!("{tasks} random strided tasks on {geom}\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "min%", "mean%", "max%", "stddev"
    );
    for spec in [
        IndexSpec::modulo(),
        IndexSpec::xor_skewed(),
        IndexSpec::ipoly_skewed(),
    ] {
        let mut ratios = Vec::new();
        let mut state = 0x1234_5678_9abc_def1u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..tasks {
            // A task: repeated sweeps over a vector with a random stride
            // and a random base — the kind of loop a real-time system
            // schedules periodically.
            let stride = 1 + rng() % 512;
            let base = (rng() % (1 << 20)) & !7;
            let walk = ArrayWalk::strided(base, 64, 8, stride);
            let mut cache = Cache::build(geom, spec.clone())?;
            for pass in 0..8u64 {
                for i in 0..64u64 {
                    cache.read(walk.addr(pass * 64 + i));
                }
            }
            ratios.push(cache.stats().miss_ratio() * 100.0);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        let min = ratios.iter().cloned().fold(100.0f64, f64::min);
        let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / ratios.len() as f64;
        println!(
            "{:<10} {min:>8.1} {mean:>8.1} {max:>8.1} {:>8.2}",
            spec.name(),
            var.sqrt()
        );
    }
    println!("\nthe skewed I-Poly cache clamps the worst case: no task can hit a");
    println!("pathological stride, which is what makes WCET analysis tractable.");
    Ok(())
}

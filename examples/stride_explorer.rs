//! Stride explorer: a miniature of the paper's Figure 1 experiment.
//!
//! Sweeps vector strides and prints, for each placement function, which
//! strides are pathological. Optional arguments: max stride (default
//! 256) and passes (default 8).
//!
//! Run with: `cargo run --release --example stride_explorer [max] [passes]`

use cac::core::{CacheGeometry, IndexSpec};
use cac::sim::cache::Cache;
use cac::trace::stride::VectorStride;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let passes: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    let schemes = [
        IndexSpec::modulo(),
        IndexSpec::xor_skewed(),
        IndexSpec::ipoly(),
        IndexSpec::ipoly_skewed(),
    ];

    println!("miss ratio by stride (64-element 8-byte vector, {passes} passes, {geom})");
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>9}",
        "stride", "a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"
    );
    let mut worst = vec![(0.0f64, 0u64); schemes.len()];
    for stride in 1..=max {
        let ratios: Vec<f64> = schemes
            .iter()
            .map(|spec| {
                let mut cache = Cache::build(geom, spec.clone()).expect("cache");
                for r in VectorStride::paper_figure1(stride, passes) {
                    cache.read(r.addr);
                }
                cache.stats().miss_ratio()
            })
            .collect();
        for (w, &r) in worst.iter_mut().zip(&ratios) {
            if r > w.0 {
                *w = (r, stride);
            }
        }
        // Print only the interesting rows: any scheme above 30%.
        if ratios.iter().any(|&r| r > 0.3) {
            println!(
                "{stride:>7} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                ratios[0] * 100.0,
                ratios[1] * 100.0,
                ratios[2] * 100.0,
                ratios[3] * 100.0
            );
        }
    }
    println!("\nworst stride per scheme:");
    for (spec, (ratio, stride)) in schemes.iter().zip(&worst) {
        println!(
            "  {:<10} {:5.1}% at stride {}",
            spec.name(),
            ratio * 100.0,
            stride
        );
    }
    Ok(())
}

//! Interleaved memory: the setting where polynomial placement was born.
//!
//! Before it was a cache index, the I-Poly hash was a *bank-selection*
//! function for interleaved memories (Rau, "Pseudo-Randomly Interleaved
//! Memories", ISCA 1991 — reference [19] of the paper). This example
//! replays the classic vector experiment: stream a strided vector through
//! a banked memory and watch what each selection function does to
//! sustained bandwidth.
//!
//! Run with: `cargo run --release --example interleaved_memory`

use cac::core::IndexSpec;
use cac::interleave::{stride_sweep, summarize, BankConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A vector-machine-flavoured memory: 16 banks of 8-byte words, each
    // bank busy for 6 cycles per access. Peak bandwidth is one access per
    // cycle whenever requests spread over at least 6 banks.
    let cfg = BankConfig::new(16, 8, 6)?;
    println!(
        "memory: {} banks, {}B words, busy {} cycles, per-bank buffer {}\n",
        cfg.banks(),
        cfg.word(),
        cfg.busy_time(),
        cfg.buffer_depth()
    );

    // The three protagonists of the paper's related-work story.
    let selectors = [
        ("modulo (conventional)", IndexSpec::modulo()),
        ("prime (Lawrie-Vora)", IndexSpec::prime()),
        ("ipoly (Rau)", IndexSpec::ipoly()),
    ];

    println!("bandwidth by stride (peak = 1.00):");
    println!(
        "{:>8} {:>22} {:>22} {:>22}",
        "stride", "modulo", "prime", "ipoly"
    );
    let sweeps: Vec<_> = selectors
        .iter()
        .map(|(_, spec)| stride_sweep(cfg, spec.clone(), 64, 1024))
        .collect::<Result<_, _>>()?;

    // Print the interesting strides: powers of two (modulo's downfall),
    // multiples of the prime (its downfall), and a few controls.
    for &stride in &[1u64, 2, 3, 4, 8, 13, 16, 26, 31, 32, 64] {
        let cells: Vec<String> = sweeps
            .iter()
            .map(|sweep| {
                let r = &sweep[(stride - 1) as usize];
                let bar = "#".repeat((r.bandwidth * 16.0).round() as usize);
                format!("{:>5.2} {bar:<16}", r.bandwidth)
            })
            .collect();
        println!("{stride:>8} {}", cells.join(" "));
    }

    println!("\nsweep summary over all strides 1..=64 (degraded = bandwidth < 0.5):");
    for ((name, _), sweep) in selectors.iter().zip(&sweeps) {
        let s = summarize(sweep, 0.5);
        println!(
            "  {name:<24} min {:.3}  mean {:.3}  degraded {:>2}/64",
            s.min_bandwidth, s.mean_bandwidth, s.degraded
        );
    }

    println!(
        "\nThe cache paper imports exactly this property: what a bank conflict is to\n\
         a vector machine, a conflict miss is to a cache. The same hash that keeps\n\
         all 2^k strides conflict-free across banks keeps them conflict-free\n\
         across cache sets (paper section 2.1.2)."
    );
    Ok(())
}

//! Replaying external traces: the hook for the paper's real methodology.
//!
//! The original evaluation ran captured SPEC95 traces; this repository
//! substitutes synthetic models, but any externally captured trace in the
//! simple text format of `cac::trace::io` can be replayed against the
//! full stack. This example demonstrates the round trip: it synthesises a
//! trace, writes it to a file, reads it back as a stream, and drives both
//! the cache simulator and the out-of-order processor from the file —
//! which is exactly what you would do with a trace captured by a Pin or
//! QEMU plugin.
//!
//! Run with: `cargo run --release --example trace_replay [path]`
//! (with a path argument, replays *your* trace file instead).

use cac::core::{CacheGeometry, IndexSpec};
use cac::cpu::{CpuConfig, Processor};
use cac::sim::cache::Cache;
use cac::trace::io::{read_trace, write_trace};
use cac::trace::spec::SpecBenchmark;
use cac::trace::TraceOp;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ops: Vec<TraceOp> = match std::env::args().nth(1) {
        Some(path) => {
            println!("replaying external trace {path}");
            read_trace(File::open(&path)?).collect::<Result<_, _>>()?
        }
        None => {
            // No trace supplied: synthesise one, write it out, read it
            // back — proving the file format carries everything the
            // simulators need.
            let path = std::env::temp_dir().join("cac_demo_trace.txt");
            let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(7).take(60_000).collect();
            write_trace(BufWriter::new(File::create(&path)?), ops.iter().copied())?;
            println!(
                "wrote {} ops to {} ({} bytes), reading back...",
                ops.len(),
                path.display(),
                std::fs::metadata(&path)?.len()
            );
            let back: Vec<TraceOp> = read_trace(File::open(&path)?).collect::<Result<_, _>>()?;
            assert_eq!(back, ops, "round trip must be lossless");
            back
        }
    };

    let loads = ops.iter().filter(|o| o.is_load()).count();
    let stores = ops.iter().filter(|o| o.is_store()).count();
    let branches = ops.iter().filter(|o| o.is_branch()).count();
    println!(
        "trace: {} ops ({loads} loads, {stores} stores, {branches} branches)\n",
        ops.len()
    );

    // Cache-only replay.
    let geom = CacheGeometry::new(8 * 1024, 32, 2)?;
    println!("{:<22} {:>12} {:>12}", "", "conv", "ipoly-skew");
    let mut miss = Vec::new();
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        let mut cache = Cache::build(geom, spec)?;
        for r in ops.iter().filter_map(|o| o.mem_ref()) {
            cache.access(r.addr, r.is_write);
        }
        miss.push(cache.stats().read_miss_ratio() * 100.0);
    }
    println!(
        "{:<22} {:>11.2}% {:>11.2}%",
        "load miss ratio", miss[0], miss[1]
    );

    // Full processor replay.
    let mut ipc = Vec::new();
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        let mut cpu = Processor::new(CpuConfig::paper_baseline(spec)?)?;
        let stats = cpu.run(ops.iter().copied(), ops.len() as u64);
        ipc.push(stats.ipc());
    }
    println!("{:<22} {:>12.3} {:>12.3}", "IPC", ipc[0], ipc[1]);

    println!(
        "\nAny tool that can print one line per instruction can feed this pipeline;\n\
         see cac::trace::io for the five-field format."
    );
    Ok(())
}

//! Property-based tests for GF(2) polynomial arithmetic and XOR-tree
//! synthesis.

use cac_gf2::irreducible::{self, is_irreducible};
use cac_gf2::{BitMatrix, Poly, XorTree};
use proptest::prelude::*;

/// Arbitrary polynomial with degree < 64.
fn poly64() -> impl Strategy<Value = Poly> {
    any::<u64>().prop_map(|b| Poly::from_bits(b as u128))
}

/// Arbitrary non-zero polynomial with degree < 32 (safe divisor).
fn divisor32() -> impl Strategy<Value = Poly> {
    (1u64..u32::MAX as u64).prop_map(|b| Poly::from_bits(b as u128))
}

proptest! {
    #[test]
    fn addition_commutative_associative(a in poly64(), b in poly64(), c in poly64()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + a, Poly::ZERO);
    }

    #[test]
    fn multiplication_commutative(a in poly64(), b in poly64()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_distributes(a in poly64(), b in poly64(), c in poly64()) {
        // (a + b) * c == a*c + b*c; degrees stay < 128 because all inputs
        // have degree < 64.
        prop_assert_eq!((a + b) * c, a * c + b * c);
    }

    #[test]
    fn degree_of_product_adds(a in poly64(), b in poly64()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let d = a.degree().unwrap() + b.degree().unwrap();
        prop_assert_eq!((a * b).degree(), Some(d));
    }

    #[test]
    fn divmod_invariant(a in poly64(), d in divisor32()) {
        let (q, r) = a.divmod(d);
        prop_assert_eq!(q * d + r, a);
        if let Some(dr) = r.degree() {
            prop_assert!(dr < d.degree().unwrap());
        }
    }

    #[test]
    fn rem_is_idempotent(a in poly64(), d in divisor32()) {
        prop_assume!(d.degree().unwrap() >= 1);
        let r = a.rem(d);
        prop_assert_eq!(r.rem(d), r);
    }

    #[test]
    fn rem_is_linear(a in poly64(), b in poly64(), d in divisor32()) {
        prop_assume!(d.degree().unwrap() >= 1);
        prop_assert_eq!((a + b).rem(d), a.rem(d) + b.rem(d));
    }

    #[test]
    fn mulmod_matches_mul_then_rem(a in any::<u32>(), b in any::<u32>(), d in divisor32()) {
        prop_assume!(d.degree().unwrap() >= 1);
        let (pa, pb) = (Poly::from_bits(a as u128), Poly::from_bits(b as u128));
        prop_assert_eq!(pa.mulmod(pb, d), (pa * pb).rem(d));
    }

    #[test]
    fn gcd_divides_both(a in divisor32(), b in divisor32()) {
        let g = a.gcd(b);
        prop_assert!(a.rem(g).is_zero());
        prop_assert!(b.rem(g).is_zero());
    }

    #[test]
    fn gcd_commutative(a in poly64(), b in poly64()) {
        prop_assert_eq!(a.gcd(b), b.gcd(a));
    }

    #[test]
    fn xor_tree_agrees_with_division(addr in any::<u64>(), degree in 2u32..12, width in 12u32..40) {
        let p = irreducible::default_poly(degree);
        let tree = XorTree::new(p, width);
        let masked = addr & ((1u64 << width) - 1);
        let expected = Poly::from_bits(masked as u128).rem(p).bits() as u64;
        prop_assert_eq!(tree.apply(addr), expected);
    }

    #[test]
    fn xor_tree_is_linear(a in any::<u64>(), b in any::<u64>(), degree in 2u32..10) {
        let p = irreducible::default_poly(degree);
        let tree = XorTree::new(p, 32);
        prop_assert_eq!(tree.apply(a) ^ tree.apply(b), tree.apply(a ^ b));
    }

    #[test]
    fn irreducibles_have_no_small_factors(degree in 3u32..12, seed in any::<u64>()) {
        // Pick a pseudo-random irreducible of the degree and verify no
        // divisor of degree 1..=2 divides it.
        let all: Vec<Poly> = irreducible::irreducibles(degree).collect();
        let f = all[(seed % all.len() as u64) as usize];
        for dbits in 2u128..8 {
            let d = Poly::from_bits(dbits);
            prop_assert!(!f.rem(d).is_zero(), "{} divides {}", d, f);
        }
    }

    #[test]
    fn product_of_irreducibles_is_reducible(i in 0usize..18, j in 0usize..18) {
        let sevens: Vec<Poly> = irreducible::irreducibles(7).collect();
        let f = sevens[i % sevens.len()] * sevens[j % sevens.len()];
        prop_assert!(!is_irreducible(f));
    }

    #[test]
    fn matrix_rank_bounded(rows in proptest::collection::vec(any::<u16>(), 1..8)) {
        let n = rows.len() as u32;
        let m = BitMatrix::from_rows(rows.iter().map(|&r| r as u64).collect(), 16);
        let rank = m.rank();
        prop_assert!(rank <= n.min(16));
    }

    #[test]
    fn matrix_apply_linear(rows in proptest::collection::vec(any::<u16>(), 1..8),
                           a in any::<u16>(), b in any::<u16>()) {
        let m = BitMatrix::from_rows(rows.iter().map(|&r| r as u64).collect(), 16);
        prop_assert_eq!(
            m.apply(a as u64) ^ m.apply(b as u64),
            m.apply((a ^ b) as u64)
        );
    }
}

//! Irreducibility testing and irreducible-polynomial enumeration.
//!
//! The paper requires the modulus `P(x)` to be irreducible "for best
//! performance" (§2.1.1). Rau's analysis of pseudo-randomly interleaved
//! memories shows that irreducible moduli make all `2^k`-strided sequences
//! conflict-free, which is the property Figure 1 of the paper demonstrates.
//!
//! Irreducibility is decided with **Rabin's test**: a polynomial `f` of
//! degree `n` over GF(2) is irreducible iff
//!
//! 1. `f` divides `x^(2^n) − x`  (equivalently `x^(2^n) ≡ x (mod f)`), and
//! 2. `gcd(x^(2^(n/q)) − x mod f, f) = 1` for every prime divisor `q` of `n`.

use crate::poly::Poly;

/// Maximum polynomial degree accepted by the functions in this module.
///
/// Cache indices never need more than this many bits (a degree-40 modulus
/// would index a terabyte-scale direct-mapped cache).
pub const MAX_DEGREE: u32 = 40;

/// Returns the prime divisors of `n` in increasing order (empty for `n <= 1`).
fn prime_divisors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Tests whether `f` is irreducible over GF(2) using Rabin's test.
///
/// Constant polynomials (degree 0) and the zero polynomial are not
/// irreducible. Degree-1 polynomials (`x`, `x + 1`) are irreducible.
///
/// # Panics
///
/// Panics if `deg(f) >` [`MAX_DEGREE`].
///
/// # Example
///
/// ```
/// use cac_gf2::{Poly, irreducible::is_irreducible};
///
/// assert!(is_irreducible(Poly::from_bits(0b1011)));   // x^3 + x + 1
/// assert!(!is_irreducible(Poly::from_bits(0b1001)));  // x^3 + 1 = (x+1)(x^2+x+1)
/// ```
pub fn is_irreducible(f: Poly) -> bool {
    let n = match f.degree() {
        None | Some(0) => return false,
        Some(n) => n,
    };
    assert!(
        n <= MAX_DEGREE,
        "degree {n} exceeds MAX_DEGREE {MAX_DEGREE}"
    );
    if n == 1 {
        return true;
    }
    // An irreducible polynomial of degree >= 2 must have a non-zero constant
    // term (else x divides it) and odd weight (else x+1 divides it: f(1)=0).
    if f.coeff(0) == 0 || f.weight().is_multiple_of(2) {
        return false;
    }
    // Rabin condition 1: x^(2^n) == x (mod f).
    if Poly::x_pow_pow2_mod(n, f) != Poly::X {
        return false;
    }
    // Rabin condition 2: for each prime divisor q of n,
    // gcd(x^(2^(n/q)) - x, f) == 1.
    for q in prime_divisors(n) {
        let h = Poly::x_pow_pow2_mod(n / q, f) + Poly::X;
        if f.gcd(h) != Poly::ONE {
            return false;
        }
    }
    true
}

/// Iterator over all irreducible polynomials of a fixed degree, in
/// increasing order of their bit representation.
///
/// Created by [`irreducibles`].
#[derive(Debug, Clone)]
pub struct Irreducibles {
    degree: u32,
    // Candidate low bits (below the leading monomial); polynomials with an
    // even constant term are skipped cheaply inside `next`.
    next_low: u128,
    end_low: u128,
}

/// Returns an iterator over every irreducible polynomial of exactly
/// `degree`, smallest bit-pattern first.
///
/// # Panics
///
/// Panics if `degree == 0` or `degree >` [`MAX_DEGREE`].
///
/// # Example
///
/// ```
/// use cac_gf2::irreducible::irreducibles;
///
/// // The three irreducible cubics and quartics over GF(2):
/// let cubics: Vec<u128> = irreducibles(3).map(|p| p.bits()).collect();
/// assert_eq!(cubics, vec![0b1011, 0b1101]);
/// assert_eq!(irreducibles(4).count(), 3);
/// ```
pub fn irreducibles(degree: u32) -> Irreducibles {
    assert!(degree >= 1, "degree must be at least 1");
    assert!(
        degree <= MAX_DEGREE,
        "degree {degree} exceeds MAX_DEGREE {MAX_DEGREE}"
    );
    Irreducibles {
        degree,
        next_low: 0,
        end_low: 1u128 << degree,
    }
}

impl Iterator for Irreducibles {
    type Item = Poly;

    fn next(&mut self) -> Option<Poly> {
        while self.next_low < self.end_low {
            let candidate = Poly::from_bits((1u128 << self.degree) | self.next_low);
            self.next_low += 1;
            if is_irreducible(candidate) {
                return Some(candidate);
            }
        }
        None
    }
}

/// The default modulus polynomial for a given number of index bits: the
/// lexicographically-first irreducible polynomial of that degree.
///
/// This mirrors the paper's setup, where the modulus degree `m` equals the
/// number of cache-index bits (e.g. degree 7 for the 128-set, 8KB 2-way
/// cache of the evaluation).
///
/// # Panics
///
/// Panics if `degree == 0` or `degree >` [`MAX_DEGREE`].
///
/// # Example
///
/// ```
/// use cac_gf2::default_poly;
/// assert_eq!(default_poly(7).to_terms(), "x^7 + x + 1");
/// ```
pub fn default_poly(degree: u32) -> Poly {
    irreducibles(degree)
        .next()
        .expect("an irreducible polynomial exists for every degree >= 1")
}

/// A family of `ways` *distinct* irreducible polynomials of the same degree,
/// used to skew the index functions of a multi-way cache (paper §2.1.1:
/// "If we choose to use distinct values for each `P_i` the cache will be
/// skewed").
///
/// # Panics
///
/// Panics if `degree` is out of range, or if fewer than `ways` irreducible
/// polynomials of that degree exist (for degree ≥ 3 there are always at
/// least 2; the count grows roughly as `2^n / n`).
///
/// # Example
///
/// ```
/// use cac_gf2::default_skew_set;
/// let ps = default_skew_set(7, 2);
/// assert_eq!(ps.len(), 2);
/// assert_ne!(ps[0], ps[1]);
/// ```
pub fn default_skew_set(degree: u32, ways: usize) -> Vec<Poly> {
    let set: Vec<Poly> = irreducibles(degree).take(ways).collect();
    assert!(
        set.len() == ways,
        "only {} irreducible polynomials of degree {degree} exist, {ways} requested",
        set.len()
    );
    set
}

/// The distinct prime factors of `n` (`n >= 2`), by trial division —
/// ample for the `MAX_DEGREE`-bounded group orders used here.
fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Iterates over the primitive polynomials of a degree, in ascending bit
/// order.
///
/// # Panics
///
/// Panics if `degree == 0` or `degree >` [`MAX_DEGREE`].
///
/// # Example
///
/// ```
/// use cac_gf2::irreducible::primitives;
///
/// // φ(2^4 − 1)/4 = φ(15)/4 = 2 primitive quartics.
/// assert_eq!(primitives(4).count(), 2);
/// ```
pub fn primitives(degree: u32) -> impl Iterator<Item = Poly> {
    irreducibles(degree).filter(|&p| is_primitive(p))
}

/// Counts the irreducible polynomials of a given degree.
///
/// By the necklace-counting formula this is
/// `(1/n) * Σ_{d | n} μ(n/d) 2^d`; the function simply enumerates, and the
/// unit tests check it against the formula for small degrees.
pub fn count_irreducibles(degree: u32) -> usize {
    irreducibles(degree).count()
}

/// Returns the multiplicative order of `x` modulo `f`, i.e. the smallest
/// `e >= 1` with `x^e ≡ 1 (mod f)`, or `None` if no such `e` exists
/// (which happens iff `x` divides `f`).
///
/// For an irreducible `f` of degree `n`, the order always divides
/// `2^n − 1`; `f` is *primitive* iff the order equals `2^n − 1`.
///
/// # Panics
///
/// Panics if `deg(f) < 1` or `deg(f) > 24` (the scan is linear in the order,
/// so larger degrees would be unreasonably slow).
pub fn order_of_x(f: Poly) -> Option<u64> {
    let n = f.degree().expect("zero modulus");
    assert!((1..=24).contains(&n), "order_of_x supports degrees 1..=24");
    if f.coeff(0) == 0 {
        return None; // x | f, so x is nilpotent mod f, never 1.
    }
    let limit = (1u64 << n) - 1;
    let mut acc = Poly::X.rem(f);
    for e in 1..=limit {
        if acc == Poly::ONE {
            return Some(e);
        }
        acc = acc.mulmod(Poly::X, f);
    }
    if acc == Poly::ONE {
        Some(limit)
    } else {
        None
    }
}

/// Tests whether `f` is **primitive**: irreducible with `x` generating
/// the whole multiplicative group of GF(2^n), i.e. `x` has order
/// `2^n − 1` modulo `f`.
///
/// Rau's pseudo-random interleaving paper \[19\] works with primitive
/// polynomials; the cache paper only requires irreducibility ("for best
/// performance P will be an irreducible polynomial"). The distinction
/// matters for sequence-period arguments: modulo a primitive polynomial
/// the powers `x^0, x^1, …` cycle through *every* non-zero residue.
///
/// The test checks `x^((2^n−1)/q) ≠ 1` for every prime factor `q` of
/// `2^n − 1`, so it runs in `O(n · #factors)` field multiplications and,
/// unlike [`order_of_x`], covers every degree up to [`MAX_DEGREE`].
///
/// Returns `false` for reducible polynomials.
///
/// # Panics
///
/// Panics if `deg(f) >` [`MAX_DEGREE`].
///
/// # Example
///
/// ```
/// use cac_gf2::{irreducible::is_primitive, Poly};
///
/// // x^4 + x + 1 is primitive; x^4 + x^3 + x^2 + x + 1 is irreducible
/// // but x has order 5 there, so it is not primitive.
/// assert!(is_primitive(Poly::from_bits(0b10011)));
/// assert!(!is_primitive(Poly::from_bits(0b11111)));
/// ```
pub fn is_primitive(f: Poly) -> bool {
    let n = match f.degree() {
        None | Some(0) => return false,
        Some(n) => n,
    };
    if !is_irreducible(f) {
        return false;
    }
    if n == 1 {
        // GF(2): the multiplicative group is trivial; both degree-1
        // polynomials are conventionally primitive.
        return true;
    }
    let group_order = (1u64 << n) - 1;
    let x = Poly::X;
    prime_factors(group_order)
        .into_iter()
        .all(|q| x.powmod(group_order / q, f) != Poly::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitivity_of_small_polynomials() {
        // Degree 3: 2^3 - 1 = 7 is prime, so both irreducible cubics are
        // primitive.
        assert_eq!(primitives(3).count(), 2);
        // Degree 4: x^4+x+1 and x^4+x^3+1 are primitive; x^4+x^3+x^2+x+1
        // divides x^5 - 1, so x has order 5 and it is not.
        let quartics: Vec<u128> = primitives(4).map(Poly::bits).collect();
        assert_eq!(quartics, vec![0b10011, 0b11001]);
        assert!(!is_primitive(Poly::from_bits(0b11111)));
        // Reducible polynomials are never primitive.
        assert!(!is_primitive(Poly::from_bits(0b1001))); // x^3 + 1 = (x+1)(x^2+x+1)
    }

    #[test]
    fn primitive_counts_match_euler_phi_over_degree() {
        // #primitive(m) = φ(2^m − 1) / m.
        fn phi(mut n: u64) -> u64 {
            let mut result = n;
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    result -= result / d;
                    while n.is_multiple_of(d) {
                        n /= d;
                    }
                }
                d += 1;
            }
            if n > 1 {
                result -= result / n;
            }
            result
        }
        for m in 2u32..=10 {
            let expected = phi((1 << m) - 1) / u64::from(m);
            assert_eq!(
                primitives(m).count() as u64,
                expected,
                "degree {m} primitive count"
            );
        }
    }

    #[test]
    fn paper_polynomials_are_primitive() {
        // The degree-7 minimum-fan-in selection x^7 + x + 1 happens to be
        // primitive, matching Rau's original construction.
        assert!(is_primitive(Poly::from_bits(0b1000_0011)));
    }

    #[test]
    fn prime_factor_helper() {
        assert_eq!(prime_factors(127), vec![127]);
        assert_eq!(prime_factors(255), vec![3, 5, 17]);
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(12), vec![2, 3]);
    }

    #[test]
    fn degree_one_and_trivial_cases() {
        assert!(is_irreducible(Poly::X)); // x
        assert!(is_irreducible(Poly::from_bits(0b11))); // x + 1
        assert!(!is_irreducible(Poly::ZERO));
        assert!(!is_irreducible(Poly::ONE));
    }

    #[test]
    fn known_irreducibles() {
        for bits in [
            0b111u128,     // x^2+x+1
            0b1011,        // x^3+x+1
            0b1101,        // x^3+x^2+1
            0b10011,       // x^4+x+1
            0b100101,      // x^5+x^2+1
            0b1000011,     // x^6+x+1
            0b10000011,    // x^7+x+1
            0b100011011,   // x^8+x^4+x^3+x+1 (AES polynomial)
            0b10000001001, // x^10+x^3+1
        ] {
            assert!(is_irreducible(Poly::from_bits(bits)), "{bits:#b}");
        }
    }

    #[test]
    fn known_reducibles() {
        for bits in [
            0b100u128,    // x^2
            0b101,        // x^2+1 = (x+1)^2
            0b110,        // x^2+x = x(x+1)
            0b1001,       // x^3+1 = (x+1)(x^2+x+1)
            0b1111,       // x^3+x^2+x+1 = (x+1)(x^2+1)
            0b10101,      // x^4+x^2+1 = (x^2+x+1)^2
            0b100000001,  // x^8+1 = (x+1)^8
            0b1000000001, // x^9+1
        ] {
            assert!(!is_irreducible(Poly::from_bits(bits)), "{bits:#b}");
        }
    }

    /// Brute-force irreducibility check by trial division.
    fn is_irreducible_naive(f: Poly) -> bool {
        let n = match f.degree() {
            None | Some(0) => return false,
            Some(1) => return true,
            Some(n) => n,
        };
        for dbits in 2u128..(1u128 << (n / 2 + 1)) {
            let d = Poly::from_bits(dbits);
            if d.degree().unwrap_or(0) >= 1 && f.rem(d).is_zero() {
                return false;
            }
        }
        true
    }

    #[test]
    fn rabin_matches_trial_division_exhaustively_up_to_degree_10() {
        for bits in 2u128..(1u128 << 11) {
            let f = Poly::from_bits(bits);
            assert_eq!(
                is_irreducible(f),
                is_irreducible_naive(f),
                "mismatch for {bits:#b} = {f}"
            );
        }
    }

    #[test]
    fn counts_match_necklace_formula() {
        // Number of irreducible polynomials of degree n over GF(2):
        // n: 1  2  3  4  5  6   7   8   9   10
        //    2  1  2  3  6  9  18  30  56   99
        let expected = [2, 1, 2, 3, 6, 9, 18, 30, 56, 99];
        for (i, &want) in expected.iter().enumerate() {
            let n = (i + 1) as u32;
            assert_eq!(count_irreducibles(n), want, "degree {n}");
        }
    }

    #[test]
    fn default_polys_for_cache_sized_degrees() {
        // All degrees a realistic cache would use must yield a valid modulus.
        for degree in 1..=16 {
            let p = default_poly(degree);
            assert_eq!(p.degree(), Some(degree));
            assert!(is_irreducible(p));
        }
        // Degree 7 (128 sets) is the paper's primary configuration.
        assert_eq!(default_poly(7).bits(), 0b10000011);
    }

    #[test]
    fn skew_sets_are_distinct_and_irreducible() {
        // Degree 5 is the smallest with >= 4 irreducible polynomials (6).
        for degree in 5..=12 {
            let set = default_skew_set(degree, 4);
            assert_eq!(set.len(), 4);
            for (i, &p) in set.iter().enumerate() {
                assert!(is_irreducible(p));
                assert_eq!(p.degree(), Some(degree));
                for &q in &set[i + 1..] {
                    assert_ne!(p, q);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "degree must be at least 1")]
    fn irreducibles_rejects_degree_zero() {
        let _ = irreducibles(0);
    }

    #[test]
    fn order_and_primitivity() {
        // x^3 + x + 1 is primitive: order of x is 7.
        assert_eq!(order_of_x(Poly::from_bits(0b1011)), Some(7));
        assert!(is_primitive(Poly::from_bits(0b1011)));
        // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive:
        // x has order 5, not 15.
        let f = Poly::from_bits(0b11111);
        assert!(is_irreducible(f));
        assert_eq!(order_of_x(f), Some(5));
        assert!(!is_primitive(f));
        // x^2 (x divides f): no order.
        assert_eq!(order_of_x(Poly::from_bits(0b100)), None);
    }

    #[test]
    fn prime_divisor_helper() {
        assert_eq!(prime_divisors(1), Vec::<u32>::new());
        assert_eq!(prime_divisors(2), vec![2]);
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(30), vec![2, 3, 5]);
        assert_eq!(prime_divisors(49), vec![7]);
        assert_eq!(prime_divisors(97), vec![97]);
    }
}

//! XOR-tree synthesis of the polynomial-modulus hash.
//!
//! `A(x) mod P(x)` is linear over GF(2) in the coefficients of `A`, so the
//! map from `v` input (block-address) bits to `m = deg(P)` index bits can be
//! precomputed as `m` bit-masks: index bit `i` is the XOR (parity) of the
//! input bits selected by `mask_i`. This is precisely the hardware structure
//! the paper describes in §3: *"bit 0 of the cache index may be computed as
//! the exclusive-OR of bits 0, 11, 14, and 19 of the original address"*,
//! and §3.4's claim that fan-in never exceeds 5 for the polynomials used in
//! the evaluation is checked by [`XorTree::max_fan_in`].

use crate::matrix::BitMatrix;
use crate::poly::Poly;

/// A synthesised XOR tree computing `A(x) mod P(x)` on `v` input bits.
///
/// Construction is `O(v)` polynomial reductions; application is `m`
/// mask-and-parity operations, independent of the polynomial.
///
/// # Example
///
/// ```
/// use cac_gf2::{Poly, XorTree, default_poly};
///
/// let p = default_poly(7);
/// let tree = XorTree::new(p, 14);
/// // The tree agrees with long division for every input.
/// let a = 0x2b57u64;
/// assert_eq!(tree.apply(a), Poly::from_bits(a as u128).rem(p).bits() as u64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorTree {
    poly: Poly,
    input_bits: u32,
    output_bits: u32,
    /// `masks[i]` selects the input bits XOR-ed to produce index bit `i`.
    masks: Vec<u64>,
}

impl XorTree {
    /// Synthesises the XOR tree for modulus `poly` over `input_bits` input
    /// bits.
    ///
    /// `input_bits` is the paper's `v`: the number of low block-address bits
    /// fed to the hash. For the evaluation in the paper, `v = 14` block
    /// address bits (19 address bits minus the 5-bit block offset).
    ///
    /// # Panics
    ///
    /// Panics if `poly` has degree 0 (or is zero), or if
    /// `input_bits > 64`.
    pub fn new(poly: Poly, input_bits: u32) -> Self {
        let m = poly.degree().expect("modulus must be non-zero");
        assert!(m >= 1, "modulus must have degree >= 1");
        assert!(input_bits <= 64, "at most 64 input bits supported");
        let mut masks = vec![0u64; m as usize];
        // x^j mod P contributes its coefficient i to mask_i at input bit j.
        let mut xj = Poly::ONE; // x^0
        for j in 0..input_bits {
            let reduced = xj.rem(poly);
            for (i, mask) in masks.iter_mut().enumerate() {
                if reduced.coeff(i as u32) == 1 {
                    *mask |= 1u64 << j;
                }
            }
            xj = if j + 1 < input_bits {
                // Maintain x^{j+1} reduced to keep degrees small.
                reduced.mulmod(Poly::X, poly)
            } else {
                reduced
            };
        }
        XorTree {
            poly,
            input_bits,
            output_bits: m,
            masks,
        }
    }

    /// The modulus polynomial this tree implements.
    #[inline]
    pub fn poly(&self) -> Poly {
        self.poly
    }

    /// Number of input bits (`v`).
    #[inline]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Number of output (index) bits (`m = deg(P)`).
    #[inline]
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// The input-bit selection mask of output bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= output_bits`.
    #[inline]
    pub fn mask(&self, i: u32) -> u64 {
        self.masks[i as usize]
    }

    /// Applies the hash: each output bit is the parity of the masked input.
    ///
    /// Input bits at or beyond [`XorTree::input_bits`] are ignored, mirroring
    /// hardware that simply does not wire them in.
    #[inline]
    pub fn apply(&self, input: u64) -> u64 {
        let mut out = 0u64;
        for (i, &mask) in self.masks.iter().enumerate() {
            out |= (((input & mask).count_ones() & 1) as u64) << i;
        }
        out
    }

    /// Synthesises the full lookup table of this hash over the low `bits`
    /// input bits: entry `a` is `self.apply(a)` for every
    /// `a < 2^bits`.
    ///
    /// Because the hash is GF(2)-linear, the table is built incrementally
    /// in `O(2^bits)` word operations — each entry XORs the contribution
    /// of its lowest set bit into the entry with that bit cleared —
    /// instead of `O(2^bits · m)` mask-and-popcount evaluations. This is
    /// the construction the LUT-compiled placement functions
    /// (`cac_core::index::IndexTable`) rely on to make cache construction
    /// cheap enough for large sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 26` (a 256 MiB table — almost certainly a bug)
    /// or `bits > input_bits` (entries beyond the wired inputs would all
    /// alias).
    pub fn apply_table(&self, bits: u32) -> Vec<u32> {
        assert!(bits <= 26, "table over {bits} bits is unreasonably large");
        assert!(
            bits <= self.input_bits,
            "table bits {bits} exceed wired input bits {}",
            self.input_bits
        );
        // Contribution of each single input bit.
        let unit: Vec<u32> = (0..bits).map(|j| self.apply(1u64 << j) as u32).collect();
        let mut table = vec![0u32; 1usize << bits];
        for a in 1..table.len() {
            let low = a.trailing_zeros();
            table[a] = table[a & (a - 1)] ^ unit[low as usize];
        }
        table
    }

    /// Fan-in of the XOR gate producing output bit `i` (number of input
    /// bits wired into it).
    ///
    /// # Panics
    ///
    /// Panics if `i >= output_bits`.
    #[inline]
    pub fn fan_in(&self, i: u32) -> u32 {
        self.masks[i as usize].count_ones()
    }

    /// Maximum XOR fan-in over all output bits. The paper reports this is at
    /// most 5 for the degree-7 polynomials used in its experiments (§3.4).
    pub fn max_fan_in(&self) -> u32 {
        (0..self.output_bits)
            .map(|i| self.fan_in(i))
            .max()
            .unwrap_or(0)
    }

    /// Estimated gate depth of a balanced tree of 2-input XOR gates
    /// implementing the widest output bit: `ceil(log2(max_fan_in))`.
    pub fn gate_depth(&self) -> u32 {
        let f = self.max_fan_in();
        if f <= 1 {
            0
        } else {
            32 - (f - 1).leading_zeros()
        }
    }

    /// The tree as an explicit GF(2) matrix (rows = index bits, columns =
    /// input bits).
    pub fn to_matrix(&self) -> BitMatrix {
        BitMatrix::from_rows(self.masks.clone(), self.input_bits.max(1))
    }

    /// Checks Rau's stride-insensitivity condition for stride `2^k`:
    /// a sequence of `M = 2^m` consecutive multiples of `2^k` (within the
    /// input width) maps one-to-one onto the `2^m` cache sets iff the map
    /// restricted to input columns `k..k+m` has full rank.
    ///
    /// Returns `false` (rather than panicking) when fewer than `m` columns
    /// remain above bit `k`, since a full-rank restriction is impossible.
    pub fn is_stride_conflict_free(&self, k: u32) -> bool {
        let m = self.output_bits;
        if k + m > self.input_bits {
            return false;
        }
        self.to_matrix().restrict_columns(k, m).rank() == m
    }
}

/// Searches the irreducible polynomials of `degree` for the one whose XOR
/// tree over `input_bits` has the smallest maximum fan-in (ties broken by
/// smaller bit pattern).
///
/// The paper notes (§3.4) that for the polynomials used in its experiments
/// the XOR fan-in "is never higher than 5"; this is a property of *chosen*
/// polynomials, not of every irreducible polynomial, and this function
/// performs that choice.
///
/// # Panics
///
/// Panics if `degree` is 0 or exceeds [`crate::irreducible::MAX_DEGREE`],
/// or if `input_bits > 64`.
///
/// # Example
///
/// ```
/// use cac_gf2::xor_tree::{min_fan_in_poly, XorTree};
///
/// let p = min_fan_in_poly(7, 14);
/// assert!(XorTree::new(p, 14).max_fan_in() <= 5);
/// ```
pub fn min_fan_in_poly(degree: u32, input_bits: u32) -> Poly {
    crate::irreducible::irreducibles(degree)
        .min_by_key(|&p| XorTree::new(p, input_bits).max_fan_in())
        .expect("an irreducible polynomial exists for every degree >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irreducible::{default_poly, irreducibles};

    #[test]
    fn tree_matches_long_division_exhaustively() {
        let p = default_poly(5);
        let tree = XorTree::new(p, 12);
        for a in 0u64..(1 << 12) {
            let expected = Poly::from_bits(a as u128).rem(p).bits() as u64;
            assert_eq!(tree.apply(a), expected, "a = {a:#x}");
        }
    }

    #[test]
    fn tree_matches_long_division_random_wide() {
        let p = default_poly(10);
        let tree = XorTree::new(p, 40);
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..2000 {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let a = state & ((1u64 << 40) - 1);
            let expected = Poly::from_bits(a as u128).rem(p).bits() as u64;
            assert_eq!(tree.apply(a), expected);
        }
    }

    #[test]
    fn power_of_two_modulus_is_bit_selection() {
        // P = x^m  =>  index = low m bits (conventional indexing).
        let tree = XorTree::new(Poly::monomial(7), 20);
        for a in [0u64, 1, 127, 128, 0xdead_beef] {
            assert_eq!(tree.apply(a), a & 0x7f);
        }
        assert_eq!(tree.max_fan_in(), 1);
        assert_eq!(tree.gate_depth(), 0);
    }

    #[test]
    fn ignores_bits_beyond_input_width() {
        let p = default_poly(7);
        let tree = XorTree::new(p, 14);
        let a = 0x3fffu64;
        assert_eq!(tree.apply(a), tree.apply(a | 0xffff_c000));
    }

    #[test]
    fn paper_fan_in_claim_for_degree_7_trees() {
        // §3.4: for the polynomials used in the paper's experiments the
        // number of XOR inputs is never higher than 5 with 19 address bits
        // (14 block-address bits). This is achievable by choosing the
        // polynomial well; `min_fan_in_poly` performs that choice.
        let p = min_fan_in_poly(7, 14);
        let tree = XorTree::new(p, 14);
        assert!(
            tree.max_fan_in() <= 5,
            "fan-in {} for {}",
            tree.max_fan_in(),
            p
        );
        // There is more than one such polynomial, so a skewed pair with low
        // fan-in also exists.
        let good: Vec<_> = irreducibles(7)
            .filter(|&q| XorTree::new(q, 14).max_fan_in() <= 5)
            .collect();
        assert!(good.len() >= 2, "found {}", good.len());
    }

    #[test]
    fn stride_insensitivity_for_irreducible_moduli() {
        // Rau's theorem: with an irreducible modulus, every power-of-two
        // stride within the input width is conflict-free.
        let p = default_poly(7);
        let tree = XorTree::new(p, 14);
        for k in 0..=7 {
            assert!(tree.is_stride_conflict_free(k), "stride 2^{k}");
        }
        // Conventional indexing (P = x^7) fails for any k >= 1... in fact a
        // 2^k stride hits only every 2^k-th set once k >= 1.
        let conv = XorTree::new(Poly::monomial(7), 14);
        assert!(conv.is_stride_conflict_free(0));
        for k in 1..=7 {
            assert!(!conv.is_stride_conflict_free(k), "stride 2^{k}");
        }
    }

    #[test]
    fn surjectivity_of_index_map() {
        let p = default_poly(7);
        let tree = XorTree::new(p, 14);
        assert!(tree.to_matrix().is_surjective());
        // Exhaustive: every set index is produced.
        let mut seen = [false; 128];
        for a in 0u64..(1 << 14) {
            seen[tree.apply(a) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_distribution_over_sets() {
        // The hash is linear and surjective, so preimages of every set have
        // equal size: 2^(v-m).
        let p = default_poly(6);
        let tree = XorTree::new(p, 13);
        let mut counts = vec![0u32; 64];
        for a in 0u64..(1 << 13) {
            counts[tree.apply(a) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1 << 7));
    }

    #[test]
    fn masks_and_accessors() {
        let p = default_poly(4);
        let tree = XorTree::new(p, 10);
        assert_eq!(tree.poly(), p);
        assert_eq!(tree.input_bits(), 10);
        assert_eq!(tree.output_bits(), 4);
        // Bit j < m reduces to itself: mask_i must include bit i.
        for i in 0..4 {
            assert_eq!(tree.mask(i) & (1 << i), 1 << i);
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be non-zero")]
    fn zero_modulus_rejected() {
        let _ = XorTree::new(Poly::ZERO, 8);
    }

    #[test]
    fn apply_table_matches_apply_exhaustively() {
        for degree in [3u32, 5, 7] {
            let p = default_poly(degree);
            let tree = XorTree::new(p, 14);
            let table = tree.apply_table(14);
            assert_eq!(table.len(), 1 << 14);
            for (a, &entry) in table.iter().enumerate() {
                assert_eq!(
                    u64::from(entry),
                    tree.apply(a as u64),
                    "deg {degree} a={a:#x}"
                );
            }
        }
    }

    #[test]
    fn apply_table_over_fewer_bits_is_a_prefix() {
        let tree = XorTree::new(default_poly(6), 20);
        let small = tree.apply_table(10);
        let large = tree.apply_table(12);
        assert_eq!(small[..], large[..1 << 10]);
    }

    #[test]
    #[should_panic(expected = "exceed wired input bits")]
    fn apply_table_wider_than_inputs_rejected() {
        let tree = XorTree::new(default_poly(6), 10);
        let _ = tree.apply_table(11);
    }
}

//! Dense bit-matrices over GF(2).
//!
//! Polynomial-modulus placement, XOR/skew placement and conventional modulo
//! placement are all *linear* maps over GF(2) from address bits to index
//! bits. Representing them as explicit matrices lets the rest of the
//! workspace verify structural properties the paper relies on:
//!
//! * a placement function is conflict-free on `2^k`-strided sequences iff
//!   certain sub-matrices have full rank (Rau's condition), and
//! * surjectivity of the index map means every cache set is reachable.

use std::fmt;

/// A dense matrix over GF(2) with at most 64 columns.
///
/// Rows are stored as `u64` bit-masks; entry `(r, c)` is bit `c` of row `r`.
/// The matrix maps a column-vector of bits `v` (packed into a `u64`) to
/// `M·v`, where row `r` of the product is `parity(row_r & v)`.
///
/// # Example
///
/// ```
/// use cac_gf2::BitMatrix;
///
/// let id = BitMatrix::identity(4);
/// assert_eq!(id.apply(0b1010), 0b1010);
/// assert_eq!(id.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: Vec<u64>,
    cols: u32,
}

impl BitMatrix {
    /// Creates a matrix from explicit row masks.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 64` or any row has a bit set at or beyond `cols`.
    pub fn from_rows(rows: Vec<u64>, cols: u32) -> Self {
        assert!(cols <= 64, "at most 64 columns supported");
        let valid = if cols == 64 {
            u64::MAX
        } else {
            (1u64 << cols) - 1
        };
        for (i, &row) in rows.iter().enumerate() {
            assert!(
                row & !valid == 0,
                "row {i} has bits outside the {cols}-column range"
            );
        }
        BitMatrix { rows, cols }
    }

    /// The `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn identity(n: u32) -> Self {
        assert!(n <= 64);
        BitMatrix {
            rows: (0..n).map(|i| 1u64 << i).collect(),
            cols: n,
        }
    }

    /// The all-zero matrix with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 64`.
    pub fn zero(rows: u32, cols: u32) -> Self {
        assert!(cols <= 64);
        BitMatrix {
            rows: vec![0; rows as usize],
            cols,
        }
    }

    /// Number of rows (output bits).
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Number of columns (input bits).
    #[inline]
    pub fn num_cols(&self) -> u32 {
        self.cols
    }

    /// Returns entry `(r, c)` as 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: u32, c: u32) -> u8 {
        assert!(c < self.cols, "column {c} out of bounds");
        ((self.rows[r as usize] >> c) & 1) as u8
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn set(&mut self, r: u32, c: u32, value: bool) {
        assert!(c < self.cols, "column {c} out of bounds");
        let row = &mut self.rows[r as usize];
        if value {
            *row |= 1u64 << c;
        } else {
            *row &= !(1u64 << c);
        }
    }

    /// Returns row `r` as a bit-mask over the columns.
    #[inline]
    pub fn row(&self, r: u32) -> u64 {
        self.rows[r as usize]
    }

    /// Applies the matrix to a packed bit-vector: output bit `r` is
    /// `parity(row_r & input)`.
    ///
    /// Bits of `input` at or beyond the column count are ignored.
    #[inline]
    pub fn apply(&self, input: u64) -> u64 {
        let masked = if self.cols == 64 {
            input
        } else {
            input & ((1u64 << self.cols) - 1)
        };
        let mut out = 0u64;
        for (r, &row) in self.rows.iter().enumerate() {
            out |= (((row & masked).count_ones() & 1) as u64) << r;
        }
        out
    }

    /// Rank of the matrix over GF(2), computed by Gaussian elimination on a
    /// copy of the rows.
    pub fn rank(&self) -> u32 {
        let mut rows = self.rows.clone();
        let mut rank = 0u32;
        for col in 0..self.cols {
            let Some(pivot) = (rank as usize..rows.len()).find(|&r| rows[r] >> col & 1 == 1) else {
                continue;
            };
            rows.swap(rank as usize, pivot);
            let pivot_row = rows[rank as usize];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank as usize && *row >> col & 1 == 1 {
                    *row ^= pivot_row;
                }
            }
            rank += 1;
            if rank as usize == rows.len() {
                break;
            }
        }
        rank
    }

    /// `true` if the map is surjective onto its row space, i.e. the rank
    /// equals the number of rows — every output pattern (cache set) is hit
    /// by some input.
    pub fn is_surjective(&self) -> bool {
        self.rank() == self.num_rows()
    }

    /// Restricts the matrix to a contiguous range of columns
    /// `lo..lo + width`, producing a matrix with `width` columns.
    ///
    /// Used to check Rau's stride condition: a `2^k`-strided sequence of
    /// `2^m` addresses is conflict-free iff the restriction of the index map
    /// to columns `k..k+m` has full rank.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn restrict_columns(&self, lo: u32, width: u32) -> BitMatrix {
        assert!(lo + width <= self.cols, "column range out of bounds");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        BitMatrix {
            rows: self.rows.iter().map(|&r| (r >> lo) & mask).collect(),
            cols: width,
        }
    }

    /// Matrix product `self · rhs` (composition of linear maps; `rhs` is
    /// applied first).
    ///
    /// # Panics
    ///
    /// Panics if `self.num_cols() != rhs.num_rows()`.
    pub fn compose(&self, rhs: &BitMatrix) -> BitMatrix {
        assert_eq!(
            self.cols,
            rhs.num_rows(),
            "dimension mismatch in matrix composition"
        );
        let mut out = BitMatrix::zero(self.num_rows(), rhs.num_cols());
        for r in 0..self.num_rows() {
            let mut acc = 0u64;
            for c in 0..self.cols {
                if self.get(r, c) == 1 {
                    acc ^= rhs.row(c);
                }
            }
            out.rows[r as usize] = acc;
        }
        out
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &row in &self.rows {
            for c in 0..self.cols {
                write!(f, "{}", (row >> c) & 1)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_application_and_rank() {
        let id = BitMatrix::identity(8);
        for v in [0u64, 1, 0xAB, 0xFF] {
            assert_eq!(id.apply(v), v);
        }
        assert_eq!(id.rank(), 8);
        assert!(id.is_surjective());
    }

    #[test]
    fn zero_matrix_properties() {
        let z = BitMatrix::zero(3, 5);
        assert_eq!(z.apply(0b11111), 0);
        assert_eq!(z.rank(), 0);
        assert!(!z.is_surjective());
    }

    #[test]
    fn rank_of_dependent_rows() {
        // Row 2 = row 0 XOR row 1 => rank 2.
        let m = BitMatrix::from_rows(vec![0b0011, 0b0101, 0b0110], 4);
        assert_eq!(m.rank(), 2);
        assert!(!m.is_surjective());
    }

    #[test]
    fn apply_is_linear() {
        let m = BitMatrix::from_rows(vec![0b1011, 0b0110, 0b1101], 4);
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(m.apply(a) ^ m.apply(b), m.apply(a ^ b));
            }
        }
    }

    #[test]
    fn restriction_shifts_columns() {
        let m = BitMatrix::from_rows(vec![0b1100, 0b0110], 4);
        let r = m.restrict_columns(1, 2);
        assert_eq!(r.num_cols(), 2);
        assert_eq!(r.row(0), 0b10);
        assert_eq!(r.row(1), 0b11);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = BitMatrix::from_rows(vec![0b101, 0b011], 3); // 2x3
        let b = BitMatrix::from_rows(vec![0b11, 0b10, 0b01], 2); // 3x2
        let ab = a.compose(&b); // 2x2
        for v in 0u64..4 {
            assert_eq!(ab.apply(v), a.apply(b.apply(v)));
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = BitMatrix::zero(2, 3);
        m.set(0, 2, true);
        m.set(1, 0, true);
        assert_eq!(m.get(0, 2), 1);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.get(0, 0), 0);
        m.set(0, 2, false);
        assert_eq!(m.get(0, 2), 0);
    }

    #[test]
    #[should_panic(expected = "column range out of bounds")]
    fn restriction_bounds_checked() {
        let m = BitMatrix::identity(4);
        let _ = m.restrict_columns(2, 3);
    }

    #[test]
    fn display_renders_rows() {
        let m = BitMatrix::from_rows(vec![0b01, 0b10], 2);
        assert_eq!(m.to_string(), "10\n01\n");
    }

    #[test]
    fn full_64_column_matrix() {
        let id = BitMatrix::identity(64);
        assert_eq!(id.apply(u64::MAX), u64::MAX);
        assert_eq!(id.rank(), 64);
    }
}

//! Dense polynomials over GF(2).
//!
//! A [`Poly`] stores the coefficients of a polynomial over the two-element
//! field in the bits of a `u128`: bit `k` is the coefficient of `x^k`.
//! Addition is XOR, multiplication is carry-less, and division is ordinary
//! long division with XOR in place of subtraction. Degrees up to 127 are
//! supported, which comfortably covers 64-bit addresses plus any practical
//! modulus polynomial.

use std::fmt;
use std::ops::{Add, AddAssign, BitXor, Mul, Rem};

/// A polynomial over GF(2) with degree at most 127.
///
/// Bit `k` of the underlying `u128` is the coefficient of `x^k`. The zero
/// polynomial is represented by `0`.
///
/// # Example
///
/// ```
/// use cac_gf2::Poly;
///
/// let a = Poly::from_bits(0b1011); // x^3 + x + 1
/// let b = Poly::from_bits(0b11);   // x + 1
/// assert_eq!((a + b).bits(), 0b1000); // x^3
/// assert_eq!((a * b).bits(), 0b11101); // x^4 + x^3 + x^2 + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Poly(u128);

impl Poly {
    /// The zero polynomial.
    pub const ZERO: Poly = Poly(0);
    /// The constant polynomial `1`.
    pub const ONE: Poly = Poly(1);
    /// The monomial `x`.
    pub const X: Poly = Poly(2);

    /// Creates a polynomial from its coefficient bits (bit `k` ↦ `x^k`).
    #[inline]
    pub const fn from_bits(bits: u128) -> Self {
        Poly(bits)
    }

    /// The constant polynomial `1` — the multiplicative identity.
    #[inline]
    pub const fn one() -> Self {
        Poly(1)
    }

    /// Returns the coefficient bits (bit `k` ↦ `x^k`).
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Returns the monomial `x^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > 127`.
    #[inline]
    pub fn monomial(k: u32) -> Self {
        assert!(k <= 127, "monomial degree {k} exceeds 127");
        Poly(1u128 << k)
    }

    /// Returns `true` if this is the zero polynomial.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    ///
    /// ```
    /// use cac_gf2::Poly;
    /// assert_eq!(Poly::from_bits(0b1011).degree(), Some(3));
    /// assert_eq!(Poly::ZERO.degree(), None);
    /// ```
    #[inline]
    pub fn degree(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(127 - self.0.leading_zeros())
        }
    }

    /// Degree of the polynomial, treating the zero polynomial as degree 0.
    ///
    /// Convenient in contexts where the zero polynomial cannot occur (e.g. a
    /// modulus, which is validated to be non-constant).
    #[inline]
    pub fn degree_or_zero(self) -> u32 {
        self.degree().unwrap_or(0)
    }

    /// Returns the coefficient of `x^k` (0 or 1).
    #[inline]
    pub fn coeff(self, k: u32) -> u8 {
        if k > 127 {
            0
        } else {
            ((self.0 >> k) & 1) as u8
        }
    }

    /// Number of non-zero coefficients.
    #[inline]
    pub fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Carry-less (GF(2)) product of two polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the product would overflow degree 127, i.e. if
    /// `deg(a) + deg(b) > 127`.
    // Not `impl Mul`: carry-less multiplication warrants an explicit call
    // site, and the panic contract differs from arithmetic expectations.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::ZERO;
        }
        let (da, db) = (self.degree().unwrap(), rhs.degree().unwrap());
        assert!(
            da + db <= 127,
            "polynomial product degree {} exceeds 127",
            da + db
        );
        let mut acc = 0u128;
        let mut a = self.0;
        let mut b = rhs.0;
        while b != 0 {
            if b & 1 == 1 {
                acc ^= a;
            }
            a <<= 1;
            b >>= 1;
        }
        Poly(acc)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * rhs + r` and `deg(r) < deg(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is the zero polynomial.
    pub fn divmod(self, rhs: Poly) -> (Poly, Poly) {
        let db = rhs
            .degree()
            .expect("division by the zero polynomial over GF(2)");
        let mut rem = self.0;
        let mut quot = 0u128;
        while let Some(dr) = Poly(rem).degree() {
            if dr < db {
                break;
            }
            let shift = dr - db;
            rem ^= rhs.0 << shift;
            quot |= 1u128 << shift;
        }
        (Poly(quot), Poly(rem))
    }

    /// Remainder of Euclidean division: `self mod rhs`.
    ///
    /// This is the paper's placement primitive: the cache index of address
    /// `A` is `A(x) mod P(x)` (equation (vi) of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is the zero polynomial.
    // Not `impl Rem` for the same reason as `mul` (panic contract).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn rem(self, rhs: Poly) -> Poly {
        self.divmod(rhs).1
    }

    /// Product reduced modulo `modulus`: `(self * rhs) mod modulus`.
    ///
    /// Unlike [`Poly::mul`] this never overflows as long as both operands
    /// are already reduced (degree < deg(modulus) ≤ 64); reduction is
    /// interleaved with the shift-and-add loop.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is constant (degree 0 or zero polynomial).
    pub fn mulmod(self, rhs: Poly, modulus: Poly) -> Poly {
        let dm = modulus.degree().expect("zero modulus");
        assert!(dm >= 1, "modulus must have degree >= 1");
        let mut a = self.rem(modulus).0;
        let mut b = rhs.rem(modulus).0;
        let top = 1u128 << dm;
        let m = modulus.0;
        let mut acc = 0u128;
        while b != 0 {
            if b & 1 == 1 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & top != 0 {
                a ^= m;
            }
        }
        Poly(acc)
    }

    /// Squares the polynomial modulo `modulus`.
    #[inline]
    pub fn sqrmod(self, modulus: Poly) -> Poly {
        self.mulmod(self, modulus)
    }

    /// Raises the polynomial to the power `exp` modulo `modulus`
    /// (square-and-multiply).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` has degree < 1.
    ///
    /// # Example
    ///
    /// ```
    /// use cac_gf2::Poly;
    ///
    /// // x^7 = 1 mod (x^3 + x + 1): the multiplicative group of GF(8)
    /// // has order 7.
    /// let p = Poly::from_bits(0b1011);
    /// assert_eq!(Poly::monomial(1).powmod(7, p), Poly::one());
    /// assert_ne!(Poly::monomial(1).powmod(3, p), Poly::one());
    /// ```
    pub fn powmod(self, mut exp: u64, modulus: Poly) -> Poly {
        let mut base = self.rem(modulus);
        let mut acc = Poly::one();
        while exp != 0 {
            if exp & 1 == 1 {
                acc = acc.mulmod(base, modulus);
            }
            base = base.sqrmod(modulus);
            exp >>= 1;
        }
        acc
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    ///
    /// `gcd(0, b) = b` and `gcd(a, 0) = a`.
    pub fn gcd(self, rhs: Poly) -> Poly {
        let (mut a, mut b) = (self, rhs);
        while !b.is_zero() {
            let r = a.rem(b);
            a = b;
            b = r;
        }
        a
    }

    /// Evaluates the polynomial at a point of GF(2) (0 or 1).
    ///
    /// Over GF(2) the value at 0 is the constant coefficient and the value
    /// at 1 is the parity of the coefficient weight.
    #[inline]
    pub fn eval(self, point: u8) -> u8 {
        match point & 1 {
            0 => (self.0 & 1) as u8,
            _ => (self.0.count_ones() & 1) as u8,
        }
    }

    /// Computes `x^(2^k) mod modulus` by repeated squaring.
    ///
    /// This is the core step of Rabin's irreducibility test.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` has degree < 1.
    pub fn x_pow_pow2_mod(k: u32, modulus: Poly) -> Poly {
        let mut acc = Poly::X.rem(modulus);
        for _ in 0..k {
            acc = acc.sqrmod(modulus);
        }
        acc
    }

    /// Formats the polynomial as a human-readable sum of monomials,
    /// e.g. `x^3 + x + 1`. The zero polynomial formats as `0`.
    pub fn to_terms(self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut parts = Vec::new();
        for k in (0..=self.degree().unwrap()).rev() {
            if self.coeff(k) == 1 {
                parts.push(match k {
                    0 => "1".to_owned(),
                    1 => "x".to_owned(),
                    _ => format!("x^{k}"),
                });
            }
        }
        parts.join(" + ")
    }
}

impl Add for Poly {
    type Output = Poly;
    // Addition over GF(2) *is* XOR: each coefficient is added mod 2.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Poly) -> Poly {
        Poly(self.0 ^ rhs.0)
    }
}

impl AddAssign for Poly {
    // See `Add`: GF(2) addition is XOR.
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Poly) {
        self.0 ^= rhs.0;
    }
}

impl BitXor for Poly {
    type Output = Poly;
    #[inline]
    fn bitxor(self, rhs: Poly) -> Poly {
        Poly(self.0 ^ rhs.0)
    }
}

impl Mul for Poly {
    type Output = Poly;
    #[inline]
    fn mul(self, rhs: Poly) -> Poly {
        Poly::mul(self, rhs)
    }
}

impl Rem for Poly {
    type Output = Poly;
    #[inline]
    fn rem(self, rhs: Poly) -> Poly {
        Poly::rem(self, rhs)
    }
}

impl From<u64> for Poly {
    #[inline]
    fn from(bits: u64) -> Poly {
        Poly(bits as u128)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_terms())
    }
}

impl fmt::Binary for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_of_basics() {
        assert_eq!(Poly::ZERO.degree(), None);
        assert_eq!(Poly::ONE.degree(), Some(0));
        assert_eq!(Poly::X.degree(), Some(1));
        assert_eq!(Poly::monomial(63).degree(), Some(63));
        assert_eq!(Poly::monomial(127).degree(), Some(127));
    }

    #[test]
    fn addition_is_xor() {
        let a = Poly::from_bits(0b1100);
        let b = Poly::from_bits(0b1010);
        assert_eq!((a + b).bits(), 0b0110);
        assert_eq!((a ^ b).bits(), 0b0110);
    }

    #[test]
    fn multiplication_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)
        let x1 = Poly::from_bits(0b11);
        assert_eq!((x1 * x1).bits(), 0b101);
        // (x^2 + x + 1)(x + 1) = x^3 + 1
        let a = Poly::from_bits(0b111);
        assert_eq!((a * x1).bits(), 0b1001);
        // multiply by zero and one
        assert_eq!((a * Poly::ZERO).bits(), 0);
        assert_eq!((a * Poly::ONE).bits(), a.bits());
    }

    #[test]
    fn divmod_reconstructs() {
        let a = Poly::from_bits(0b1101_0110_1011);
        let b = Poly::from_bits(0b1011);
        let (q, r) = a.divmod(b);
        assert!(r.degree().is_none_or(|d| d < b.degree().unwrap()));
        assert_eq!((q * b + r).bits(), a.bits());
    }

    #[test]
    fn rem_matches_mod_for_power_of_two_modulus() {
        // x^m as modulus is ordinary "take the low m bits".
        let m = Poly::monomial(5);
        for bits in [0u128, 1, 31, 32, 33, 0xfeed, 0xffff_ffff] {
            assert_eq!(Poly::from_bits(bits).rem(m).bits(), bits & 0b11111);
        }
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn division_by_zero_panics() {
        let _ = Poly::ONE.divmod(Poly::ZERO);
    }

    #[test]
    fn mulmod_agrees_with_mul_then_rem() {
        let m = Poly::from_bits(0b10001001); // x^7 + x^3 + 1
        for a in 0u128..64 {
            for b in 0u128..64 {
                let pa = Poly::from_bits(a);
                let pb = Poly::from_bits(b);
                assert_eq!(pa.mulmod(pb, m), (pa * pb).rem(m), "a={a:b} b={b:b}");
            }
        }
    }

    #[test]
    fn gcd_basics() {
        let a = Poly::from_bits(0b1011); // irreducible x^3+x+1
        let b = Poly::from_bits(0b111); // irreducible x^2+x+1
        assert_eq!(a.gcd(b), Poly::ONE);
        let prod = a * b;
        assert_eq!(prod.gcd(a), a);
        assert_eq!(prod.gcd(b), b);
        assert_eq!(Poly::ZERO.gcd(a), a);
        assert_eq!(a.gcd(Poly::ZERO), a);
    }

    #[test]
    fn x_pow_pow2_mod_small() {
        // mod x^3 + x + 1: x^2 stays x^2; x^4 = x^2 + x; x^8 = x (since the
        // field has 8 elements, x^8 = x for all elements).
        let m = Poly::from_bits(0b1011);
        assert_eq!(Poly::x_pow_pow2_mod(0, m), Poly::X);
        assert_eq!(Poly::x_pow_pow2_mod(1, m).bits(), 0b100);
        assert_eq!(Poly::x_pow_pow2_mod(2, m).bits(), 0b110);
        assert_eq!(Poly::x_pow_pow2_mod(3, m), Poly::X);
    }

    #[test]
    fn eval_points() {
        let a = Poly::from_bits(0b1011); // x^3 + x + 1
        assert_eq!(a.eval(0), 1);
        assert_eq!(a.eval(1), 1); // three terms -> parity 1
        let b = Poly::from_bits(0b110); // x^2 + x
        assert_eq!(b.eval(0), 0);
        assert_eq!(b.eval(1), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Poly::from_bits(0b1011).to_string(), "x^3 + x + 1");
        assert_eq!(Poly::ZERO.to_string(), "0");
        assert_eq!(Poly::ONE.to_string(), "1");
        assert_eq!(Poly::X.to_string(), "x");
        assert_eq!(format!("{:b}", Poly::from_bits(0b1011)), "1011");
        assert_eq!(format!("{:x}", Poly::from_bits(0xff)), "ff");
    }

    #[test]
    fn weight_and_coeff() {
        let p = Poly::from_bits(0b1010_0101);
        assert_eq!(p.weight(), 4);
        assert_eq!(p.coeff(0), 1);
        assert_eq!(p.coeff(1), 0);
        assert_eq!(p.coeff(7), 1);
        assert_eq!(p.coeff(127), 0);
        assert_eq!(p.coeff(200), 0);
    }
}

//! Polynomial arithmetic over GF(2) and XOR-tree synthesis.
//!
//! This crate is the mathematical substrate of the *conflict-avoiding cache*
//! of Topham, González & González (MICRO-30, 1997). The paper's I-Poly
//! placement function interprets an address as a polynomial `A(x)` over the
//! two-element field GF(2) and computes a cache index as
//! `R(x) = A(x) mod P(x)` for an (ideally irreducible) polynomial `P(x)`
//! whose degree equals the number of index bits.
//!
//! The crate provides:
//!
//! * [`Poly`] — dense polynomials over GF(2) up to degree 127, with
//!   carry-less multiplication, Euclidean division, and GCD.
//! * [`irreducible`] — Rabin's irreducibility test, enumeration of
//!   irreducible polynomials, and the default polynomial families used by
//!   the rest of the workspace.
//! * [`xor_tree`] — synthesis of the *linear map* form of
//!   `A(x) mod P(x)`: one bit-mask per index bit, so that evaluating the
//!   hash is `parity(addr & mask_i)` per bit. This is exactly the XOR tree
//!   a hardware implementation would use (paper §3.4), and the module
//!   reports fan-in statistics to support that analysis.
//! * [`matrix`] — small dense bit-matrices over GF(2) used to reason about
//!   linear placement functions (rank, surjectivity, composition).
//!
//! # Example
//!
//! ```
//! use cac_gf2::{Poly, irreducible, xor_tree::XorTree};
//!
//! // The lexicographically-first irreducible polynomial of degree 7
//! // (7 index bits => 128 cache sets).
//! let p = irreducible::default_poly(7);
//! assert!(irreducible::is_irreducible(p));
//!
//! // Synthesise the XOR tree that maps 14 block-address bits to 7 index bits.
//! let tree = XorTree::new(p, 14);
//! let index = tree.apply(0b10_1101_0111_0011);
//! assert!(index < 128);
//! // Same answer as long division over GF(2):
//! let a = Poly::from_bits(0b10_1101_0111_0011);
//! assert_eq!(index, a.rem(p).bits() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod irreducible;
pub mod matrix;
pub mod poly;
pub mod xor_tree;

pub use irreducible::{default_poly, default_skew_set, is_irreducible};
pub use matrix::BitMatrix;
pub use poly::Poly;
pub use xor_tree::XorTree;

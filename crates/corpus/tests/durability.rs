//! Durability and multi-runner property tests for the corpus tier.
//!
//! Three families:
//!
//! * **Crash-point convergence** — every commit sequence (journal save,
//!   manifest save, a whole `run`) is swept with the fault-injecting
//!   write layer: for every operation at which the "filesystem" dies,
//!   the recovered store must be exactly the old state or exactly the
//!   new state, `fsck --repair` must leave it clean, and a rerun must
//!   restore surviving cells instead of replaying them.
//! * **Multi-runner partition** — two concurrent runners over one
//!   corpus must produce a merged journal byte-identical to a
//!   single-runner run's, with every cell replayed exactly once.
//! * **fsck** — every injectable inconsistency kind is found, the
//!   mechanically-safe subset repairs, and a repaired store audits
//!   clean.

use cac_corpus::fsck::fsck;
use cac_corpus::run::{run, RunOptions};
use cac_corpus::{content_hash, Corpus};
use cac_sim::journal::{fingerprint, Journal};
use cac_sim::model::ModelStats;
use cac_trace::io::commitfs::{FaultFs, FaultPlan};
use cac_trace::io::write_trace_columnar;
use cac_trace::TraceOp;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cac-durability-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_config(dir: &Path, name: &str, size: &str) -> String {
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!("name = \"dm-{size}\"\n[cache]\nsize = \"{size}\"\nline = 16\nways = 1\n"),
    )
    .unwrap();
    path.to_string_lossy().into_owned()
}

/// Builds a corpus at `dir` with `n` deterministic traces, so two
/// corpora built with the same arguments hash identically.
fn build_corpus(dir: &Path, n: usize, ops: u64) -> Corpus {
    let mut corpus = Corpus::init(dir).unwrap();
    for t in 0..n {
        let base = 0x1000 + 0x10_0000 * t as u64;
        let trace: Vec<TraceOp> = (0..ops)
            .map(|i| TraceOp::load(base + 4 * i, base + (16 * i) % 0x4000, 1, None))
            .collect();
        let raw = dir.join(format!("raw-{t}.cact"));
        let mut buf = Vec::new();
        write_trace_columnar(&mut buf, trace).unwrap();
        std::fs::write(&raw, buf).unwrap();
        corpus.add(&format!("t{t}"), &raw).unwrap();
        std::fs::remove_file(&raw).unwrap();
    }
    corpus
}

/// The canonical byte rendering of a journal's logical state.
fn rendered(journal: &Journal, scratch: &Path) -> Vec<u8> {
    journal.save(scratch).unwrap();
    let bytes = std::fs::read(scratch).unwrap();
    std::fs::remove_file(scratch).ok();
    bytes
}

fn fault_arc(plan: FaultPlan) -> (Arc<FaultFs>, Arc<FaultFs>) {
    let fs = Arc::new(FaultFs::new(plan));
    (fs.clone(), fs)
}

// ---------------------------------------------------------------------
// Crash-point convergence: direct commit sequences.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Journal saves are all-or-nothing at every crash point: reload
    /// after the crash yields exactly the old or exactly the new
    /// logical state, never a splice or a torn file.
    #[test]
    fn journal_commits_are_crash_atomic(seed in 1u64..5_000, cells in 1usize..5) {
        let dir = tmp_dir(&format!("jcrash-{seed}-{cells}"));
        let path = dir.join("results.journal");
        let fp = fingerprint(&["crash-prop"]);

        let mut old = Journal::new(fp);
        for i in 0..cells {
            old.record(&format!("t{i}@{seed:016x}/cfg@{i:016x}"), &ModelStats::default());
        }
        old.save(&path).unwrap();
        let old_bytes = rendered(&old, &dir.join("old.scratch"));

        let mut new = old.clone();
        new.record(&format!("added@{seed:016x}/cfg@ffff000000000000"), &ModelStats::default());
        new.claim(&format!("t0@{seed:016x}/claimed@0000000000000001"), "prop-runner");
        let new_bytes = rendered(&new, &dir.join("new.scratch"));

        // Learn the sequence length from a crash-free faulted save.
        let probe = FaultFs::new(FaultPlan { seed, ..FaultPlan::default() });
        new.save_with(&path, &probe).unwrap();
        let total = probe.ops();
        prop_assert!(total >= 4, "commit is create+sync+rename+syncdir");

        for crash_at in 0..total {
            // Reset to the old committed state.
            std::fs::write(&path, &old_bytes).unwrap();
            let fs = FaultFs::new(FaultPlan {
                seed: seed ^ crash_at,
                crash_after_ops: Some(crash_at),
                ..FaultPlan::default()
            });
            let err = new.save_with(&path, &fs);
            prop_assert!(err.is_err(), "crash at op {crash_at} must surface");
            prop_assert!(fs.crashed());

            let back = Journal::load(&path, fp).unwrap();
            let got = rendered(&back, &dir.join("got.scratch"));
            prop_assert!(
                got == old_bytes || got == new_bytes,
                "crash at op {crash_at} left a spliced journal"
            );
            prop_assert!(
                !path.with_extension("journal.tmp").exists(),
                "load must sweep the orphaned temp file"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Manifest saves (the quarantine read-modify-write path) are
    /// equally all-or-nothing.
    #[test]
    fn manifest_commits_are_crash_atomic(seed in 1u64..5_000) {
        use cac_corpus::manifest::{Manifest, QuarantineEntry};
        use cac_trace::io::FailureClass;

        let dir = tmp_dir(&format!("mcrash-{seed}"));
        let path = dir.join("corpus.toml");
        let old = Manifest::default();
        old.save(&path).unwrap();

        let mut new = old.clone();
        new.set_quarantine(QuarantineEntry {
            name: "t0".into(),
            hash: seed,
            reason: "prop".into(),
            class: FailureClass::Transient,
        });

        let probe = FaultFs::new(FaultPlan { seed, ..FaultPlan::default() });
        new.save_with(&path, &probe).unwrap();
        let total = probe.ops();

        for crash_at in 0..total {
            old.save(&path).unwrap();
            let fs = FaultFs::new(FaultPlan {
                seed: seed ^ crash_at,
                crash_after_ops: Some(crash_at),
                ..FaultPlan::default()
            });
            prop_assert!(new.save_with(&path, &fs).is_err());
            let back = Manifest::load(&path).unwrap();
            prop_assert!(
                back == old || back == new,
                "crash at op {crash_at} left a spliced manifest"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Crash-point convergence: a whole `run`, then fsck, then rerun.
// ---------------------------------------------------------------------

/// Sweeps an injected crash over every write-layer operation of a cold
/// `run`: the wreck must always fsck clean after `--repair`, and a
/// plain rerun must converge to the byte-identical reference journal
/// while replaying only the cells the crash actually lost.
#[test]
fn run_crash_sweep_fsck_repairs_and_rerun_converges() {
    let cfg_dir = tmp_dir("runcrash-cfg");
    let configs = vec![
        write_config(&cfg_dir, "small.toml", "1KiB"),
        write_config(&cfg_dir, "large.toml", "16KiB"),
    ];

    // Reference: one clean run.
    let ref_dir = tmp_dir("runcrash-ref");
    let mut reference = build_corpus(&ref_dir, 1, 2_000);
    let ref_report = run(&mut reference, &configs, &RunOptions::default()).unwrap();
    assert_eq!(ref_report.summary.replayed, 2);
    let ref_bytes = std::fs::read(ref_dir.join("results.journal")).unwrap();

    // Learn the run's write-op count from a crash-free faulted run.
    let probe_dir = tmp_dir("runcrash-probe");
    let mut probe_corpus = build_corpus(&probe_dir, 1, 2_000);
    let (probe, handle) = fault_arc(FaultPlan::default());
    let opts = RunOptions {
        fs: probe,
        ..RunOptions::default()
    };
    run(&mut probe_corpus, &configs, &opts).unwrap();
    let total = handle.ops();
    assert!(total >= 8, "expected at least two commit sequences");
    assert_eq!(
        std::fs::read(probe_dir.join("results.journal")).unwrap(),
        ref_bytes,
        "a crash-free faulted run writes the reference journal"
    );
    std::fs::remove_dir_all(&probe_dir).ok();

    for crash_at in 0..total {
        let dir = tmp_dir(&format!("runcrash-{crash_at}"));
        let mut corpus = build_corpus(&dir, 1, 2_000);
        let (fs, handle) = fault_arc(FaultPlan {
            seed: 0xD00D ^ crash_at,
            crash_after_ops: Some(crash_at),
            ..FaultPlan::default()
        });
        let opts = RunOptions {
            fs,
            ..RunOptions::default()
        };
        let res = run(&mut corpus, &configs, &opts);
        assert!(res.is_err(), "crash at op {crash_at} must abort the run");
        assert!(handle.crashed());

        // The wreck repairs clean…
        let repair = fsck(&dir, true).unwrap();
        assert_eq!(
            repair.unrepaired(),
            0,
            "crash at op {crash_at} left unrepairable problems: {:?}",
            repair.problems
        );
        assert!(fsck(&dir, false).unwrap().is_clean());

        // …and a plain rerun converges to the reference, restoring
        // whatever the crashed run already committed.
        let rerun = run(&mut corpus, &configs, &RunOptions::default()).unwrap();
        assert_eq!(
            rerun.summary.replayed + rerun.summary.restored,
            2,
            "crash at op {crash_at}"
        );
        assert_eq!(
            std::fs::read(dir.join("results.journal")).unwrap(),
            ref_bytes,
            "crash at op {crash_at} did not converge"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&cfg_dir).ok();
}

// ---------------------------------------------------------------------
// Multi-runner partition.
// ---------------------------------------------------------------------

/// Two concurrent runners split the grid: every cell replays exactly
/// once somewhere, both reports resolve every cell, and the merged
/// journal is byte-identical to a single-runner run's.
#[test]
fn concurrent_runners_merge_to_the_single_runner_journal() {
    let cfg_dir = tmp_dir("pair-cfg");
    let configs = vec![
        write_config(&cfg_dir, "small.toml", "1KiB"),
        write_config(&cfg_dir, "large.toml", "16KiB"),
    ];

    let solo_dir = tmp_dir("pair-solo");
    let mut solo = build_corpus(&solo_dir, 3, 2_000);
    let solo_report = run(&mut solo, &configs, &RunOptions::default()).unwrap();
    assert_eq!(solo_report.summary.replayed, 6);
    let solo_bytes = std::fs::read(solo_dir.join("results.journal")).unwrap();

    let dir = tmp_dir("pair-dual");
    build_corpus(&dir, 3, 2_000);
    let worker = |id: &str| {
        let id = id.to_owned();
        let dir = dir.clone();
        let configs = configs.clone();
        std::thread::spawn(move || {
            let mut corpus = Corpus::open(&dir).unwrap();
            let opts = RunOptions {
                runner: Some(id),
                peer_poll_ms: 2,
                ..RunOptions::default()
            };
            run(&mut corpus, &configs, &opts).unwrap()
        })
    };
    let (a, b) = (worker("r1"), worker("r2"));
    let (ra, rb) = (a.join().unwrap(), b.join().unwrap());

    // Zero duplicated replays; every cell resolved in both reports.
    assert_eq!(
        ra.summary.replayed + rb.summary.replayed,
        6,
        "cells replayed twice (or lost): {:?} / {:?}",
        ra.summary,
        rb.summary
    );
    assert_eq!(ra.summary.restored + rb.summary.restored, 6);
    for report in [&ra, &rb] {
        assert_eq!(report.rows.len(), 3);
        assert!(report.rows.iter().all(|r| r.cells.len() == 2));
    }

    // The merged journal is exactly the single-runner journal, and no
    // claims survive a completed fleet.
    assert_eq!(
        std::fs::read(dir.join("results.journal")).unwrap(),
        solo_bytes
    );
    let scan = Journal::scan(&dir.join("results.journal")).unwrap();
    assert_eq!(scan.claims, 0);

    // A third runner restores everything and replays nothing.
    let mut again = Corpus::open(&dir).unwrap();
    let rerun = run(&mut again, &configs, &RunOptions::default()).unwrap();
    assert_eq!(rerun.summary.replayed, 0);
    assert_eq!(rerun.summary.restored, 6);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&solo_dir).ok();
    std::fs::remove_dir_all(&cfg_dir).ok();
}

/// A claim whose owner died (its lease lock is released) is taken over
/// and replayed by the next runner instead of waiting forever.
#[test]
fn dead_runner_claims_are_taken_over() {
    let cfg_dir = tmp_dir("ghost-cfg");
    let configs = vec![write_config(&cfg_dir, "small.toml", "1KiB")];
    let dir = tmp_dir("ghost");
    let mut corpus = build_corpus(&dir, 1, 1_000);

    // Manufacture a claim by a runner that never held (or has
    // released) its lease — a crashed peer.
    let entry = corpus.entries()[0].clone();
    let cfg_text = std::fs::read_to_string(&configs[0]).unwrap();
    let key = format!(
        "{}@{:016x}/{}@{:016x}",
        entry.name,
        entry.hash,
        configs[0],
        content_hash(cfg_text.as_bytes())
    );
    let fp = fingerprint(&["cac corpus run", "prune=none"]);
    let journal_path = dir.join("results.journal");
    let mut journal = Journal::load(&journal_path, fp).unwrap();
    journal.claim(&key, "ghost");
    journal.save(&journal_path).unwrap();

    // fsck sees the stale claim; the runner takes it over regardless.
    let audit = fsck(&dir, false).unwrap();
    assert!(audit.problems.iter().any(|p| p.kind == "stale-claim"));

    let report = run(&mut corpus, &configs, &RunOptions::default()).unwrap();
    assert_eq!(report.summary.replayed, 1, "takeover must replay the cell");
    let reloaded = Journal::load(&journal_path, fp).unwrap();
    assert!(reloaded.claim_of(&key).is_none(), "claim drained");
    assert!(reloaded.get(&key).is_some(), "cell recorded");
    // Generation advanced past the ghost's.
    assert!(fsck(&dir, false).unwrap().is_clean());

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cfg_dir).ok();
}

// ---------------------------------------------------------------------
// fsck problem matrix.
// ---------------------------------------------------------------------

/// Every injectable inconsistency is found, named, and — where
/// mechanically safe — repaired, after which the store audits clean.
#[test]
fn fsck_finds_and_repairs_injected_inconsistencies() {
    let cfg_dir = tmp_dir("fsck-cfg");
    let configs = vec![write_config(&cfg_dir, "small.toml", "1KiB")];
    let dir = tmp_dir("fsck");
    let mut corpus = build_corpus(&dir, 1, 1_000);
    run(&mut corpus, &configs, &RunOptions::default()).unwrap();
    assert!(fsck(&dir, false).unwrap().is_clean(), "healthy store");

    // Inject the whole mess.
    std::fs::write(dir.join("corpus.toml.tmp"), b"half a manifest").unwrap();
    std::fs::write(dir.join("traces/t9.cact.tmp"), b"half a trace").unwrap();
    std::fs::write(dir.join("traces/stray.cact"), b"nobody references me").unwrap();
    let fp = fingerprint(&["cac corpus run", "prune=none"]);
    let journal_path = dir.join("results.journal");
    let mut journal = Journal::load(&journal_path, fp).unwrap();
    journal.record(
        "ghost@0123456789abcdef/cfg.toml@0011223344556677",
        &ModelStats::default(),
    );
    journal.claim(
        "ghost@0123456789abcdef/other.toml@8899aabbccddeeff",
        "ghost",
    );
    journal.save(&journal_path).unwrap();
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .unwrap();
        writeln!(f, "cell torn-beyond-recognition").unwrap();
    }
    // Duplicate [[quarantine]] records, as concurrent retried writers
    // could once produce.
    let entry_hash = corpus.entries()[0].hash;
    let dup = format!(
        "\n[[quarantine]]\nname = \"t0\"\nhash = \"{entry_hash:016x}\"\nreason = \"dup a\"\n\
         class = \"transient\"\n\n[[quarantine]]\nname = \"t0\"\nhash = \"{entry_hash:016x}\"\n\
         reason = \"dup b\"\nclass = \"transient\"\n"
    );
    let manifest_path = dir.join("corpus.toml");
    let mut text = std::fs::read_to_string(&manifest_path).unwrap();
    text.push_str(&dup);
    std::fs::write(&manifest_path, text).unwrap();

    let audit = fsck(&dir, false).unwrap();
    let kinds: Vec<&str> = audit.problems.iter().map(|p| p.kind).collect();
    for expect in [
        "orphan-tmp",
        "unmanifested-file",
        "stale-cell",
        "stale-claim",
        "torn-journal",
        "duplicate-quarantine",
    ] {
        assert!(kinds.contains(&expect), "missing {expect} in {kinds:?}");
    }
    assert_eq!(
        kinds.iter().filter(|k| **k == "orphan-tmp").count(),
        2,
        "both temp files flagged"
    );
    assert_eq!(
        audit.unrepaired(),
        audit.problems.len(),
        "audit-only mode repairs nothing"
    );

    let repair = fsck(&dir, true).unwrap();
    assert_eq!(
        repair.unrepaired(),
        0,
        "everything injected is mechanically repairable: {:?}",
        repair.problems
    );
    assert!(fsck(&dir, false).unwrap().is_clean());

    // The repair kept the real state: rerun restores the healthy cell.
    let mut corpus = Corpus::open(&dir).unwrap();
    let report = run(&mut corpus, &configs, &RunOptions::default()).unwrap();
    assert_eq!(report.summary.replayed, 0);
    assert_eq!(report.summary.restored, 1);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&cfg_dir).ok();
}

/// Unrepairable damage — a pool file deleted or tampered behind the
/// manifest's back — is reported, never "repaired" away.
#[test]
fn fsck_reports_but_never_repairs_lost_trace_content() {
    let dir = tmp_dir("fsck-lost");
    let corpus = build_corpus(&dir, 2, 1_000);
    let path0 = corpus.trace_path(&corpus.entries()[0]);
    let path1 = corpus.trace_path(&corpus.entries()[1]);
    std::fs::remove_file(&path0).unwrap();
    let mut bytes = std::fs::read(&path1).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path1, bytes).unwrap();

    let audit = fsck(&dir, true).unwrap();
    let kinds: Vec<&str> = audit.problems.iter().map(|p| p.kind).collect();
    assert!(kinds.contains(&"missing-trace-file"), "{kinds:?}");
    assert!(kinds.contains(&"trace-content"), "{kinds:?}");
    assert_eq!(audit.unrepaired(), 2, "lost content cannot be repaired");
    std::fs::remove_dir_all(&dir).ok();
}

/// fsck refuses directories that are not a corpus, so the CLI can map
/// the condition to its own exit code.
#[test]
fn fsck_refuses_non_corpus_directories() {
    let dir = tmp_dir("fsck-notacorpus");
    let err = fsck(&dir, false).unwrap_err().to_string();
    assert!(err.contains("not a corpus"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// ENOSPC during ingest.
// ---------------------------------------------------------------------

/// A disk-full failure mid-`add` leaves the store exactly as it was:
/// no manifest change, no stray temp file, fsck clean.
#[test]
fn enospc_during_add_leaves_a_clean_store() {
    let dir = tmp_dir("enospc");
    let mut corpus = build_corpus(&dir, 1, 1_000);
    let trace: Vec<TraceOp> = (0..4_000u64)
        .map(|i| TraceOp::load(0x7000 + 4 * i, 8 * i, 1, None))
        .collect();
    let raw = dir.join("big.cact");
    let mut buf = Vec::new();
    write_trace_columnar(&mut buf, trace).unwrap();
    std::fs::write(&raw, buf).unwrap();

    let fs = FaultFs::new(FaultPlan {
        seed: 7,
        enospc_after_bytes: Some(256),
        ..FaultPlan::default()
    });
    let err = corpus.add_with("big", &raw, &fs).unwrap_err().to_string();
    assert!(
        err.to_lowercase().contains("storage") || err.contains("big"),
        "unexpected error: {err}"
    );
    assert_eq!(corpus.entries().len(), 1, "manifest untouched");
    assert!(Corpus::open(&dir).unwrap().manifest().get("big").is_none());
    let audit = fsck(&dir, false).unwrap();
    assert!(
        audit.is_clean(),
        "failed add must clean up after itself: {:?}",
        audit.problems
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Chaos-harness property tests for the fleet supervisor: seeded fault
//! grids × retry/budget settings must always *converge* — every cell
//! either byte-identical to the undisturbed run or explicitly
//! classified (retried, failed, degraded) — and the supervisor's
//! attempt accounting must be deterministic.

use cac_corpus::run::{run, CellOutcome, RunOptions, RunReport};
use cac_corpus::supervisor::{CellBudget, ChaosPlan, RetryPolicy};
use cac_corpus::Corpus;
use cac_trace::fault::FaultSpec;
use cac_trace::TraceOp;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cac-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_config(dir: &Path, name: &str, body: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path.to_string_lossy().into_owned()
}

fn direct_mapped(size: &str) -> String {
    format!("name = \"dm-{size}\"\n[cache]\nsize = \"{size}\"\nline = 16\nways = 1\n")
}

fn ipoly(size: &str) -> String {
    format!("name = \"ipoly-{size}\"\n[cache]\nsize = \"{size}\"\nline = 16\nways = 2\nindex = \"ipoly\"\n")
}

/// A two-trace corpus: `victim` (chaos target) and `bystander`.
fn seeded_corpus(dir: &Path, ops: u64, stride: u64) -> Corpus {
    let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
    for (name, base) in [("victim", 0x1000u64), ("bystander", 0x9000_0000u64)] {
        let trace: Vec<TraceOp> = (0..ops)
            .map(|i| TraceOp::load(base + 4 * i, base + (stride * i) % 0x8000, 1, None))
            .collect();
        let raw = dir.join(format!("{name}.cact"));
        let mut buf = Vec::new();
        cac_trace::io::write_trace_columnar(&mut buf, trace).unwrap();
        std::fs::write(&raw, buf).unwrap();
        corpus.add(name, &raw).unwrap();
    }
    corpus
}

/// Runs the fleet into a fresh scratch journal (chaos-style: quarantine
/// decisions are reported, never persisted).
fn run_fresh(
    corpus: &mut Corpus,
    configs: &[String],
    dir: &Path,
    journal: &str,
    base: &RunOptions,
    chaos: Option<ChaosPlan>,
) -> RunReport {
    let path = dir.join(journal);
    std::fs::remove_file(&path).ok();
    let opts = RunOptions {
        chaos,
        journal: Some(path),
        persist_quarantine: false,
        ..base.clone()
    };
    run(corpus, configs, &opts).unwrap()
}

/// Convergence audit: `true` for byte-identical, counts explicit
/// classifications, panics on silent divergence.
fn audit(baseline: &RunReport, injected: &RunReport) -> (u64, u64) {
    let (mut identical, mut classified) = (0u64, 0u64);
    assert_eq!(baseline.rows.len(), injected.rows.len());
    for (brow, irow) in baseline.rows.iter().zip(&injected.rows) {
        assert_eq!(brow.cells.len(), irow.cells.len(), "cells dropped");
        for (bc, ic) in brow.cells.iter().zip(&irow.cells) {
            match (bc, ic) {
                (CellOutcome::Done { stats: bs, .. }, CellOutcome::Done { stats: is, .. }) => {
                    assert_eq!(bs, is, "silent divergence: stats differ under injection");
                    identical += 1;
                }
                (
                    CellOutcome::Degraded {
                        estimate: be,
                        se: bse,
                        ..
                    },
                    CellOutcome::Degraded {
                        estimate: ie,
                        se: ise,
                        ..
                    },
                ) if be.to_bits() == ie.to_bits() && bse.to_bits() == ise.to_bits() => {
                    identical += 1;
                }
                (_, CellOutcome::Failed { .. } | CellOutcome::Degraded { .. }) => classified += 1,
                (b, i) => panic!("silent divergence: {b:?} became {i:?} under injection"),
            }
        }
    }
    (identical, classified)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full fault grid (bit flips, truncation, injected I/O errors)
    /// × retry × budget settings converges: bystander cells are always
    /// byte-identical, victim cells are byte-identical or explicitly
    /// classified, and the whole injected run is deterministic.
    #[test]
    fn chaos_grid_converges_and_is_deterministic(
        kind in 0usize..3,
        fault_seed in any::<u64>(),
        flip_ppm in 20u32..400,
        cut in 1_000u64..40_000,
        faulty_attempts in 0u32..4,
        retry in 0u32..3,
        budgeted in any::<bool>(),
    ) {
        let dir = tmp_dir(&format!("grid-{kind}-{faulty_attempts}-{retry}-{budgeted}"));
        let mut corpus = seeded_corpus(&dir, 20_000, 16);
        let configs = vec![
            write_config(&dir, "dm.toml", &direct_mapped("4KiB")),
            write_config(&dir, "ipoly.toml", &ipoly("4KiB")),
        ];
        let spec = match kind {
            0 => FaultSpec { flip_ppm, seed: fault_seed, ..FaultSpec::default() },
            1 => FaultSpec { truncate_at: Some(cut), ..FaultSpec::default() },
            _ => FaultSpec { io_error_at: Some(cut), ..FaultSpec::default() },
        };
        let base = RunOptions {
            retry: RetryPolicy { attempts: retry, base_ms: 0, seed: 7 },
            budget: budgeted.then_some(CellBudget::Refs(6_000)),
            chunk: 1024,
            ..RunOptions::default()
        };
        let plan = ChaosPlan { spec, faulty_attempts, trace: Some("victim".into()) };

        let baseline = run_fresh(&mut corpus, &configs, &dir, "base.journal", &base, None);
        let injected =
            run_fresh(&mut corpus, &configs, &dir, "inj.journal", &base, Some(plan.clone()));
        let (identical, classified) = audit(&baseline, &injected);
        prop_assert_eq!(identical + classified, 4, "every cell resolved");

        // The bystander is outside the blast radius: always identical,
        // single attempt.
        let bystander = injected.health.iter().find(|h| h.trace == "bystander").unwrap();
        prop_assert_eq!(bystander.attempts, 1);
        prop_assert!(bystander.quarantined.is_none());
        for (bc, ic) in baseline.rows[1].cells.iter().zip(&injected.rows[1].cells) {
            prop_assert_eq!(bc, ic);
        }

        // Any cell that was not recovered byte-identically must come
        // with the victim's quarantine verdict — never silence.
        let victim = injected.health.iter().find(|h| h.trace == "victim").unwrap();
        if classified > 0 {
            prop_assert!(victim.quarantined.is_some());
        }

        // Determinism: the same plan replays to the same report.
        let again =
            run_fresh(&mut corpus, &configs, &dir, "inj2.journal", &base, Some(plan));
        prop_assert_eq!(&again.rows, &injected.rows);
        prop_assert_eq!(&again.health, &injected.health);
        prop_assert_eq!(&again.summary, &injected.summary);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Injected I/O errors are always transient, so the retry ladder is
    /// exact: a fault covering `f` leading attempts costs
    /// `min(f, retry) + 1` attempts and recovers byte-identically iff
    /// the allowance outlasts it.
    #[test]
    fn io_faults_consume_the_exact_retry_ladder(
        faulty_attempts in 0u32..4,
        retry in 0u32..3,
    ) {
        let dir = tmp_dir(&format!("ladder-{faulty_attempts}-{retry}"));
        let mut corpus = seeded_corpus(&dir, 8_000, 16);
        let configs = vec![write_config(&dir, "dm.toml", &direct_mapped("4KiB"))];
        let base = RunOptions {
            retry: RetryPolicy { attempts: retry, base_ms: 0, seed: 3 },
            ..RunOptions::default()
        };
        let plan = ChaosPlan {
            spec: FaultSpec { io_error_at: Some(64), ..FaultSpec::default() },
            faulty_attempts,
            trace: Some("victim".into()),
        };
        let baseline = run_fresh(&mut corpus, &configs, &dir, "base.journal", &base, None);
        let injected =
            run_fresh(&mut corpus, &configs, &dir, "inj.journal", &base, Some(plan));
        let victim = injected.health.iter().find(|h| h.trace == "victim").unwrap();
        prop_assert_eq!(victim.attempts, faulty_attempts.min(retry) + 1);
        prop_assert_eq!(victim.backoffs_ms.len() as u32, faulty_attempts.min(retry));
        let recovered = faulty_attempts <= retry;
        match (&baseline.rows[0].cells[0], &injected.rows[0].cells[0]) {
            (CellOutcome::Done { stats: bs, .. }, CellOutcome::Done { stats: is, .. }) => {
                prop_assert!(recovered);
                prop_assert_eq!(bs, is);
            }
            (_, CellOutcome::Failed { class, .. }) => {
                prop_assert!(!recovered);
                prop_assert_eq!(*class, cac_trace::io::FailureClass::Transient);
                prop_assert!(victim.quarantined.is_some());
            }
            (b, i) => return Err(TestCaseError::Fail(format!("unexpected pair {b:?} / {i:?}"))),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Backoff schedules are a pure function of (policy, trace key):
    /// reruns reproduce them exactly, and every delay sits inside the
    /// jittered exponential envelope.
    #[test]
    fn backoff_schedules_are_deterministic_and_enveloped(
        seed in any::<u64>(),
        base_ms in 1u64..5_000,
        attempts in 1u32..8,
        key_hash in any::<u64>(),
    ) {
        let key = format!("trace-{key_hash:x}@{:016x}", key_hash.rotate_left(17));
        let p = RetryPolicy { attempts, base_ms, seed };
        let a = p.schedule(&key);
        prop_assert_eq!(&a, &p.schedule(&key));
        prop_assert_eq!(a.len() as u32, attempts);
        for (i, &d) in a.iter().enumerate() {
            let exp = base_ms.saturating_mul(1 << (i as u32).min(16));
            prop_assert!(
                d >= exp / 2 && d < exp + exp / 2,
                "delay {i} = {d} outside [{}, {})", exp / 2, exp + exp / 2
            );
        }
    }

    /// On clean benchmark traces × configs inside the analytic tier's
    /// validated regime (where `cac analytic validate` meets its
    /// documented 5-point bound), budget-degraded estimates stay within
    /// that bound, widened by the sampling pass's own standard error.
    #[test]
    fn degraded_estimates_respect_the_analytic_bound(
        combo in prop_oneof![
            Just((cac_trace::SpecBenchmark::Swim, "8KiB")),
            Just((cac_trace::SpecBenchmark::Tomcatv, "8KiB")),
            Just((cac_trace::SpecBenchmark::Tomcatv, "16KiB")),
            Just((cac_trace::SpecBenchmark::Compress, "8KiB")),
            Just((cac_trace::SpecBenchmark::Compress, "16KiB")),
        ],
        bench_seed in 1u64..1_000,
    ) {
        let (bench, size) = combo;
        let dir = tmp_dir(&format!("bound-{bench:?}-{size}"));
        let mut corpus = {
            let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
            for (name, seed) in [("victim", bench_seed), ("bystander", bench_seed + 1)] {
                let raw = dir.join(format!("{name}.cact"));
                let mut buf = Vec::new();
                cac_trace::io::write_trace_columnar(
                    &mut buf,
                    bench.generator(seed).take(30_000),
                )
                .unwrap();
                std::fs::write(&raw, buf).unwrap();
                corpus.add(name, &raw).unwrap();
            }
            corpus
        };
        let configs = vec![
            write_config(&dir, "dm.toml", &direct_mapped(size)),
            write_config(&dir, "ipoly.toml", &ipoly(size)),
        ];
        let base = RunOptions { chunk: 1024, ..RunOptions::default() };
        let truth = run_fresh(&mut corpus, &configs, &dir, "truth.journal", &base, None);
        let budgeted = RunOptions {
            budget: Some(CellBudget::Refs(8_000)),
            ..base
        };
        let degraded =
            run_fresh(&mut corpus, &configs, &dir, "deg.journal", &budgeted, None);
        for row in 0..2 {
            for ((cfg, full), cheap) in configs
                .iter()
                .zip(&truth.rows[row].cells)
                .zip(&degraded.rows[row].cells)
            {
                let CellOutcome::Done { stats, .. } = full else { panic!() };
                let CellOutcome::Degraded { estimate, se, .. } = cheap else {
                    return Err(TestCaseError::Fail(format!("expected degraded, got {cheap:?}")));
                };
                let actual = stats.demand.miss_ratio();
                prop_assert!(
                    (estimate - actual).abs() <= 0.05 + 4.0 * se,
                    "{cfg}: estimate {estimate:.4} vs actual {actual:.4} (se {se:.4})"
                );
            }
        }
        prop_assert_eq!(degraded.summary.degraded, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The acceptance criterion verbatim: a fully-poisoned trace costs at
/// most `1 + retry` attempts exactly once; after that every rerun
/// restores its FAILED cells from the journal and replays nothing.
#[test]
fn poisoned_trace_costs_its_retry_allowance_exactly_once() {
    let dir = tmp_dir("poisoned-once");
    let mut corpus = seeded_corpus(&dir, 8_000, 16);
    let configs = vec![
        write_config(&dir, "dm.toml", &direct_mapped("4KiB")),
        write_config(&dir, "big.toml", &direct_mapped("32KiB")),
    ];
    let journal = dir.join("poison.journal");
    let opts = RunOptions {
        retry: RetryPolicy {
            attempts: 2,
            base_ms: 0,
            seed: 1,
        },
        chaos: Some(ChaosPlan {
            spec: FaultSpec {
                io_error_at: Some(64),
                ..FaultSpec::default()
            },
            faulty_attempts: u32::MAX, // never recovers
            trace: Some("victim".into()),
        }),
        journal: Some(journal),
        persist_quarantine: false,
        ..RunOptions::default()
    };
    let cold = run(&mut corpus, &configs, &opts).unwrap();
    let victim = |r: &RunReport| r.health.iter().position(|h| h.trace == "victim").unwrap();
    let v = victim(&cold);
    assert_eq!(cold.health[v].attempts, 3, "full allowance spent");
    assert_eq!(cold.summary.failed, 2);
    assert_eq!(cold.summary.retried, 2);
    assert!(cold.rows[v].cells.iter().all(|c| matches!(
        c,
        CellOutcome::Failed {
            restored: false,
            ..
        }
    )));

    // Rerun with the identical (still-poisoned) setup: zero replays,
    // zero attempts — the FAILED cells restore from the journal.
    let warm = run(&mut corpus, &configs, &opts).unwrap();
    let v = victim(&warm);
    assert_eq!(warm.health[v].attempts, 0);
    assert_eq!(
        warm.summary.replayed + warm.summary.failed + warm.summary.retried,
        0
    );
    assert_eq!(warm.summary.restored, 4);
    assert!(warm.rows[v]
        .cells
        .iter()
        .all(|c| matches!(c, CellOutcome::Failed { restored: true, .. })));
    std::fs::remove_dir_all(&dir).ok();
}

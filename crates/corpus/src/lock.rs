//! Multi-runner coordination: the corpus root lock and runner leases.
//!
//! Two pieces, both built on the standard library's advisory file
//! locks (`File::lock` / `try_lock` — no extra dependencies, released
//! automatically by the OS when the holding process dies):
//!
//! * [`CorpusLock`] — an advisory lock on `<corpus>/.corpus.lock`,
//!   taken **exclusive** around any mutation of shared state (manifest
//!   saves, journal read-modify-write transactions) and **shared** for
//!   consistent reads. Transactions hold it briefly; replay work runs
//!   unlocked.
//! * [`RunnerLease`] — liveness without clocks. Each `corpus run`
//!   process holds an exclusive lock on `<corpus>/locks/<id>.lock` for
//!   its whole lifetime. A journal claim row names its runner id; a
//!   peer decides "is that runner still alive?" by probing the
//!   claimant's lock file with [`runner_alive`] — if the probe can take
//!   the lock, the owner is gone and the claim is stale (takeover is
//!   safe). No heartbeats, no timestamps, no false takeovers from a
//!   slow-but-alive peer.
//!
//! Locks are per open file description, so two runners inside one
//! process (tests, or threaded drivers) conflict exactly like two
//! processes. They are **not** re-entrant: code must never nest
//! [`CorpusLock`] acquisitions.

use crate::CorpusError;
use std::fs::{File, OpenOptions, TryLockError};
use std::path::{Path, PathBuf};

/// Name of the corpus root lock file inside the corpus directory.
pub const LOCK_FILE: &str = ".corpus.lock";
/// Name of the runner-lease subdirectory inside the corpus directory.
pub const LOCKS_DIR: &str = "locks";

fn open_lock_file(path: &Path) -> Result<File, CorpusError> {
    OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(path)
        .map_err(|e| CorpusError::io(format!("opening lock file {}", path.display()), e))
}

/// A held advisory lock on the corpus root. Dropping it releases the
/// lock; so does process death, which is the whole point.
#[derive(Debug)]
pub struct CorpusLock {
    _file: File,
}

impl CorpusLock {
    /// Blocks until the exclusive corpus lock is held. Take this around
    /// any mutation of `corpus.toml` or `results.journal`.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the lock file cannot be opened or locked.
    pub fn exclusive(dir: &Path) -> Result<CorpusLock, CorpusError> {
        let file = open_lock_file(&dir.join(LOCK_FILE))?;
        file.lock()
            .map_err(|e| CorpusError::io(format!("locking corpus {}", dir.display()), e))?;
        Ok(CorpusLock { _file: file })
    }

    /// Blocks until a shared (read) corpus lock is held: many readers,
    /// no concurrent mutator.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the lock file cannot be opened or locked.
    pub fn shared(dir: &Path) -> Result<CorpusLock, CorpusError> {
        let file = open_lock_file(&dir.join(LOCK_FILE))?;
        file.lock_shared()
            .map_err(|e| CorpusError::io(format!("read-locking corpus {}", dir.display()), e))?;
        Ok(CorpusLock { _file: file })
    }
}

/// A runner's liveness token: an exclusive lock on
/// `<corpus>/locks/<id>.lock` held for the runner's whole lifetime
/// (released by drop or process death).
#[derive(Debug)]
pub struct RunnerLease {
    _file: File,
    id: String,
    path: PathBuf,
}

impl RunnerLease {
    /// Acquires the lease for runner `id`. Ids use the trace-name
    /// charset so they are safe as file names.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] if `id` is malformed or another live
    /// process already runs under it; [`CorpusError::Io`] on filesystem
    /// failures.
    pub fn acquire(dir: &Path, id: &str) -> Result<RunnerLease, CorpusError> {
        crate::store::validate_name(id)
            .map_err(|_| CorpusError::Manifest(format!(
                "invalid runner id {id:?} (want 1-64 chars of [A-Za-z0-9._-], not starting with '.')"
            )))?;
        let locks = dir.join(LOCKS_DIR);
        std::fs::create_dir_all(&locks)
            .map_err(|e| CorpusError::io(format!("creating {}", locks.display()), e))?;
        let path = locks.join(format!("{id}.lock"));
        let file = open_lock_file(&path)?;
        match file.try_lock() {
            Ok(()) => Ok(RunnerLease {
                _file: file,
                id: id.to_owned(),
                path,
            }),
            Err(TryLockError::WouldBlock) => Err(CorpusError::Manifest(format!(
                "runner id {id:?} is already active on this corpus — pick a distinct --runner id"
            ))),
            Err(TryLockError::Error(e)) => Err(CorpusError::io(
                format!("locking runner lease {}", path.display()),
                e,
            )),
        }
    }

    /// The runner id this lease covers.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The lease file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Probes whether runner `id` is alive on this corpus: its lease file
/// exists and is exclusively locked by some process. A missing file or
/// an acquirable lock means the runner is gone and its claims are
/// stale. Probe errors report "alive" — takeover must be provably safe.
pub fn runner_alive(dir: &Path, id: &str) -> bool {
    let path = dir.join(LOCKS_DIR).join(format!("{id}.lock"));
    let Ok(file) = File::open(&path) else {
        return false; // no lease file: never started here, or swept
    };
    match file.try_lock() {
        Ok(()) => {
            let _ = file.unlock();
            false // we could take it: the owner is dead
        }
        Err(TryLockError::WouldBlock) => true,
        Err(TryLockError::Error(_)) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-lock-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn exclusive_lock_excludes_and_releases_on_drop() {
        let dir = tmp_dir("excl");
        let held = CorpusLock::exclusive(&dir).unwrap();
        // A second open file description cannot take it while held…
        let probe = open_lock_file(&dir.join(LOCK_FILE)).unwrap();
        assert!(matches!(probe.try_lock(), Err(TryLockError::WouldBlock)));
        // …and can as soon as the holder drops.
        drop(held);
        assert!(probe.try_lock().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_locks_coexist_but_block_writers() {
        let dir = tmp_dir("shared");
        let r1 = CorpusLock::shared(&dir).unwrap();
        let _r2 = CorpusLock::shared(&dir).unwrap();
        let probe = open_lock_file(&dir.join(LOCK_FILE)).unwrap();
        assert!(matches!(probe.try_lock(), Err(TryLockError::WouldBlock)));
        drop(r1);
        assert!(matches!(probe.try_lock(), Err(TryLockError::WouldBlock)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leases_give_liveness_without_clocks() {
        let dir = tmp_dir("lease");
        assert!(!runner_alive(&dir, "r1"), "no lease file = dead");
        let lease = RunnerLease::acquire(&dir, "r1").unwrap();
        assert_eq!(lease.id(), "r1");
        assert!(runner_alive(&dir, "r1"), "held lease = alive");
        assert!(!runner_alive(&dir, "r2"));
        // Duplicate ids are refused while the first holder lives.
        let err = RunnerLease::acquire(&dir, "r1").unwrap_err().to_string();
        assert!(err.contains("already active"), "{err}");
        // Death (drop) makes the runner probe dead even though the
        // lease file remains on disk.
        drop(lease);
        assert!(dir.join(LOCKS_DIR).join("r1.lock").exists());
        assert!(!runner_alive(&dir, "r1"));
        // And the id becomes acquirable again (takeover-by-restart).
        assert!(RunnerLease::acquire(&dir, "r1").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_runner_ids_are_refused() {
        let dir = tmp_dir("badid");
        for bad in ["", "../evil", "a b", ".hidden", "x/y"] {
            assert!(RunnerLease::acquire(&dir, bad).is_err(), "accepted {bad:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! `cac corpus fsck`: manifest ↔ pool ↔ journal consistency audit.
//!
//! The durable-store invariants the commit protocol and locks maintain
//! (see [`crate::lock`] and [`cac_trace::io::commitfs`]) are only as
//! good as the ability to *check* them. This module audits a corpus
//! directory for every artifact a crash, a torn write, or a dead
//! runner can leave behind, and — with `repair` — fixes the
//! mechanically-safe subset:
//!
//! | problem kind           | meaning                                        | repair            |
//! |------------------------|------------------------------------------------|-------------------|
//! | `orphan-tmp`           | `*.tmp` left between temp-write and rename     | remove            |
//! | `missing-trace-file`   | manifest entry whose pool file is gone         | report only       |
//! | `trace-content`        | pool file size/hash disagree with manifest     | report only       |
//! | `unmanifested-file`    | `traces/*.cact` the manifest does not know     | remove            |
//! | `torn-journal`         | journal lines that fail their checksum         | rewrite journal   |
//! | `stale-cell`           | journal cell keyed to an unknown trace@hash    | drop cell         |
//! | `stale-claim`          | journal claim held by a dead runner            | release claim     |
//! | `duplicate-quarantine` | repeated `[[quarantine]]` (name, hash) records | dedup + resave    |
//! | `manifest-unreadable`  | manifest exists but does not parse             | report only       |
//! | `journal-unreadable`   | journal exists but is not a journal            | report only       |
//!
//! "Report only" problems need data fsck cannot conjure (re-`add` the
//! trace); everything else is repaired by deleting or rewriting state
//! that is provably not part of any committed store.

use crate::lock::{runner_alive, CorpusLock};
use crate::manifest::Manifest;
use crate::store::{MANIFEST_FILE, RESULTS_FILE, TRACES_DIR};
use crate::{content_hash, CorpusError};
use cac_sim::config::toml;
use cac_sim::journal::Journal;
use cac_trace::io::commitfs::{CommitFs, DiskFs};
use std::collections::HashSet;
use std::path::Path;

/// One inconsistency found by [`fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckProblem {
    /// Stable machine-readable kind (see the module table).
    pub kind: &'static str,
    /// What the problem is about (a path, trace name, or cell key).
    pub subject: String,
    /// Human-readable detail.
    pub detail: String,
    /// Whether this kind can be repaired mechanically.
    pub repairable: bool,
    /// Whether this run repaired it.
    pub repaired: bool,
}

/// The audit's outcome: every problem found, plus store inventory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Problems in discovery order.
    pub problems: Vec<FsckProblem>,
    /// Traces listed in the manifest.
    pub traces: usize,
    /// Completed cells in the results journal.
    pub cells: usize,
    /// Outstanding claims in the results journal.
    pub claims: usize,
}

impl FsckReport {
    /// Problems that remain after this run (unrepairable kinds, or any
    /// problem when `repair` was off).
    pub fn unrepaired(&self) -> usize {
        self.problems.iter().filter(|p| !p.repaired).count()
    }

    /// True if the store is fully consistent (no problems at all).
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Audits the corpus at `dir`; with `repair`, fixes the
/// mechanically-safe subset in place. Takes the corpus lock — shared
/// for a read-only audit, exclusive when repairing.
///
/// # Errors
///
/// [`CorpusError::Manifest`] if `dir` is not a corpus (no
/// `corpus.toml`); [`CorpusError::Io`] on filesystem failures.
pub fn fsck(dir: &Path, repair: bool) -> Result<FsckReport, CorpusError> {
    fsck_with(dir, repair, &DiskFs)
}

/// [`fsck`] through an explicit [`CommitFs`], so the repair writes
/// themselves can be crash-tested.
///
/// # Errors
///
/// As [`fsck`].
pub fn fsck_with(dir: &Path, repair: bool, fs: &dyn CommitFs) -> Result<FsckReport, CorpusError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    if !manifest_path.exists() {
        return Err(CorpusError::Manifest(format!(
            "{} is not a corpus (no {MANIFEST_FILE})",
            dir.display()
        )));
    }
    let _lock = if repair {
        CorpusLock::exclusive(dir)?
    } else {
        CorpusLock::shared(dir)?
    };
    let mut report = FsckReport::default();

    // Orphaned temp files anywhere a commit sequence writes them.
    for scan_dir in [dir.to_path_buf(), dir.join(TRACES_DIR)] {
        let Ok(entries) = std::fs::read_dir(&scan_dir) else {
            continue;
        };
        let mut tmps: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".tmp"))
            })
            .collect();
        tmps.sort();
        for tmp in tmps {
            let repaired = repair && fs.remove_file(&tmp).is_ok();
            report.problems.push(FsckProblem {
                kind: "orphan-tmp",
                subject: rel_display(dir, &tmp),
                detail: "uncommitted temp file left by an interrupted commit".into(),
                repairable: true,
                repaired,
            });
        }
    }

    // Duplicate [[quarantine]] records in the raw document (the parsed
    // Manifest heals them in memory; repair persists the healing).
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| CorpusError::io(format!("reading {}", manifest_path.display()), e))?;
    let raw_dups = raw_quarantine_duplicates(&manifest_text);

    let manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            report.problems.push(FsckProblem {
                kind: "manifest-unreadable",
                subject: MANIFEST_FILE.into(),
                detail: e.to_string(),
                repairable: false,
                repaired: false,
            });
            return Ok(report);
        }
    };
    report.traces = manifest.traces.len();

    if raw_dups > 0 {
        let repaired = repair && manifest.save_with(&manifest_path, fs).is_ok();
        report.problems.push(FsckProblem {
            kind: "duplicate-quarantine",
            subject: MANIFEST_FILE.into(),
            detail: format!("{raw_dups} duplicate [[quarantine]] record(s) by (name, hash)"),
            repairable: true,
            repaired,
        });
    }

    // Manifest -> pool: every entry's file must exist with the recorded
    // size and content hash.
    for entry in &manifest.traces {
        let path = dir.join(&entry.file);
        match std::fs::read(&path) {
            Err(_) => report.problems.push(FsckProblem {
                kind: "missing-trace-file",
                subject: entry.name.clone(),
                detail: format!("{} is missing — re-add the trace", entry.file),
                repairable: false,
                repaired: false,
            }),
            Ok(bytes) => {
                let hash = content_hash(&bytes);
                if bytes.len() as u64 != entry.bytes || hash != entry.hash {
                    report.problems.push(FsckProblem {
                        kind: "trace-content",
                        subject: entry.name.clone(),
                        detail: format!(
                            "{}: stored {} bytes hash {hash:016x}, manifest says {} bytes \
                             hash {:016x} — re-add the trace",
                            entry.file,
                            bytes.len(),
                            entry.bytes,
                            entry.hash
                        ),
                        repairable: false,
                        repaired: false,
                    });
                }
            }
        }
    }

    // Pool -> manifest: stored .cact files nothing references.
    let referenced: HashSet<&str> = manifest.traces.iter().map(|e| e.file.as_str()).collect();
    if let Ok(entries) = std::fs::read_dir(dir.join(TRACES_DIR)) {
        let mut strays: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.extension().is_some_and(|x| x == "cact")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_none_or(|n| !referenced.contains(format!("{TRACES_DIR}/{n}").as_str()))
            })
            .collect();
        strays.sort();
        for stray in strays {
            let repaired = repair && fs.remove_file(&stray).is_ok();
            report.problems.push(FsckProblem {
                kind: "unmanifested-file",
                subject: rel_display(dir, &stray),
                detail: "stored trace file the manifest does not reference".into(),
                repairable: true,
                repaired,
            });
        }
    }

    // Journal: torn lines, cells keyed to unknown traces, claims held
    // by dead runners.
    let journal_path = dir.join(RESULTS_FILE);
    if journal_path.exists() {
        match Journal::scan(&journal_path) {
            Err(e) => report.problems.push(FsckProblem {
                kind: "journal-unreadable",
                subject: RESULTS_FILE.into(),
                detail: e.to_string(),
                repairable: false,
                repaired: false,
            }),
            Ok(scan) => {
                let mut journal =
                    Journal::load(&journal_path, scan.fingerprint).map_err(CorpusError::Sim)?;
                let live: HashSet<String> = manifest
                    .traces
                    .iter()
                    .map(|e| format!("{}@{:016x}", e.name, e.hash))
                    .collect();
                let mut dirty = false;

                if scan.torn > 0 {
                    dirty = true;
                    report.problems.push(FsckProblem {
                        kind: "torn-journal",
                        subject: RESULTS_FILE.into(),
                        detail: format!("{} torn/corrupt line(s)", scan.torn),
                        repairable: true,
                        repaired: false, // flipped below once the rewrite lands
                    });
                }
                let mut stale_cells: Vec<String> = journal
                    .keys()
                    .filter(|k| !known_trace(k, &live))
                    .map(str::to_owned)
                    .collect();
                stale_cells.sort();
                for key in stale_cells {
                    journal.remove(&key);
                    dirty = true;
                    report.problems.push(FsckProblem {
                        kind: "stale-cell",
                        subject: key,
                        detail: "cell keyed to a trace/hash not in the manifest".into(),
                        repairable: true,
                        repaired: false,
                    });
                }
                let mut stale_claims: Vec<(String, String)> = journal
                    .claims()
                    .filter(|(k, c)| !known_trace(k, &live) || !runner_alive(dir, &c.runner))
                    .map(|(k, c)| (k.to_owned(), c.runner.clone()))
                    .collect();
                stale_claims.sort();
                for (key, runner) in stale_claims {
                    journal.release_claim(&key);
                    dirty = true;
                    report.problems.push(FsckProblem {
                        kind: "stale-claim",
                        subject: key,
                        detail: format!("claim held by dead or unknown runner {runner:?}"),
                        repairable: true,
                        repaired: false,
                    });
                }
                report.cells = journal.len();
                report.claims = journal.claims().count();
                if dirty && repair && journal.save_with(&journal_path, fs).is_ok() {
                    for p in &mut report.problems {
                        if matches!(p.kind, "torn-journal" | "stale-cell" | "stale-claim") {
                            p.repaired = true;
                        }
                    }
                }
            }
        }
    }

    Ok(report)
}

/// Does this cell/claim key's `<trace>@<hash>` prefix name a trace the
/// manifest currently holds?
fn known_trace(key: &str, live: &HashSet<String>) -> bool {
    key.split_once('/')
        .is_some_and(|(trace, _)| live.contains(trace))
}

/// Counts `[[quarantine]]` records in the raw document that repeat an
/// earlier (name, hash) pair.
fn raw_quarantine_duplicates(text: &str) -> usize {
    let Ok(doc) = toml::parse(text) else {
        return 0;
    };
    let mut seen = HashSet::new();
    let mut dups = 0;
    for t in doc.section_array("quarantine") {
        let name = t.get("name").and_then(|v| v.as_str());
        let hash = t.get("hash").and_then(|v| v.as_str());
        if let (Some(name), Some(hash)) = (name, hash) {
            if !seen.insert((name.to_owned(), hash.to_owned())) {
                dups += 1;
            }
        }
    }
    dups
}

fn rel_display(dir: &Path, path: &Path) -> String {
    path.strip_prefix(dir).unwrap_or(path).display().to_string()
}

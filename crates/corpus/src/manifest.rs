//! The `corpus.toml` manifest: the corpus's table of contents.
//!
//! One `[[trace]]` entry per stored trace. The entry records the
//! *stored* (columnar) file's FNV-64 content hash — the value that keys
//! result cells — plus record counts and sizes so `cac corpus ls` can
//! describe the corpus without decoding anything.
//!
//! The file is written through the same TOML subset the simulator
//! configs use ([`cac_sim::config::toml`]), and saves are
//! crash-atomic via the [`cac_trace::io::commitfs`] protocol: the
//! manifest is rendered to `corpus.toml.tmp`, fsynced, renamed into
//! place, and the directory entry is fsynced — a crash mid-save leaves
//! the previous manifest intact. Quarantine lists are deduplicated by
//! `(name, hash)` on both load and save, so concurrent or retried
//! writers cannot accumulate duplicate `[[quarantine]]` records.

use crate::CorpusError;
use cac_sim::config::toml;
use cac_trace::io::commitfs::{CommitFs, DiskFs};
use cac_trace::io::FailureClass;
use std::path::Path;

/// Manifest format version this crate reads and writes.
pub const MANIFEST_VERSION: i64 = 1;

/// One stored trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Corpus-unique trace name (the `add --name` argument).
    pub name: String,
    /// Path of the stored columnar file, relative to the corpus dir.
    pub file: String,
    /// FNV-64 content hash of the stored file's bytes.
    pub hash: u64,
    /// Trace operations (all record kinds).
    pub ops: u64,
    /// Memory references (loads + stores) among them.
    pub refs: u64,
    /// Stored file size in bytes.
    pub bytes: u64,
    /// Columnar blocks in the stored file.
    pub blocks: u64,
}

/// One quarantined trace: the fleet supervisor exhausted its retries
/// (or hit a permanent failure) against this exact trace content, so
/// `corpus run` skips it until it is re-added with different bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Name of the quarantined trace.
    pub name: String,
    /// Content hash the trace had when it was quarantined. A re-added
    /// trace with a different hash clears the quarantine automatically.
    pub hash: u64,
    /// Human-readable reason (the classified failure message).
    pub reason: String,
    /// Failure class at quarantine time (permanent, or transient after
    /// retry exhaustion).
    pub class: FailureClass,
}

/// The parsed manifest: an ordered list of [`TraceEntry`] plus the
/// supervisor's quarantine list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Entries, in insertion order.
    pub traces: Vec<TraceEntry>,
    /// Quarantined traces, in quarantine order.
    pub quarantine: Vec<QuarantineEntry>,
}

fn str_field(t: &toml::Table, key: &str, idx: usize) -> Result<String, CorpusError> {
    str_field_in(t, "trace", key, idx)
}

fn str_field_in(
    t: &toml::Table,
    section: &str,
    key: &str,
    idx: usize,
) -> Result<String, CorpusError> {
    t.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| {
            CorpusError::Manifest(format!("[[{section}]] #{idx}: missing string {key:?}"))
        })
}

fn int_field(t: &toml::Table, key: &str, idx: usize) -> Result<u64, CorpusError> {
    t.get(key)
        .and_then(|v| v.as_int())
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| {
            CorpusError::Manifest(format!(
                "[[trace]] #{idx}: missing non-negative integer {key:?}"
            ))
        })
}

impl Manifest {
    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] on syntax errors, an unsupported
    /// `version`, missing fields, malformed hashes, or duplicate trace
    /// names.
    pub fn from_toml_str(input: &str) -> Result<Manifest, CorpusError> {
        let doc = toml::parse(input).map_err(|e| CorpusError::Manifest(e.to_string()))?;
        let version = doc
            .root
            .get("version")
            .and_then(|v| v.as_int())
            .ok_or_else(|| CorpusError::Manifest("missing integer `version`".into()))?;
        if version != MANIFEST_VERSION {
            return Err(CorpusError::Manifest(format!(
                "unsupported manifest version {version} (supported: {MANIFEST_VERSION})"
            )));
        }
        let mut traces = Vec::new();
        for (idx, t) in doc.section_array("trace").into_iter().enumerate() {
            let name = str_field(t, "name", idx)?;
            let file = str_field(t, "file", idx)?;
            let hash_str = str_field(t, "hash", idx)?;
            let hash = u64::from_str_radix(&hash_str, 16).map_err(|_| {
                CorpusError::Manifest(format!(
                    "[[trace]] #{idx}: hash {hash_str:?} is not 16 hex digits"
                ))
            })?;
            if hash_str.len() != 16 {
                return Err(CorpusError::Manifest(format!(
                    "[[trace]] #{idx}: hash {hash_str:?} is not 16 hex digits"
                )));
            }
            traces.push(TraceEntry {
                name,
                file,
                hash,
                ops: int_field(t, "ops", idx)?,
                refs: int_field(t, "refs", idx)?,
                bytes: int_field(t, "bytes", idx)?,
                blocks: int_field(t, "blocks", idx)?,
            });
        }
        let mut quarantine = Vec::new();
        for (idx, t) in doc.section_array("quarantine").into_iter().enumerate() {
            let name = str_field_in(t, "quarantine", "name", idx)?;
            let hash_str = str_field_in(t, "quarantine", "hash", idx)?;
            let hash = match u64::from_str_radix(&hash_str, 16) {
                Ok(h) if hash_str.len() == 16 => h,
                _ => {
                    return Err(CorpusError::Manifest(format!(
                        "[[quarantine]] #{idx}: hash {hash_str:?} is not 16 hex digits"
                    )))
                }
            };
            let class_str = str_field_in(t, "quarantine", "class", idx)?;
            let class = FailureClass::parse(&class_str).ok_or_else(|| {
                CorpusError::Manifest(format!(
                    "[[quarantine]] #{idx}: class {class_str:?} is not \
                     \"transient\" or \"permanent\""
                ))
            })?;
            quarantine.push(QuarantineEntry {
                name,
                hash,
                reason: str_field_in(t, "quarantine", "reason", idx)?,
                class,
            });
        }
        let mut m = Manifest { traces, quarantine };
        if let Some(dup) = m.first_duplicate_name() {
            return Err(CorpusError::Manifest(format!(
                "duplicate trace name {dup:?}"
            )));
        }
        // Heal duplicate quarantine records (torn/interleaved writers
        // from before the corpus lock existed) instead of refusing.
        m.dedup_quarantine();
        Ok(m)
    }

    /// Renders the manifest to its canonical TOML form.
    ///
    /// Rendering is deterministic (entries in list order, fixed field
    /// order), so two manifests with equal entries are byte-identical
    /// on disk.
    pub fn to_toml_string(&self) -> String {
        let mut out = String::new();
        out.push_str("# cac trace corpus manifest — edit through `cac corpus`, not by hand.\n");
        out.push_str(&format!("version = {MANIFEST_VERSION}\n"));
        for e in &self.traces {
            out.push_str("\n[[trace]]\n");
            out.push_str(&format!("name = \"{}\"\n", escape(&e.name)));
            out.push_str(&format!("file = \"{}\"\n", escape(&e.file)));
            out.push_str(&format!("hash = \"{:016x}\"\n", e.hash));
            out.push_str(&format!("ops = {}\n", e.ops));
            out.push_str(&format!("refs = {}\n", e.refs));
            out.push_str(&format!("bytes = {}\n", e.bytes));
            out.push_str(&format!("blocks = {}\n", e.blocks));
        }
        for q in &self.quarantine {
            out.push_str("\n[[quarantine]]\n");
            out.push_str(&format!("name = \"{}\"\n", escape(&q.name)));
            out.push_str(&format!("hash = \"{:016x}\"\n", q.hash));
            out.push_str(&format!("reason = \"{}\"\n", escape(&q.reason)));
            out.push_str(&format!("class = \"{}\"\n", q.class));
        }
        out
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&TraceEntry> {
        self.traces.iter().find(|e| e.name == name)
    }

    /// The quarantine record for a trace, if its *current* content is
    /// quarantined (a stale record for a since-re-added trace does not
    /// count — different bytes deserve a fresh chance).
    pub fn quarantined(&self, name: &str) -> Option<&QuarantineEntry> {
        let current = self.get(name)?.hash;
        self.quarantine
            .iter()
            .find(|q| q.name == name && q.hash == current)
    }

    /// Adds or replaces the quarantine record for a trace (one record
    /// per name; the newest wins).
    pub fn set_quarantine(&mut self, entry: QuarantineEntry) {
        self.quarantine.retain(|q| q.name != entry.name);
        self.quarantine.push(entry);
    }

    /// Drops any quarantine record for `name`. Returns true if one was
    /// removed.
    pub fn clear_quarantine(&mut self, name: &str) -> bool {
        let before = self.quarantine.len();
        self.quarantine.retain(|q| q.name != name);
        self.quarantine.len() != before
    }

    /// Collapses duplicate quarantine records sharing a `(name, hash)`
    /// pair down to the *last* occurrence (the newest writer's reason
    /// wins), preserving relative order otherwise. Applied on load and
    /// save so concurrent or retried writers converge to one record.
    /// Returns how many duplicates were dropped.
    pub fn dedup_quarantine(&mut self) -> usize {
        let before = self.quarantine.len();
        let mut seen = std::collections::HashSet::new();
        let mut kept: Vec<QuarantineEntry> = self
            .quarantine
            .iter()
            .rev()
            .filter(|q| seen.insert((q.name.clone(), q.hash)))
            .cloned()
            .collect();
        kept.reverse();
        self.quarantine = kept;
        before - self.quarantine.len()
    }

    /// Loads and parses the manifest at `path`.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the file cannot be read,
    /// [`CorpusError::Manifest`] if it does not parse.
    pub fn load(path: &Path) -> Result<Manifest, CorpusError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CorpusError::io(format!("reading manifest {}", path.display()), e))?;
        Manifest::from_toml_str(&text)
    }

    /// Crash-atomically writes the manifest to `path` via [`DiskFs`]:
    /// temp file, `fsync`, rename, directory `fsync`.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if any commit step fails.
    pub fn save(&self, path: &Path) -> Result<(), CorpusError> {
        self.save_with(path, &DiskFs)
    }

    /// [`Manifest::save`] through an explicit [`CommitFs`], so tests
    /// can inject crash points into the commit sequence. The rendered
    /// manifest has its quarantine list deduplicated by `(name, hash)`
    /// first.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if any commit step fails.
    pub fn save_with(&self, path: &Path, fs: &dyn CommitFs) -> Result<(), CorpusError> {
        let mut clean = self.clone();
        clean.dedup_quarantine();
        let tmp = path.with_extension("toml.tmp");
        fs.commit_bytes(path, &tmp, clean.to_toml_string().as_bytes())
            .map_err(|e| CorpusError::io(format!("committing manifest {}", path.display()), e))
    }

    fn first_duplicate_name(&self) -> Option<&str> {
        for (i, e) in self.traces.iter().enumerate() {
            if self.traces[..i].iter().any(|p| p.name == e.name) {
                return Some(&e.name);
            }
        }
        None
    }
}

/// Escapes a string for the TOML subset's double-quoted form.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            traces: vec![
                TraceEntry {
                    name: "go".into(),
                    file: "traces/go.cact".into(),
                    hash: 0x0123_4567_89ab_cdef,
                    ops: 1000,
                    refs: 350,
                    bytes: 4096,
                    blocks: 1,
                },
                TraceEntry {
                    name: "gcc".into(),
                    file: "traces/gcc.cact".into(),
                    hash: 0xfeed_face_cafe_f00d,
                    ops: 2000,
                    refs: 800,
                    bytes: 9000,
                    blocks: 2,
                },
            ],
            quarantine: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_toml() {
        let m = sample();
        let text = m.to_toml_string();
        let back = Manifest::from_toml_str(&text).unwrap();
        assert_eq!(m, back);
        // Deterministic rendering: render(parse(render(m))) == render(m).
        assert_eq!(back.to_toml_string(), text);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(Manifest::from_toml_str("").is_err()); // no version
        assert!(Manifest::from_toml_str("version = 99\n").is_err());
        let missing_hash = "version = 1\n[[trace]]\nname = \"x\"\nfile = \"y\"\n";
        assert!(Manifest::from_toml_str(missing_hash).is_err());
        let short_hash =
            "version = 1\n[[trace]]\nname = \"x\"\nfile = \"y\"\nhash = \"ab\"\nops = 1\nrefs = 1\nbytes = 1\nblocks = 1\n";
        assert!(Manifest::from_toml_str(short_hash).is_err());
    }

    #[test]
    fn quarantine_round_trips_and_tracks_hash() {
        let mut m = sample();
        m.set_quarantine(QuarantineEntry {
            name: "go".into(),
            hash: m.traces[0].hash,
            reason: "corrupt block 3: bad checksum".into(),
            class: FailureClass::Permanent,
        });
        let text = m.to_toml_string();
        let back = Manifest::from_toml_str(&text).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.to_toml_string(), text);
        assert_eq!(
            back.quarantined("go").unwrap().class,
            FailureClass::Permanent
        );
        assert!(back.quarantined("gcc").is_none());

        // Re-adding the trace with different content (new hash) makes
        // the quarantine record stale: the trace runs again.
        let mut readded = back.clone();
        readded.traces[0].hash ^= 1;
        assert!(readded.quarantined("go").is_none());
        assert!(readded.clear_quarantine("go"));
        assert!(!readded.clear_quarantine("go"));

        // A bad class string is rejected.
        let bad = text.replace("class = \"permanent\"", "class = \"sideways\"");
        assert!(Manifest::from_toml_str(&bad).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut m = sample();
        m.traces[1].name = "go".into();
        let err = Manifest::from_toml_str(&m.to_toml_string()).unwrap_err();
        assert!(err.to_string().contains("duplicate trace name"));
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join(format!("cac-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.toml");
        let m = sample();
        m.save(&path).unwrap();
        assert!(!path.with_extension("toml.tmp").exists());
        assert_eq!(Manifest::load(&path).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn q(name: &str, hash: u64, reason: &str) -> QuarantineEntry {
        QuarantineEntry {
            name: name.into(),
            hash,
            reason: reason.into(),
            class: FailureClass::Transient,
        }
    }

    #[test]
    fn quarantine_dedups_by_name_and_hash_on_save_and_load() {
        let mut m = sample();
        // Simulate two runners both quarantining `go`, plus a stale
        // record for an older content hash that must survive.
        m.quarantine = vec![
            q("go", 0x1111, "older content"),
            q("go", 0x2222, "runner A says broken"),
            q("gcc", 0x3333, "unrelated"),
            q("go", 0x2222, "runner B says broken"),
        ];
        let mut deduped = m.clone();
        assert_eq!(deduped.dedup_quarantine(), 1);
        assert_eq!(deduped.quarantine.len(), 3);
        // Last writer's reason wins; distinct hashes both remain.
        assert_eq!(deduped.quarantine[0].hash, 0x1111);
        assert_eq!(deduped.quarantine[1].name, "gcc");
        assert_eq!(deduped.quarantine[2].reason, "runner B says broken");

        // Save dedups without mutating the in-memory manifest…
        let dir = std::env::temp_dir().join(format!("cac-manifest-dedup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.toml");
        m.save(&path).unwrap();
        assert_eq!(m.quarantine.len(), 4, "save leaves self untouched");
        let back = Manifest::load(&path).unwrap();
        assert_eq!(back.quarantine, deduped.quarantine);

        // …and load heals a hand-duplicated document too.
        let doubled = format!(
            "{}\n[[quarantine]]\nname = \"gcc\"\nhash = \"{:016x}\"\nreason = \"unrelated\"\nclass = \"transient\"\n",
            back.to_toml_string(),
            0x3333u64,
        );
        let healed = Manifest::from_toml_str(&doubled).unwrap();
        assert_eq!(healed.quarantine.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_under_injected_crash_preserves_old_manifest() {
        use cac_trace::io::commitfs::{FaultFs, FaultPlan};
        let dir = std::env::temp_dir().join(format!("cac-manifest-crash-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.toml");
        let old = sample();
        old.save(&path).unwrap();
        let mut new = old.clone();
        new.set_quarantine(q("go", old.traces[0].hash, "broke"));
        let fs = FaultFs::new(FaultPlan {
            crash_after_ops: Some(2),
            ..FaultPlan::default()
        });
        assert!(new.save_with(&path, &fs).is_err());
        let back = Manifest::load(&path).unwrap();
        assert!(back == old || back == new, "old or new, never torn");
        std::fs::remove_dir_all(&dir).ok();
    }
}

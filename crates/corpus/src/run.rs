//! The supervised incremental fleet runner: traces × configs,
//! recompute only what changed, survive what breaks.
//!
//! Results live in a [`Journal`] next to the manifest, one cell per
//! (trace, config) pair keyed
//! `<trace>@<trace-hash>/<config-path>@<config-hash>`. A rerun restores
//! every cell whose key still resolves and replays only the rest:
//! re-adding a trace with different content invalidates its row,
//! editing a config file invalidates its column, and a no-op rerun
//! replays nothing while producing the identical report.
//!
//! Each trace is decoded **once** per run regardless of how many
//! configs need it — all pending models ride the same
//! [`Sweep::run_source_isolated`] pass over the columnar stream.
//!
//! With [`RunOptions::prune`] set, an analytic screen runs first: one
//! LRU stack-distance pass per (trace, line-size) group predicts every
//! config's miss ratio, and configs predicted worse than the trace's
//! best by more than [`RunOptions::prune_band`] are recorded as pruned
//! cells — never built, never replayed. Pruned cells persist in the
//! journal (with the prediction embedded), so a pruned rerun is as
//! incremental as a full one. The screen's decisions depend only on
//! trace content, the config list and the band — never on journal
//! state — so an interrupted-and-resumed pruned run converges to the
//! same report as an uninterrupted one.
//!
//! # Supervision
//!
//! The runner is a fleet *supervisor* (see [`crate::supervisor`]):
//!
//! * Trace streams are decoded **leniently** — damaged blocks are
//!   skipped and tallied; more than [`RunOptions::skip_threshold`]
//!   skipped blocks fails the attempt as *transient* (the one shared
//!   classifier in [`cac_trace::io::FailureClass`] decides everything
//!   else).
//! * Transient attempt failures retry up to [`RetryPolicy::attempts`]
//!   times on a deterministic jittered backoff schedule; permanent
//!   failures (and exhausted retries) journal **FAILED** cells — with
//!   reason and class — and quarantine the trace in `corpus.toml`, so
//!   a poisoned trace costs its retry allowance exactly once and then
//!   restores from the journal with zero replays.
//! * With a [`CellBudget`], a record-count watchdog inside the sweep
//!   cancels an over-budget trace pass; cancelled cells are re-priced
//!   through the analytic tier with 1-in-K set sampling and journaled
//!   as **DEGRADED** cells carrying the estimate and its standard
//!   error.
//! * A [`ChaosPlan`] (the `cac corpus chaos` harness) wraps trace
//!   streams in a seeded fault source for a trace's leading attempts,
//!   driving every one of those paths end-to-end.
//!
//! # Multi-runner runs
//!
//! N `cac corpus run` processes may share one corpus: each holds a
//! [`RunnerLease`] for its lifetime and partitions the grid through
//! journal **claims**. Per trace, a runner briefly takes the corpus
//! lock, reloads the journal, restores finished cells, claims every
//! unclaimed pending cell (and takes over claims whose owner's lease
//! probe says it died), and defers cells a live peer already claimed.
//! Replay happens unlocked; results commit in a second short
//! lock-reload-record-save transaction, which also drops the claims.
//! After its own traces, a runner polls its deferred cells until peers
//! finish them (or die, in which case it takes over). Because the
//! journal's on-disk form is canonical (sorted) and claims drain on
//! completion, the merged journal is byte-identical to a
//! single-runner run's, and no cell is ever replayed twice.

use crate::lock::{runner_alive, CorpusLock, RunnerLease};
use crate::manifest::QuarantineEntry;
use crate::store::Corpus;
use crate::supervisor::{classify, CellBudget, ChaosPlan, RetryPolicy};
use crate::{content_hash, CorpusError};
use cac_sim::analytic::{prune_dominated, AnalyticModel};
use cac_sim::config::SimConfig;
use cac_sim::journal::{fingerprint, Journal};
use cac_sim::model::ModelStats;
use cac_sim::sweep::{LruStackSweep, ModelOutcome, Sweep};
use cac_trace::fault::{FaultSource, FaultSpec};
use cac_trace::io::commitfs::{CommitFs, DiskFs};
use cac_trace::io::{ColumnarTraceReader, DecodeMode, FailureClass, SkipReport, DEFAULT_CHUNK_OPS};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal extras key marking a cell as analytically pruned.
pub const PRUNED_FLAG: &str = "analytic-pruned";
/// Journal extras key carrying the pruned cell's predicted miss ratio
/// (an `f64` stored via `to_bits`, exact across save/load).
pub const PRUNED_PREDICTED: &str = "predicted-bits";
/// Journal extras key marking a cell the supervisor failed permanently.
pub const FAILED_FLAG: &str = "supervisor-failed";
/// Journal extras key carrying a failed cell's class
/// (0 = transient-exhausted, 1 = permanent).
pub const FAILED_CLASS: &str = "failed-class";
/// Prefix of the journal extras *name* that carries a failed cell's
/// reason text (the value is always 1; names survive the journal's
/// percent-encoding, values are numeric only).
pub const FAILED_REASON_PREFIX: &str = "failed-reason:";
/// Journal extras key marking a budget-degraded, analytically re-priced
/// cell.
pub const DEGRADED_FLAG: &str = "analytic-degraded";
/// Journal extras key carrying a degraded cell's estimated miss ratio
/// (`f64` via `to_bits`).
pub const DEGRADED_ESTIMATE: &str = "estimate-bits";
/// Journal extras key carrying the standard error of a degraded
/// estimate (`f64` via `to_bits`; 0 when the re-pricing pass was
/// exact).
pub const DEGRADED_SE: &str = "se-bits";

/// Options for [`run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Sweep worker threads (1 = deterministic in-order replay).
    pub workers: usize,
    /// Trace operations decoded per replay chunk.
    pub chunk: usize,
    /// Screen configs with the analytic model before replaying.
    pub prune: bool,
    /// Prune band as a miss-ratio fraction: a config is pruned when its
    /// predicted miss ratio exceeds the trace's best prediction by more
    /// than this.
    pub prune_band: f64,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-cell replay budget; over-budget cells degrade to analytic
    /// estimates.
    pub budget: Option<CellBudget>,
    /// Lenient-decode skipped blocks tolerated per decode pass; more
    /// fails the attempt as transient. 0 (the default) accepts no loss.
    pub skip_threshold: u64,
    /// Chaos fault-injection plan (the chaos harness; `None` in real
    /// runs).
    pub chaos: Option<ChaosPlan>,
    /// Journal file override (`None` = the corpus's `results.journal`).
    /// The chaos harness points this at scratch journals so it never
    /// contaminates real incremental state.
    pub journal: Option<PathBuf>,
    /// Persist quarantine decisions into `corpus.toml` (real runs do;
    /// the chaos harness reports them without persisting).
    pub persist_quarantine: bool,
    /// This runner's id for leases and journal claims (`None` =
    /// `pid-<pid>`). Concurrent runners on one corpus need distinct
    /// ids; a lease refuses duplicates while the first holder lives.
    pub runner: Option<String>,
    /// How long to sleep between polls of cells claimed by live peers.
    pub peer_poll_ms: u64,
    /// The write layer for journal and manifest commits. Real runs use
    /// [`DiskFs`]; durability tests inject a
    /// [`cac_trace::io::commitfs::FaultFs`] here.
    pub fs: Arc<dyn CommitFs>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            chunk: DEFAULT_CHUNK_OPS,
            prune: false,
            prune_band: 0.02,
            retry: RetryPolicy::default(),
            budget: None,
            skip_threshold: 0,
            chaos: None,
            journal: None,
            persist_quarantine: true,
            runner: None,
            peer_poll_ms: 25,
            fs: Arc::new(DiskFs),
        }
    }
}

/// One result cell of the trace × config matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The config replayed (now, or in a previous run).
    Done {
        /// The model's counters over the whole trace.
        stats: ModelStats,
        /// `true` if restored from the journal instead of replayed.
        restored: bool,
    },
    /// The analytic screen pruned the config before any replay.
    Pruned {
        /// The screen's predicted miss ratio.
        predicted: f64,
        /// `true` if restored from the journal.
        restored: bool,
    },
    /// The cell exceeded its budget and was re-priced analytically.
    Degraded {
        /// Estimated miss ratio from the sampled analytic pass.
        estimate: f64,
        /// Worst-case binomial standard error of the estimate (0 when
        /// the pass was exact).
        se: f64,
        /// `true` if restored from the journal.
        restored: bool,
    },
    /// The cell could not be computed. Failed cells are journaled with
    /// their reason and class, so warm reruns restore them instead of
    /// re-replaying a known-bad trace.
    Failed {
        /// What went wrong.
        reason: String,
        /// Transient (retries were exhausted) or permanent.
        class: FailureClass,
        /// `true` if restored from the journal.
        restored: bool,
    },
    /// The trace is quarantined in `corpus.toml`; this pending cell was
    /// skipped without touching the trace. Not journaled — clearing the
    /// quarantine makes the cell computable again.
    Quarantined {
        /// The quarantine reason recorded in the manifest.
        reason: String,
    },
}

/// One trace's row of cells, in config order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// The trace's manifest name.
    pub trace: String,
    /// One cell per config, aligned with [`RunReport::configs`].
    pub cells: Vec<CellOutcome>,
}

/// Per-trace supervision accounting for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHealth {
    /// The trace's manifest name.
    pub trace: String,
    /// Replay attempts consumed this run (0 = nothing needed
    /// replaying).
    pub attempts: u32,
    /// Deterministic backoff delays (ms) taken before each retry.
    pub backoffs_ms: Vec<u64>,
    /// Lenient-decode skip accounting for the accepted attempt (the
    /// worst pass of that attempt).
    pub skipped: SkipReport,
    /// The quarantine reason, if the trace is (or just became)
    /// quarantined.
    pub quarantined: Option<String>,
    /// One-line status note for reports.
    pub note: String,
}

/// Work accounting for one [`run`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkSummary {
    /// Cells replayed in this run.
    pub replayed: u64,
    /// Cells restored from the journal (replayed, pruned, degraded or
    /// failed earlier).
    pub restored: u64,
    /// Cells pruned by the analytic screen in this run.
    pub pruned: u64,
    /// Cells that failed in this run (journaled; restored thereafter).
    pub failed: u64,
    /// Cells degraded to analytic estimates in this run.
    pub degraded: u64,
    /// Pending cells skipped because their trace is quarantined.
    pub quarantined: u64,
    /// Retry attempts performed (beyond each trace's first attempt).
    pub retried: u64,
    /// Traces that received an analytic screening pass in this run.
    pub screened_traces: u64,
}

/// The result matrix of one [`run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Config paths, in column order (as passed in).
    pub configs: Vec<String>,
    /// One row per corpus trace, in manifest order.
    pub rows: Vec<TraceRow>,
    /// One health record per corpus trace, aligned with `rows`.
    pub health: Vec<TraceHealth>,
    /// What this run actually did.
    pub summary: WorkSummary,
}

impl RunReport {
    /// Total lenient-decode blocks skipped across all traces this run.
    pub fn skipped_blocks(&self) -> u64 {
        self.health.iter().map(|h| h.skipped.blocks).sum()
    }
}

/// A parsed config column.
struct ConfigColumn {
    key: String,
    cfg: SimConfig,
}

/// Loads and hashes the config files.
fn load_configs(paths: &[String]) -> Result<Vec<ConfigColumn>, CorpusError> {
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CorpusError::io(format!("reading config {path}"), e))?;
        let cfg = SimConfig::from_toml_str(&text)
            .map_err(|e| CorpusError::Sim(cac_core::Error::config(format!("{path}: {e}"))))?;
        out.push(ConfigColumn {
            key: format!("{path}@{:016x}", content_hash(text.as_bytes())),
            cfg,
        });
    }
    Ok(out)
}

/// Encodes a pruned cell as journalable [`ModelStats`]: zero counters
/// plus the [`PRUNED_FLAG`]/[`PRUNED_PREDICTED`] extras. Shared by
/// every pruned-and-checkpointed sweep in the workspace so journals
/// stay mutually readable.
pub fn pruned_stats(predicted: f64) -> ModelStats {
    ModelStats {
        extras: vec![
            (PRUNED_FLAG.into(), 1),
            (PRUNED_PREDICTED.into(), predicted.to_bits()),
        ],
        ..ModelStats::default()
    }
}

/// Encodes a failed cell as journalable [`ModelStats`]: the class and
/// the reason (embedded in an extras *name* — the journal
/// percent-encodes names, and `;` is flattened to `,` because it
/// separates extras on the wire).
pub fn failed_stats(reason: &str, class: FailureClass) -> ModelStats {
    let clean = reason.replace(';', ",");
    ModelStats {
        extras: vec![
            (FAILED_FLAG.into(), 1),
            (
                FAILED_CLASS.into(),
                u64::from(class == FailureClass::Permanent),
            ),
            (format!("{FAILED_REASON_PREFIX}{clean}"), 1),
        ],
        ..ModelStats::default()
    }
}

/// Encodes a budget-degraded cell as journalable [`ModelStats`].
pub fn degraded_stats(estimate: f64, se: f64) -> ModelStats {
    ModelStats {
        extras: vec![
            (DEGRADED_FLAG.into(), 1),
            (DEGRADED_ESTIMATE.into(), estimate.to_bits()),
            (DEGRADED_SE.into(), se.to_bits()),
        ],
        ..ModelStats::default()
    }
}

/// Decodes a journaled cell back into an outcome.
fn restore_cell(stats: &ModelStats) -> CellOutcome {
    if stats.extra(PRUNED_FLAG) == Some(1) {
        CellOutcome::Pruned {
            predicted: f64::from_bits(stats.extra(PRUNED_PREDICTED).unwrap_or(0)),
            restored: true,
        }
    } else if stats.extra(DEGRADED_FLAG) == Some(1) {
        CellOutcome::Degraded {
            estimate: f64::from_bits(stats.extra(DEGRADED_ESTIMATE).unwrap_or(0)),
            se: f64::from_bits(stats.extra(DEGRADED_SE).unwrap_or(0)),
            restored: true,
        }
    } else if stats.extra(FAILED_FLAG) == Some(1) {
        let reason = stats
            .extras
            .iter()
            .find_map(|(n, _)| n.strip_prefix(FAILED_REASON_PREFIX))
            .unwrap_or("unrecorded failure")
            .to_owned();
        let class = if stats.extra(FAILED_CLASS) == Some(0) {
            FailureClass::Transient
        } else {
            FailureClass::Permanent
        };
        CellOutcome::Failed {
            reason,
            class,
            restored: true,
        }
    } else {
        CellOutcome::Done {
            stats: stats.clone(),
            restored: true,
        }
    }
}

/// Opens a trace's columnar stream for one decode pass, optionally
/// wrapped in a seeded fault source (chaos harness).
fn open_stream(
    path: &Path,
    fault: Option<&FaultSpec>,
    mode: DecodeMode,
) -> Result<ColumnarTraceReader<Box<dyn Read>>, CorpusError> {
    let file = File::open(path)
        .map_err(|e| CorpusError::io(format!("opening trace {}", path.display()), e))?;
    let inner: Box<dyn Read> = match fault {
        Some(spec) => Box::new(FaultSource::new(BufReader::new(file), *spec)),
        None => Box::new(BufReader::new(file)),
    };
    Ok(ColumnarTraceReader::with_mode(inner, mode)?)
}

/// Keeps the worst (most blocks skipped) pass's accounting. Passes of
/// one attempt read the same damaged bytes, so the worst pass bounds
/// what any of them lost.
fn merge_skips(acc: &mut SkipReport, seen: SkipReport) {
    if seen.blocks > acc.blocks {
        *acc = seen;
    }
}

/// A whole-attempt failure: every pending cell of the trace shares it.
struct AttemptFailure {
    class: FailureClass,
    reason: String,
}

impl AttemptFailure {
    fn from_error(e: &CorpusError) -> Self {
        AttemptFailure {
            class: classify(e),
            reason: e.to_string(),
        }
    }
}

/// What one attempt decided for a single pending config.
enum PendingOutcome {
    Done(ModelStats),
    Pruned(f64),
    Degraded { estimate: f64, se: f64 },
    Failed { reason: String, class: FailureClass },
}

/// Everything one successful attempt produced.
struct AttemptResult {
    /// `(config index, outcome)`, one per pending config.
    outcomes: Vec<(usize, PendingOutcome)>,
    /// Worst-pass lenient-decode skip accounting.
    skipped: SkipReport,
    /// Whether the analytic screen ran.
    screened: bool,
}

/// Runs the analytic screen for one trace: predicted miss ratio per
/// config (`None` where the config has no primary cache to predict
/// for), then the dominated-config mask.
///
/// Configs are grouped by primary line size; each group shares one LRU
/// stack pass over the trace. Modulo-indexed configs use the stack
/// sweep's exact set-conflict ratio; hashed/skewed indexes use the
/// analytic conflict model (hashing decorrelates sets from address
/// bits, which is precisely that model's assumption).
fn screen_trace(
    trace_path: &Path,
    configs: &[ConfigColumn],
    band: f64,
    fault: Option<&FaultSpec>,
    skipped: &mut SkipReport,
) -> Result<(Vec<Option<f64>>, Vec<bool>), CorpusError> {
    let mut predicted: Vec<Option<f64>> = vec![None; configs.len()];
    let mut by_line: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (j, c) in configs.iter().enumerate() {
        if let Some(geom) = c.cfg.primary_geometry() {
            by_line.entry(geom.block()).or_default().push(j);
        }
    }
    for (line, members) in &by_line {
        let mut set_counts: Vec<u32> = vec![1];
        for &j in members {
            let sets = configs[j]
                .cfg
                .primary_geometry()
                .expect("grouped by primary geometry")
                .num_sets();
            if !set_counts.contains(&sets) {
                set_counts.push(sets);
            }
        }
        let mut stack = LruStackSweep::new(*line, &set_counts)?;
        let mut reader = open_stream(trace_path, fault, DecodeMode::Lenient)?;
        stack.run_source(&mut reader).map_err(CorpusError::Trace)?;
        merge_skips(skipped, reader.skipped());
        let model = AnalyticModel::from_sweep(&stack).expect("1-set family configured");
        for &j in members {
            let geom = configs[j].cfg.primary_geometry().expect("grouped");
            let modulo = configs[j]
                .cfg
                .primary_index()
                .is_some_and(|s| s.name() == "modulo");
            predicted[j] = if modulo {
                stack.miss_ratio(geom.num_sets(), geom.ways())
            } else {
                model.predict(geom.num_sets(), geom.ways())
            };
        }
    }
    // Dominance is judged over the predictable subset only; configs the
    // screen cannot model are always kept.
    let known: Vec<(usize, f64)> = predicted
        .iter()
        .enumerate()
        .filter_map(|(j, p)| p.map(|p| (j, p)))
        .collect();
    let keep = prune_dominated(&known.iter().map(|&(_, p)| p).collect::<Vec<_>>(), band);
    let mut pruned = vec![false; configs.len()];
    for (&(j, _), &keep) in known.iter().zip(&keep) {
        pruned[j] = !keep;
    }
    Ok((predicted, pruned))
}

/// Re-prices budget-cancelled configs through the analytic tier with
/// 1-in-K set sampling: one sampled stack pass per line-size group,
/// shared by every cancelled config of that group.
fn degrade_cells(
    trace_path: &Path,
    configs: &[ConfigColumn],
    cancelled: &[usize],
    fault: Option<&FaultSpec>,
    skipped: &mut SkipReport,
    out: &mut Vec<(usize, PendingOutcome)>,
) -> Result<(), CorpusError> {
    let mut by_line: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for &j in cancelled {
        match configs[j].cfg.primary_geometry() {
            Some(geom) => by_line.entry(geom.block()).or_default().push(j),
            None => out.push((
                j,
                PendingOutcome::Failed {
                    reason: "over budget and no primary cache to estimate for".into(),
                    class: FailureClass::Permanent,
                },
            )),
        }
    }
    for (line, members) in &by_line {
        let mut set_counts: Vec<u32> = vec![1];
        let mut min_sets = u32::MAX;
        for &j in members {
            let sets = configs[j]
                .cfg
                .primary_geometry()
                .expect("grouped by primary geometry")
                .num_sets();
            min_sets = min_sets.min(sets);
            if !set_counts.contains(&sets) {
                set_counts.push(sets);
            }
        }
        // 1-in-K sampling, K capped by the smallest member so every
        // config keeps sampled sets; 8 is plenty of speedup for an
        // estimate that carries its own standard error.
        let k = 1u32 << min_sets.min(8).ilog2();
        let mut stack = LruStackSweep::new(*line, &set_counts)?.with_set_sampling(k)?;
        let mut reader = open_stream(trace_path, fault, DecodeMode::Lenient)?;
        stack.run_source(&mut reader).map_err(CorpusError::Trace)?;
        merge_skips(skipped, reader.skipped());
        let model = AnalyticModel::from_sweep(&stack).expect("1-set family configured");
        let se = stack.sampling_standard_error().unwrap_or(0.0);
        for &j in members {
            let geom = configs[j].cfg.primary_geometry().expect("grouped");
            let modulo = configs[j]
                .cfg
                .primary_index()
                .is_some_and(|s| s.name() == "modulo");
            let estimate = if modulo {
                stack.miss_ratio(geom.num_sets(), geom.ways())
            } else {
                model.predict(geom.num_sets(), geom.ways())
            };
            out.push((
                j,
                match estimate {
                    Some(estimate) => PendingOutcome::Degraded { estimate, se },
                    None => PendingOutcome::Failed {
                        reason: "over budget and not analytically priceable".into(),
                        class: FailureClass::Permanent,
                    },
                },
            ));
        }
    }
    Ok(())
}

/// One full attempt at a trace's pending cells: screen, build, replay,
/// degrade. Returns per-config outcomes on success; a classified
/// [`AttemptFailure`] when the whole attempt must be retried or given
/// up on. Nothing is journaled here — the caller commits results only
/// after an attempt succeeds, so a retried attempt leaves no residue.
fn attempt_trace(
    trace_path: &Path,
    configs: &[ConfigColumn],
    pending: &[usize],
    opts: &RunOptions,
    fault: Option<&FaultSpec>,
) -> Result<AttemptResult, AttemptFailure> {
    let mut skipped = SkipReport::default();
    let mut outcomes: Vec<(usize, PendingOutcome)> = Vec::with_capacity(pending.len());
    let over_threshold = |s: &SkipReport| -> Option<AttemptFailure> {
        (s.blocks > opts.skip_threshold).then(|| AttemptFailure {
            class: FailureClass::Transient,
            reason: format!(
                "lenient decode skipped {} blocks ({} records), over the \
                 {}-block tolerance",
                s.blocks, s.records, opts.skip_threshold
            ),
        })
    };

    // Screen decisions are a function of (trace, config list, band)
    // only, so resumed runs decide identically.
    let screen = if opts.prune {
        match screen_trace(trace_path, configs, opts.prune_band, fault, &mut skipped) {
            Ok(s) => Some(s),
            Err(e) => return Err(AttemptFailure::from_error(&e)),
        }
    } else {
        None
    };
    if let Some(fail) = over_threshold(&skipped) {
        return Err(fail);
    }

    let mut to_replay: Vec<usize> = Vec::new();
    for &j in pending {
        match &screen {
            Some((predicted, pruned)) if pruned[j] => {
                let p = predicted[j].expect("pruned implies predicted");
                outcomes.push((j, PendingOutcome::Pruned(p)));
            }
            _ => to_replay.push(j),
        }
    }

    // Models are built fresh inside every attempt: a model that saw a
    // partial stream carries counters no later attempt may reuse.
    let mut models = Vec::with_capacity(to_replay.len());
    let mut buildable: Vec<usize> = Vec::new();
    for &j in &to_replay {
        match configs[j].cfg.build() {
            Ok(m) => {
                buildable.push(j);
                models.push(m);
            }
            Err(e) => outcomes.push((
                j,
                PendingOutcome::Failed {
                    reason: format!("config build failed: {e}"),
                    class: FailureClass::Permanent,
                },
            )),
        }
    }

    let mut cancelled: Vec<usize> = Vec::new();
    if !models.is_empty() {
        let mut engine = Sweep::new()
            .workers(opts.workers.max(1))
            .chunk_ops(opts.chunk.max(1));
        if let Some(budget) = opts.budget {
            engine = engine.budget(budget.to_sweep());
        }
        let mut reader = match open_stream(trace_path, fault, DecodeMode::Lenient) {
            Ok(r) => r,
            Err(e) => return Err(AttemptFailure::from_error(&e)),
        };
        let replay = engine.run_source_isolated(&mut models, &mut reader);
        merge_skips(&mut skipped, reader.skipped());
        let model_outcomes = match replay {
            Ok(o) => o,
            Err(e) => return Err(AttemptFailure::from_error(&CorpusError::Trace(e))),
        };
        if let Some(fail) = over_threshold(&skipped) {
            return Err(fail);
        }
        for (&j, outcome) in buildable.iter().zip(&model_outcomes) {
            match outcome {
                ModelOutcome::Completed(stats) => {
                    outcomes.push((j, PendingOutcome::Done(stats.clone())));
                }
                ModelOutcome::Failed { reason } => outcomes.push((
                    j,
                    PendingOutcome::Failed {
                        reason: format!("replay panicked: {reason}"),
                        class: FailureClass::Permanent,
                    },
                )),
                ModelOutcome::Cancelled { .. } => cancelled.push(j),
            }
        }
    }

    if !cancelled.is_empty() {
        if let Err(e) = degrade_cells(
            trace_path,
            configs,
            &cancelled,
            fault,
            &mut skipped,
            &mut outcomes,
        ) {
            return Err(AttemptFailure::from_error(&e));
        }
        if let Some(fail) = over_threshold(&skipped) {
            return Err(fail);
        }
    }

    Ok(AttemptResult {
        outcomes,
        skipped,
        screened: screen.is_some(),
    })
}

/// One trace's in-flight run state, until every cell resolves.
struct TraceState {
    trace_key: String,
    cells: Vec<Option<CellOutcome>>,
    health: TraceHealth,
    /// Config indices claimed by a live peer, awaiting resolution.
    deferred: Vec<usize>,
}

/// Replays `pending` cells of one trace (the retry loop around
/// [`attempt_trace`]) and commits the outcomes in a short
/// lock-reload-record-save transaction. On whole-attempt failure,
/// FAILED cells commit the same way and the trace is quarantined —
/// outside the lock, which is not re-entrant.
#[allow(clippy::too_many_arguments)]
fn replay_claimed(
    corpus: &mut Corpus,
    configs: &[ConfigColumn],
    entry: &crate::manifest::TraceEntry,
    pending: &[usize],
    opts: &RunOptions,
    journal_path: &Path,
    fp: u64,
    summary: &mut WorkSummary,
    state: &mut TraceState,
) -> Result<(), CorpusError> {
    let trace_key = state.trace_key.clone();
    let trace_path = corpus.trace_path(entry);
    let max_attempts = 1 + opts.retry.attempts;
    let mut attempts_used: u32 = 0;
    let attempt_outcome = loop {
        let fault = opts
            .chaos
            .as_ref()
            .and_then(|c| c.fault_for(&entry.name, attempts_used));
        attempts_used += 1;
        match attempt_trace(&trace_path, configs, pending, opts, fault) {
            Ok(result) => break Ok(result),
            Err(fail) if fail.class == FailureClass::Transient && attempts_used < max_attempts => {
                let delay = opts.retry.delay_ms(&trace_key, attempts_used - 1);
                state.health.backoffs_ms.push(delay);
                summary.retried += 1;
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
            Err(fail) => break Err(fail),
        }
    };
    state.health.attempts += attempts_used;

    match attempt_outcome {
        Ok(result) => {
            merge_skips(&mut state.health.skipped, result.skipped);
            if result.screened {
                summary.screened_traces += 1;
            }
            let _lock = CorpusLock::exclusive(corpus.dir())?;
            let mut journal = Journal::load(journal_path, fp)?;
            for (j, outcome) in result.outcomes {
                let key = format!("{trace_key}/{}", configs[j].key);
                let cell = match outcome {
                    PendingOutcome::Done(stats) => {
                        journal.record(&key, &stats);
                        summary.replayed += 1;
                        CellOutcome::Done {
                            stats,
                            restored: false,
                        }
                    }
                    PendingOutcome::Pruned(predicted) => {
                        journal.record(&key, &pruned_stats(predicted));
                        summary.pruned += 1;
                        CellOutcome::Pruned {
                            predicted,
                            restored: false,
                        }
                    }
                    PendingOutcome::Degraded { estimate, se } => {
                        journal.record(&key, &degraded_stats(estimate, se));
                        summary.degraded += 1;
                        CellOutcome::Degraded {
                            estimate,
                            se,
                            restored: false,
                        }
                    }
                    PendingOutcome::Failed { reason, class } => {
                        journal.record(&key, &failed_stats(&reason, class));
                        summary.failed += 1;
                        CellOutcome::Failed {
                            reason,
                            class,
                            restored: false,
                        }
                    }
                };
                state.cells[j] = Some(cell);
            }
            journal.save_with(journal_path, opts.fs.as_ref())?;
            if state.health.skipped.any() {
                state.health.note = format!(
                    "accepted with {} skipped blocks",
                    state.health.skipped.blocks
                );
            }
        }
        Err(fail) => {
            // The whole attempt failed (and, if transient, its retries
            // are exhausted): journal FAILED cells so reruns restore
            // them, and quarantine the trace so nothing re-replays
            // this content.
            let reason = if fail.class == FailureClass::Transient {
                format!("{} (after {attempts_used} attempts)", fail.reason)
            } else {
                fail.reason.clone()
            };
            {
                let _lock = CorpusLock::exclusive(corpus.dir())?;
                let mut journal = Journal::load(journal_path, fp)?;
                for &j in pending {
                    journal.record(
                        &format!("{trace_key}/{}", configs[j].key),
                        &failed_stats(&reason, fail.class),
                    );
                    summary.failed += 1;
                    state.cells[j] = Some(CellOutcome::Failed {
                        reason: reason.clone(),
                        class: fail.class,
                        restored: false,
                    });
                }
                journal.save_with(journal_path, opts.fs.as_ref())?;
            }
            state.health.quarantined = Some(reason.clone());
            state.health.note = format!("FAILED [{}]: {reason}", fail.class);
            if opts.persist_quarantine {
                corpus.quarantine_with(
                    QuarantineEntry {
                        name: entry.name.clone(),
                        hash: entry.hash,
                        reason,
                        class: fail.class,
                    },
                    opts.fs.as_ref(),
                )?;
            }
        }
    }
    Ok(())
}

/// Sweeps every corpus trace across `config_paths`, restoring cells
/// from the corpus's result journal and replaying only the rest under
/// the supervision policy in `opts` (see the module docs).
///
/// Results commit after every trace that produced new cells, so a
/// killed run loses at most one trace's work — and every commit is
/// crash-atomic (temp + fsync + rename + dir fsync), so it never
/// loses the journal itself.
///
/// Concurrent calls against one corpus are safe: each run holds a
/// [`RunnerLease`] and partitions pending cells through journal
/// claims (see the module docs). The `runner` id must be distinct per
/// concurrent caller.
///
/// # Errors
///
/// Config-file, journal, lock and lease problems abort the run.
/// Per-trace problems (damaged trace, I/O faults, model build errors,
/// replay panics, budget trips) never abort the fleet: they surface
/// as [`CellOutcome::Failed`] / [`CellOutcome::Degraded`] /
/// [`CellOutcome::Quarantined`] cells and per-trace [`TraceHealth`]
/// records.
pub fn run(
    corpus: &mut Corpus,
    config_paths: &[String],
    opts: &RunOptions,
) -> Result<RunReport, CorpusError> {
    let configs = load_configs(config_paths)?;
    let prune_tag = if opts.prune {
        format!("prune=analytic band={:.6}", opts.prune_band)
    } else {
        "prune=none".to_owned()
    };
    // The budget joins the fingerprint only when set: degraded cells
    // are a function of it, while budget-less runs stay journal-
    // compatible with earlier versions. Retry/backoff/chaos knobs are
    // deliberately excluded — they change *when* a cell computes, never
    // what a computed cell contains. The runner id is excluded too:
    // every runner of a fleet shares one journal.
    let budget_tag = opts.budget.map(|b| format!("budget={}", b.tag()));
    let mut fp_parts: Vec<&str> = vec!["cac corpus run", &prune_tag];
    if let Some(tag) = &budget_tag {
        fp_parts.push(tag);
    }
    let fp = fingerprint(&fp_parts);
    let journal_path = opts
        .journal
        .clone()
        .unwrap_or_else(|| corpus.results_path());
    let dir = corpus.dir().to_path_buf();
    let runner_id = opts
        .runner
        .clone()
        .unwrap_or_else(|| format!("pid-{}", std::process::id()));
    let _lease = RunnerLease::acquire(&dir, &runner_id)?;

    let mut summary = WorkSummary::default();
    let entries = corpus.entries().to_vec();
    let mut states: Vec<TraceState> = Vec::with_capacity(entries.len());
    for entry in &entries {
        let trace_key = format!("{}@{:016x}", entry.name, entry.hash);
        let mut state = TraceState {
            trace_key: trace_key.clone(),
            cells: (0..configs.len()).map(|_| None).collect(),
            health: TraceHealth {
                trace: entry.name.clone(),
                attempts: 0,
                backoffs_ms: Vec::new(),
                skipped: SkipReport::default(),
                quarantined: corpus.quarantined(&entry.name).map(|q| q.reason.clone()),
                note: String::new(),
            },
            deferred: Vec::new(),
        };

        // Phase A, under the corpus lock: restore finished cells from
        // the (re-loaded) journal, claim what nobody owns, defer what
        // a live peer owns, take over from the dead.
        let mut mine: Vec<usize> = Vec::new();
        {
            let _lock = CorpusLock::exclusive(&dir)?;
            let mut journal = Journal::load(&journal_path, fp)?;
            let mut claimed_any = false;
            for (j, c) in configs.iter().enumerate() {
                let key = format!("{trace_key}/{}", c.key);
                if let Some(stats) = journal.get(&key) {
                    summary.restored += 1;
                    state.cells[j] = Some(restore_cell(stats));
                    continue;
                }
                // A quarantined trace is never touched: journaled
                // cells above restored for free, everything still
                // pending is skipped (and never claimed).
                if let Some(reason) = &state.health.quarantined {
                    state.cells[j] = Some(CellOutcome::Quarantined {
                        reason: reason.clone(),
                    });
                    summary.quarantined += 1;
                    continue;
                }
                match journal.claim_of(&key) {
                    Some(claim)
                        if claim.runner != runner_id && runner_alive(&dir, &claim.runner) =>
                    {
                        state.deferred.push(j);
                    }
                    _ => {
                        journal.claim(&key, &runner_id);
                        claimed_any = true;
                        mine.push(j);
                    }
                }
            }
            if claimed_any {
                journal.save_with(&journal_path, opts.fs.as_ref())?;
            }
        }
        if state.health.quarantined.is_some() && state.health.note.is_empty() {
            state.health.note = "quarantined; pending cells skipped".into();
        }

        if !mine.is_empty() {
            replay_claimed(
                corpus,
                &configs,
                entry,
                &mine,
                opts,
                &journal_path,
                fp,
                &mut summary,
                &mut state,
            )?;
        }
        states.push(state);
    }

    // Poll deferred cells until every live peer finished (their results
    // restore) or died (their claims are taken over and replayed here).
    loop {
        let mut waiting = false;
        for (i, entry) in entries.iter().enumerate() {
            if states[i].deferred.is_empty() {
                continue;
            }
            let mut mine: Vec<usize> = Vec::new();
            {
                let state = &mut states[i];
                let _lock = CorpusLock::exclusive(&dir)?;
                let mut journal = Journal::load(&journal_path, fp)?;
                let mut still: Vec<usize> = Vec::new();
                let mut claimed_any = false;
                for &j in &state.deferred {
                    let key = format!("{}/{}", state.trace_key, configs[j].key);
                    if let Some(stats) = journal.get(&key) {
                        summary.restored += 1;
                        state.cells[j] = Some(restore_cell(stats));
                        continue;
                    }
                    match journal.claim_of(&key) {
                        Some(claim)
                            if claim.runner != runner_id && runner_alive(&dir, &claim.runner) =>
                        {
                            still.push(j);
                        }
                        _ => {
                            journal.claim(&key, &runner_id);
                            claimed_any = true;
                            mine.push(j);
                        }
                    }
                }
                state.deferred = still;
                if claimed_any {
                    journal.save_with(&journal_path, opts.fs.as_ref())?;
                }
            }
            if !mine.is_empty() {
                replay_claimed(
                    corpus,
                    &configs,
                    entry,
                    &mine,
                    opts,
                    &journal_path,
                    fp,
                    &mut summary,
                    &mut states[i],
                )?;
            }
            if !states[i].deferred.is_empty() {
                waiting = true;
            }
        }
        if !waiting {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.peer_poll_ms.max(1)));
    }

    let mut rows = Vec::with_capacity(entries.len());
    let mut health = Vec::with_capacity(entries.len());
    for (entry, state) in entries.iter().zip(states) {
        rows.push(TraceRow {
            trace: entry.name.clone(),
            cells: state
                .cells
                .into_iter()
                .map(|c| c.expect("every cell resolved"))
                .collect(),
        });
        health.push(state.health);
    }

    Ok(RunReport {
        configs: config_paths.to_vec(),
        rows,
        health,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_trace::io::write_trace_columnar;
    use cac_trace::TraceOp;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-corpus-run-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_config(dir: &Path, name: &str, body: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn direct_mapped(size: &str) -> String {
        format!("name = \"dm-{size}\"\n[cache]\nsize = \"{size}\"\nline = 16\nways = 1\n")
    }

    fn seeded_corpus(dir: &Path, ops: u64) -> Corpus {
        let trace: Vec<TraceOp> = (0..ops)
            .map(|i| {
                // Cyclic sweep over a 32KiB working set: caches smaller
                // than the footprint thrash, larger ones barely miss —
                // so cache size visibly separates the predictions.
                TraceOp::load(0x1000 + 4 * i, (16 * i) % 0x8000, 1, None)
            })
            .collect();
        let raw = dir.join("raw.cact");
        let mut buf = Vec::new();
        write_trace_columnar(&mut buf, trace).unwrap();
        std::fs::write(&raw, buf).unwrap();
        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        corpus.add("synthetic", &raw).unwrap();
        corpus
    }

    #[test]
    fn rerun_restores_every_cell_and_reports_identically() {
        let dir = tmp_dir("rerun");
        let mut corpus = seeded_corpus(&dir, 20_000);
        let configs = vec![
            write_config(&dir, "small.toml", &direct_mapped("1KiB")),
            write_config(&dir, "large.toml", &direct_mapped("64KiB")),
        ];
        let opts = RunOptions::default();

        let cold = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(cold.summary.replayed, 2);
        assert_eq!(cold.summary.restored, 0);
        assert_eq!(cold.health[0].attempts, 1);

        let warm = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 0);
        assert_eq!(warm.summary.restored, 2);
        assert_eq!(warm.health[0].attempts, 0, "nothing pending, no attempt");
        // Same matrix content: stats equal cell by cell.
        for (a, b) in cold.rows.iter().zip(&warm.rows) {
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                match (ca, cb) {
                    (CellOutcome::Done { stats: sa, .. }, CellOutcome::Done { stats: sb, .. }) => {
                        assert_eq!(sa, sb)
                    }
                    other => panic!("unexpected cell pair: {other:?}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn editing_one_config_invalidates_one_column() {
        let dir = tmp_dir("config-edit");
        let mut corpus = seeded_corpus(&dir, 10_000);
        let configs = vec![
            write_config(&dir, "a.toml", &direct_mapped("1KiB")),
            write_config(&dir, "b.toml", &direct_mapped("64KiB")),
        ];
        let opts = RunOptions::default();
        run(&mut corpus, &configs, &opts).unwrap();

        // Touch config b's content.
        write_config(&dir, "b.toml", &direct_mapped("32KiB"));
        let warm = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 1);
        assert_eq!(warm.summary.restored, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn re_adding_a_changed_trace_invalidates_its_row() {
        let dir = tmp_dir("trace-edit");
        let mut corpus = seeded_corpus(&dir, 10_000);
        let configs = vec![write_config(&dir, "a.toml", &direct_mapped("4KiB"))];
        let opts = RunOptions::default();
        run(&mut corpus, &configs, &opts).unwrap();

        // Re-add the same name with different content.
        let raw = dir.join("raw2.cact");
        let mut buf = Vec::new();
        write_trace_columnar(
            &mut buf,
            (0..5000u64).map(|i| TraceOp::load(0x2000 + 4 * i, 64 * i, 2, None)),
        )
        .unwrap();
        std::fs::write(&raw, buf).unwrap();
        corpus.add("synthetic", &raw).unwrap();

        let warm = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 1);
        assert_eq!(warm.summary.restored, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_run_is_incremental_and_restores_predictions_exactly() {
        let dir = tmp_dir("prune");
        let mut corpus = seeded_corpus(&dir, 30_000);
        // A clearly-dominated tiny cache among healthy ones.
        let configs = vec![
            write_config(&dir, "tiny.toml", &direct_mapped("256")),
            write_config(&dir, "mid.toml", &direct_mapped("16KiB")),
            write_config(&dir, "big.toml", &direct_mapped("128KiB")),
        ];
        let opts = RunOptions {
            prune: true,
            prune_band: 0.02,
            ..RunOptions::default()
        };

        let cold = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(cold.summary.screened_traces, 1);
        assert!(cold.summary.pruned >= 1, "tiny cache should be pruned");
        assert!(cold.summary.replayed >= 1);

        let warm = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 0);
        assert_eq!(warm.summary.pruned, 0);
        assert_eq!(
            warm.summary.screened_traces, 0,
            "no pending cells, no screen"
        );
        assert_eq!(
            warm.summary.restored as usize,
            configs.len(),
            "every cell restores"
        );
        for (a, b) in cold.rows[0].cells.iter().zip(&warm.rows[0].cells) {
            match (a, b) {
                (
                    CellOutcome::Pruned { predicted: pa, .. },
                    CellOutcome::Pruned { predicted: pb, .. },
                ) => assert_eq!(pa.to_bits(), pb.to_bits(), "prediction restored exactly"),
                (CellOutcome::Done { stats: sa, .. }, CellOutcome::Done { stats: sb, .. }) => {
                    assert_eq!(sa, sb)
                }
                other => panic!("cell kind changed across rerun: {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_and_full_runs_use_distinct_journals() {
        let dir = tmp_dir("fingerprint");
        let mut corpus = seeded_corpus(&dir, 5_000);
        let configs = vec![write_config(&dir, "a.toml", &direct_mapped("4KiB"))];
        run(&mut corpus, &configs, &RunOptions::default()).unwrap();
        // Same journal file, different workload fingerprint: refused
        // loudly instead of splicing mismatched cells.
        let pruned = RunOptions {
            prune: true,
            ..RunOptions::default()
        };
        let err = run(&mut corpus, &configs, &pruned).unwrap_err();
        assert!(
            err.to_string().contains("different workload"),
            "unexpected error: {err}"
        );
        // A budget also changes the fingerprint: degraded cells depend
        // on it.
        let budgeted = RunOptions {
            budget: Some(CellBudget::Refs(1_000)),
            ..RunOptions::default()
        };
        let err = run(&mut corpus, &configs, &budgeted).unwrap_err();
        assert!(err.to_string().contains("different workload"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_trace_fails_its_row_without_aborting_the_fleet() {
        let dir = tmp_dir("damaged");
        let mut corpus = seeded_corpus(&dir, 8_000);
        // Second, healthy trace.
        let raw = dir.join("ok.cact");
        let mut buf = Vec::new();
        write_trace_columnar(
            &mut buf,
            (0..2000u64).map(|i| TraceOp::load(0x3000 + 4 * i, 8 * i, 1, None)),
        )
        .unwrap();
        std::fs::write(&raw, buf).unwrap();
        corpus.add("healthy", &raw).unwrap();

        // Truncate the first trace's stored file (drops the index).
        let entry = corpus.manifest().get("synthetic").unwrap().clone();
        let stored = corpus.trace_path(&entry);
        let bytes = std::fs::read(&stored).unwrap();
        std::fs::write(&stored, &bytes[..bytes.len() / 2]).unwrap();

        let configs = vec![write_config(&dir, "a.toml", &direct_mapped("4KiB"))];
        let report = run(&mut corpus, &configs, &RunOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(matches!(
            report.rows[0].cells[0],
            CellOutcome::Failed { .. }
        ));
        assert!(matches!(report.rows[1].cells[0], CellOutcome::Done { .. }));
        assert_eq!(report.summary.failed, 1);
        assert_eq!(report.summary.replayed, 1);
        // The damaged trace is quarantined and its FAILED cell is
        // journaled: a rerun restores everything and replays nothing.
        assert!(corpus.quarantined("synthetic").is_some());
        let warm = run(&mut corpus, &configs, &RunOptions::default()).unwrap();
        assert_eq!(warm.summary.replayed, 0);
        assert_eq!(warm.summary.restored, 2);
        assert!(matches!(
            warm.rows[0].cells[0],
            CellOutcome::Failed { restored: true, .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_degrades_cells_to_estimates_and_journals_them() {
        let dir = tmp_dir("budget");
        let mut corpus = seeded_corpus(&dir, 40_000);
        let configs = vec![
            write_config(&dir, "small.toml", &direct_mapped("1KiB")),
            write_config(&dir, "large.toml", &direct_mapped("64KiB")),
        ];
        // Reference truth from an unbudgeted run in its own journal.
        let truth_opts = RunOptions {
            journal: Some(dir.join("truth.journal")),
            ..RunOptions::default()
        };
        let truth = run(&mut corpus, &configs, &truth_opts).unwrap();

        let opts = RunOptions {
            budget: Some(CellBudget::Refs(5_000)),
            chunk: 1024,
            ..RunOptions::default()
        };
        let cold = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(cold.summary.degraded, 2);
        assert_eq!(cold.summary.replayed, 0);
        for (cell, full) in cold.rows[0].cells.iter().zip(&truth.rows[0].cells) {
            let CellOutcome::Degraded {
                estimate,
                se,
                restored,
            } = cell
            else {
                panic!("expected degraded cell, got {cell:?}");
            };
            assert!(!restored);
            assert!(*se > 0.0, "sampled estimate carries a standard error");
            let CellOutcome::Done { stats, .. } = full else {
                panic!()
            };
            let actual = stats.demand.miss_ratio();
            // Degraded estimates stay within the analytic tier's
            // documented 5-point bound, widened by the sampling error.
            assert!(
                (estimate - actual).abs() <= 0.05 + 4.0 * se,
                "estimate {estimate:.4} vs actual {actual:.4} (se {se:.4})"
            );
        }

        // Degraded cells restore from the journal bit-exactly.
        let warm = run(&mut corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.degraded, 0);
        assert_eq!(warm.summary.restored, 2);
        for (a, b) in cold.rows[0].cells.iter().zip(&warm.rows[0].cells) {
            let (
                CellOutcome::Degraded {
                    estimate: ea,
                    se: sa,
                    ..
                },
                CellOutcome::Degraded {
                    estimate: eb,
                    se: sb,
                    restored,
                },
            ) = (a, b)
            else {
                panic!("cell kind changed: {a:?} vs {b:?}");
            };
            assert!(restored);
            assert_eq!(ea.to_bits(), eb.to_bits());
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_and_degraded_cells_round_trip_through_stats() {
        let f = failed_stats("decode exploded; twice", FailureClass::Transient);
        let CellOutcome::Failed {
            reason,
            class,
            restored,
        } = restore_cell(&f)
        else {
            panic!()
        };
        assert_eq!(reason, "decode exploded, twice", "`;` flattened");
        assert_eq!(class, FailureClass::Transient);
        assert!(restored);

        let d = degraded_stats(0.1234, 0.0056);
        let CellOutcome::Degraded { estimate, se, .. } = restore_cell(&d) else {
            panic!()
        };
        assert_eq!(estimate.to_bits(), 0.1234f64.to_bits());
        assert_eq!(se.to_bits(), 0.0056f64.to_bits());

        let p = pruned_stats(0.5);
        assert!(matches!(restore_cell(&p), CellOutcome::Pruned { .. }));
    }
}

//! The incremental fleet runner: traces × configs, recompute only what
//! changed.
//!
//! Results live in a [`Journal`] next to the manifest, one cell per
//! (trace, config) pair keyed
//! `<trace>@<trace-hash>/<config-path>@<config-hash>`. A rerun restores
//! every cell whose key still resolves and replays only the rest:
//! re-adding a trace with different content invalidates its row,
//! editing a config file invalidates its column, and a no-op rerun
//! replays nothing while producing the identical report.
//!
//! Each trace is decoded **once** per run regardless of how many
//! configs need it — all pending models ride the same
//! [`Sweep::run_source_isolated`] pass over the columnar stream.
//!
//! With [`RunOptions::prune`] set, an analytic screen runs first: one
//! LRU stack-distance pass per (trace, line-size) group predicts every
//! config's miss ratio, and configs predicted worse than the trace's
//! best by more than [`RunOptions::prune_band`] are recorded as pruned
//! cells — never built, never replayed. Pruned cells persist in the
//! journal (with the prediction embedded), so a pruned rerun is as
//! incremental as a full one. The screen's decisions depend only on
//! trace content, the config list and the band — never on journal
//! state — so an interrupted-and-resumed pruned run converges to the
//! same report as an uninterrupted one.

use crate::store::Corpus;
use crate::{content_hash, CorpusError};
use cac_sim::analytic::{prune_dominated, AnalyticModel};
use cac_sim::config::SimConfig;
use cac_sim::journal::{fingerprint, Journal};
use cac_sim::model::ModelStats;
use cac_sim::sweep::{LruStackSweep, ModelOutcome, Sweep};
use cac_trace::io::{ColumnarTraceReader, DEFAULT_CHUNK_OPS};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Journal extras key marking a cell as analytically pruned.
pub const PRUNED_FLAG: &str = "analytic-pruned";
/// Journal extras key carrying the pruned cell's predicted miss ratio
/// (an `f64` stored via `to_bits`, exact across save/load).
pub const PRUNED_PREDICTED: &str = "predicted-bits";

/// Options for [`run`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Sweep worker threads (1 = deterministic in-order replay).
    pub workers: usize,
    /// Trace operations decoded per replay chunk.
    pub chunk: usize,
    /// Screen configs with the analytic model before replaying.
    pub prune: bool,
    /// Prune band as a miss-ratio fraction: a config is pruned when its
    /// predicted miss ratio exceeds the trace's best prediction by more
    /// than this.
    pub prune_band: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            chunk: DEFAULT_CHUNK_OPS,
            prune: false,
            prune_band: 0.02,
        }
    }
}

/// One result cell of the trace × config matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The config replayed (now, or in a previous run).
    Done {
        /// The model's counters over the whole trace.
        stats: ModelStats,
        /// `true` if restored from the journal instead of replayed.
        restored: bool,
    },
    /// The analytic screen pruned the config before any replay.
    Pruned {
        /// The screen's predicted miss ratio.
        predicted: f64,
        /// `true` if restored from the journal.
        restored: bool,
    },
    /// The cell could not be computed (model build error, replay
    /// panic, trace decode failure). Failed cells are *not* journaled;
    /// the next run retries them.
    Failed {
        /// What went wrong.
        reason: String,
    },
}

/// One trace's row of cells, in config order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// The trace's manifest name.
    pub trace: String,
    /// One cell per config, aligned with [`RunReport::configs`].
    pub cells: Vec<CellOutcome>,
}

/// Work accounting for one [`run`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkSummary {
    /// Cells replayed in this run.
    pub replayed: u64,
    /// Cells restored from the journal (replayed or pruned earlier).
    pub restored: u64,
    /// Cells pruned by the analytic screen in this run.
    pub pruned: u64,
    /// Cells that failed (not journaled; retried next run).
    pub failed: u64,
    /// Traces that received an analytic screening pass in this run.
    pub screened_traces: u64,
}

/// The result matrix of one [`run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Config paths, in column order (as passed in).
    pub configs: Vec<String>,
    /// One row per corpus trace, in manifest order.
    pub rows: Vec<TraceRow>,
    /// What this run actually did.
    pub summary: WorkSummary,
}

/// A parsed config column.
struct ConfigColumn {
    key: String,
    cfg: SimConfig,
}

/// Loads and hashes the config files.
fn load_configs(paths: &[String]) -> Result<Vec<ConfigColumn>, CorpusError> {
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CorpusError::io(format!("reading config {path}"), e))?;
        let cfg = SimConfig::from_toml_str(&text)
            .map_err(|e| CorpusError::Sim(cac_core::Error::config(format!("{path}: {e}"))))?;
        out.push(ConfigColumn {
            key: format!("{path}@{:016x}", content_hash(text.as_bytes())),
            cfg,
        });
    }
    Ok(out)
}

/// Encodes a pruned cell as journalable [`ModelStats`]: zero counters
/// plus the [`PRUNED_FLAG`]/[`PRUNED_PREDICTED`] extras. Shared by
/// every pruned-and-checkpointed sweep in the workspace so journals
/// stay mutually readable.
pub fn pruned_stats(predicted: f64) -> ModelStats {
    ModelStats {
        extras: vec![
            (PRUNED_FLAG.into(), 1),
            (PRUNED_PREDICTED.into(), predicted.to_bits()),
        ],
        ..ModelStats::default()
    }
}

/// Decodes a journaled cell back into an outcome.
fn restore_cell(stats: &ModelStats) -> CellOutcome {
    if stats.extra(PRUNED_FLAG) == Some(1) {
        CellOutcome::Pruned {
            predicted: f64::from_bits(stats.extra(PRUNED_PREDICTED).unwrap_or(0)),
            restored: true,
        }
    } else {
        CellOutcome::Done {
            stats: stats.clone(),
            restored: true,
        }
    }
}

/// Opens a trace's columnar stream for one decode pass.
fn open_stream(path: &Path) -> Result<ColumnarTraceReader<BufReader<File>>, CorpusError> {
    let file = File::open(path)
        .map_err(|e| CorpusError::io(format!("opening trace {}", path.display()), e))?;
    Ok(ColumnarTraceReader::new(BufReader::new(file))?)
}

/// Runs the analytic screen for one trace: predicted miss ratio per
/// config (`None` where the config has no primary cache to predict
/// for), then the dominated-config mask.
///
/// Configs are grouped by primary line size; each group shares one LRU
/// stack pass over the trace. Modulo-indexed configs use the stack
/// sweep's exact set-conflict ratio; hashed/skewed indexes use the
/// analytic conflict model (hashing decorrelates sets from address
/// bits, which is precisely that model's assumption).
fn screen_trace(
    trace_path: &Path,
    configs: &[ConfigColumn],
    band: f64,
) -> Result<(Vec<Option<f64>>, Vec<bool>), CorpusError> {
    let mut predicted: Vec<Option<f64>> = vec![None; configs.len()];
    let mut by_line: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (j, c) in configs.iter().enumerate() {
        if let Some(geom) = c.cfg.primary_geometry() {
            by_line.entry(geom.block()).or_default().push(j);
        }
    }
    for (line, members) in &by_line {
        let mut set_counts: Vec<u32> = vec![1];
        for &j in members {
            let sets = configs[j]
                .cfg
                .primary_geometry()
                .expect("grouped by primary geometry")
                .num_sets();
            if !set_counts.contains(&sets) {
                set_counts.push(sets);
            }
        }
        let mut stack = LruStackSweep::new(*line, &set_counts)?;
        stack
            .run_source(open_stream(trace_path)?)
            .map_err(CorpusError::Trace)?;
        let model = AnalyticModel::from_sweep(&stack).expect("1-set family configured");
        for &j in members {
            let geom = configs[j].cfg.primary_geometry().expect("grouped");
            let modulo = configs[j]
                .cfg
                .primary_index()
                .is_some_and(|s| s.name() == "modulo");
            predicted[j] = if modulo {
                stack.miss_ratio(geom.num_sets(), geom.ways())
            } else {
                model.predict(geom.num_sets(), geom.ways())
            };
        }
    }
    // Dominance is judged over the predictable subset only; configs the
    // screen cannot model are always kept.
    let known: Vec<(usize, f64)> = predicted
        .iter()
        .enumerate()
        .filter_map(|(j, p)| p.map(|p| (j, p)))
        .collect();
    let keep = prune_dominated(&known.iter().map(|&(_, p)| p).collect::<Vec<_>>(), band);
    let mut pruned = vec![false; configs.len()];
    for (&(j, _), &keep) in known.iter().zip(&keep) {
        pruned[j] = !keep;
    }
    Ok((predicted, pruned))
}

/// Sweeps every corpus trace across `config_paths`, restoring cells
/// from the corpus's result journal and replaying only the rest.
///
/// The journal is saved after every trace that produced new cells, so
/// a killed run loses at most one trace's work.
///
/// # Errors
///
/// Config-file and journal problems abort the run. Per-trace and
/// per-cell problems (damaged trace, model build error, replay panic)
/// are reported as [`CellOutcome::Failed`] cells instead, so one bad
/// entry cannot take down a fleet sweep.
pub fn run(
    corpus: &Corpus,
    config_paths: &[String],
    opts: &RunOptions,
) -> Result<RunReport, CorpusError> {
    let configs = load_configs(config_paths)?;
    let prune_tag = if opts.prune {
        format!("prune=analytic band={:.6}", opts.prune_band)
    } else {
        "prune=none".to_owned()
    };
    let fp = fingerprint(&["cac corpus run", &prune_tag]);
    let journal_path = corpus.results_path();
    let mut journal = Journal::load(&journal_path, fp)?;

    let mut summary = WorkSummary::default();
    let mut rows = Vec::with_capacity(corpus.entries().len());
    for entry in corpus.entries() {
        let trace_key = format!("{}@{:016x}", entry.name, entry.hash);
        let mut cells: Vec<Option<CellOutcome>> = Vec::with_capacity(configs.len());
        let mut pending: Vec<usize> = Vec::new();
        for (j, c) in configs.iter().enumerate() {
            match journal.get(&format!("{trace_key}/{}", c.key)) {
                Some(stats) => {
                    summary.restored += 1;
                    cells.push(Some(restore_cell(stats)));
                }
                None => {
                    pending.push(j);
                    cells.push(None);
                }
            }
        }

        let mut dirty = false;
        if !pending.is_empty() {
            let trace_path = corpus.trace_path(entry);
            // Screen decisions are a function of (trace, config list,
            // band) only, so resumed runs decide identically.
            let screen = if opts.prune {
                match screen_trace(&trace_path, &configs, opts.prune_band) {
                    Ok(s) => {
                        summary.screened_traces += 1;
                        Some(s)
                    }
                    Err(e) => {
                        // A trace that cannot be screened cannot be
                        // replayed either; fail its pending cells.
                        for &j in &pending {
                            cells[j] = Some(CellOutcome::Failed {
                                reason: format!("analytic screen failed: {e}"),
                            });
                            summary.failed += 1;
                        }
                        pending.clear();
                        None
                    }
                }
            } else {
                None
            };

            let mut to_replay: Vec<usize> = Vec::new();
            for &j in &pending {
                match &screen {
                    Some((predicted, pruned)) if pruned[j] => {
                        let p = predicted[j].expect("pruned implies predicted");
                        journal
                            .record(&format!("{trace_key}/{}", configs[j].key), &pruned_stats(p));
                        dirty = true;
                        summary.pruned += 1;
                        cells[j] = Some(CellOutcome::Pruned {
                            predicted: p,
                            restored: false,
                        });
                    }
                    _ => to_replay.push(j),
                }
            }

            if !to_replay.is_empty() {
                let mut models = Vec::with_capacity(to_replay.len());
                let mut buildable: Vec<usize> = Vec::new();
                for &j in &to_replay {
                    match configs[j].cfg.build() {
                        Ok(m) => {
                            buildable.push(j);
                            models.push(m);
                        }
                        Err(e) => {
                            cells[j] = Some(CellOutcome::Failed {
                                reason: format!("config build failed: {e}"),
                            });
                            summary.failed += 1;
                        }
                    }
                }
                if !models.is_empty() {
                    let engine = Sweep::new()
                        .workers(opts.workers.max(1))
                        .chunk_ops(opts.chunk.max(1));
                    match open_stream(&corpus.trace_path(entry)).and_then(|s| {
                        engine
                            .run_source_isolated(&mut models, s)
                            .map_err(Into::into)
                    }) {
                        Ok(outcomes) => {
                            for (&j, outcome) in buildable.iter().zip(&outcomes) {
                                match outcome {
                                    ModelOutcome::Completed(stats) => {
                                        journal.record(
                                            &format!("{trace_key}/{}", configs[j].key),
                                            stats,
                                        );
                                        dirty = true;
                                        summary.replayed += 1;
                                        cells[j] = Some(CellOutcome::Done {
                                            stats: stats.clone(),
                                            restored: false,
                                        });
                                    }
                                    ModelOutcome::Failed { reason } => {
                                        cells[j] = Some(CellOutcome::Failed {
                                            reason: format!("replay panicked: {reason}"),
                                        });
                                        summary.failed += 1;
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            for &j in &buildable {
                                cells[j] = Some(CellOutcome::Failed {
                                    reason: format!("trace replay failed: {e}"),
                                });
                                summary.failed += 1;
                            }
                        }
                    }
                }
            }
        }
        if dirty {
            journal.save(&journal_path)?;
        }
        rows.push(TraceRow {
            trace: entry.name.clone(),
            cells: cells
                .into_iter()
                .map(|c| c.expect("every cell resolved"))
                .collect(),
        });
    }

    Ok(RunReport {
        configs: config_paths.to_vec(),
        rows,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_trace::io::write_trace_columnar;
    use cac_trace::TraceOp;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-corpus-run-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_config(dir: &Path, name: &str, body: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn direct_mapped(size: &str) -> String {
        format!("name = \"dm-{size}\"\n[cache]\nsize = \"{size}\"\nline = 16\nways = 1\n")
    }

    fn seeded_corpus(dir: &Path, ops: u64) -> Corpus {
        let trace: Vec<TraceOp> = (0..ops)
            .map(|i| {
                // Cyclic sweep over a 32KiB working set: caches smaller
                // than the footprint thrash, larger ones barely miss —
                // so cache size visibly separates the predictions.
                TraceOp::load(0x1000 + 4 * i, (16 * i) % 0x8000, 1, None)
            })
            .collect();
        let raw = dir.join("raw.cact");
        let mut buf = Vec::new();
        write_trace_columnar(&mut buf, trace).unwrap();
        std::fs::write(&raw, buf).unwrap();
        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        corpus.add("synthetic", &raw).unwrap();
        corpus
    }

    #[test]
    fn rerun_restores_every_cell_and_reports_identically() {
        let dir = tmp_dir("rerun");
        let corpus = seeded_corpus(&dir, 20_000);
        let configs = vec![
            write_config(&dir, "small.toml", &direct_mapped("1KiB")),
            write_config(&dir, "large.toml", &direct_mapped("64KiB")),
        ];
        let opts = RunOptions::default();

        let cold = run(&corpus, &configs, &opts).unwrap();
        assert_eq!(cold.summary.replayed, 2);
        assert_eq!(cold.summary.restored, 0);

        let warm = run(&corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 0);
        assert_eq!(warm.summary.restored, 2);
        // Same matrix content: stats equal cell by cell.
        for (a, b) in cold.rows.iter().zip(&warm.rows) {
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                match (ca, cb) {
                    (CellOutcome::Done { stats: sa, .. }, CellOutcome::Done { stats: sb, .. }) => {
                        assert_eq!(sa, sb)
                    }
                    other => panic!("unexpected cell pair: {other:?}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn editing_one_config_invalidates_one_column() {
        let dir = tmp_dir("config-edit");
        let corpus = seeded_corpus(&dir, 10_000);
        let configs = vec![
            write_config(&dir, "a.toml", &direct_mapped("1KiB")),
            write_config(&dir, "b.toml", &direct_mapped("64KiB")),
        ];
        let opts = RunOptions::default();
        run(&corpus, &configs, &opts).unwrap();

        // Touch config b's content.
        write_config(&dir, "b.toml", &direct_mapped("32KiB"));
        let warm = run(&corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 1);
        assert_eq!(warm.summary.restored, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn re_adding_a_changed_trace_invalidates_its_row() {
        let dir = tmp_dir("trace-edit");
        let mut corpus = seeded_corpus(&dir, 10_000);
        let configs = vec![write_config(&dir, "a.toml", &direct_mapped("4KiB"))];
        let opts = RunOptions::default();
        run(&corpus, &configs, &opts).unwrap();

        // Re-add the same name with different content.
        let raw = dir.join("raw2.cact");
        let mut buf = Vec::new();
        write_trace_columnar(
            &mut buf,
            (0..5000u64).map(|i| TraceOp::load(0x2000 + 4 * i, 64 * i, 2, None)),
        )
        .unwrap();
        std::fs::write(&raw, buf).unwrap();
        corpus.add("synthetic", &raw).unwrap();

        let warm = run(&corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 1);
        assert_eq!(warm.summary.restored, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_run_is_incremental_and_restores_predictions_exactly() {
        let dir = tmp_dir("prune");
        let corpus = seeded_corpus(&dir, 30_000);
        // A clearly-dominated tiny cache among healthy ones.
        let configs = vec![
            write_config(&dir, "tiny.toml", &direct_mapped("256")),
            write_config(&dir, "mid.toml", &direct_mapped("16KiB")),
            write_config(&dir, "big.toml", &direct_mapped("128KiB")),
        ];
        let opts = RunOptions {
            prune: true,
            prune_band: 0.02,
            ..RunOptions::default()
        };

        let cold = run(&corpus, &configs, &opts).unwrap();
        assert_eq!(cold.summary.screened_traces, 1);
        assert!(cold.summary.pruned >= 1, "tiny cache should be pruned");
        assert!(cold.summary.replayed >= 1);

        let warm = run(&corpus, &configs, &opts).unwrap();
        assert_eq!(warm.summary.replayed, 0);
        assert_eq!(warm.summary.pruned, 0);
        assert_eq!(
            warm.summary.screened_traces, 0,
            "no pending cells, no screen"
        );
        assert_eq!(
            warm.summary.restored as usize,
            configs.len(),
            "every cell restores"
        );
        for (a, b) in cold.rows[0].cells.iter().zip(&warm.rows[0].cells) {
            match (a, b) {
                (
                    CellOutcome::Pruned { predicted: pa, .. },
                    CellOutcome::Pruned { predicted: pb, .. },
                ) => assert_eq!(pa.to_bits(), pb.to_bits(), "prediction restored exactly"),
                (CellOutcome::Done { stats: sa, .. }, CellOutcome::Done { stats: sb, .. }) => {
                    assert_eq!(sa, sb)
                }
                other => panic!("cell kind changed across rerun: {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruned_and_full_runs_use_distinct_journals() {
        let dir = tmp_dir("fingerprint");
        let corpus = seeded_corpus(&dir, 5_000);
        let configs = vec![write_config(&dir, "a.toml", &direct_mapped("4KiB"))];
        run(&corpus, &configs, &RunOptions::default()).unwrap();
        // Same journal file, different workload fingerprint: refused
        // loudly instead of splicing mismatched cells.
        let pruned = RunOptions {
            prune: true,
            ..RunOptions::default()
        };
        let err = run(&corpus, &configs, &pruned).unwrap_err();
        assert!(
            err.to_string().contains("different workload"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_trace_fails_its_row_without_aborting_the_fleet() {
        let dir = tmp_dir("damaged");
        let mut corpus = seeded_corpus(&dir, 8_000);
        // Second, healthy trace.
        let raw = dir.join("ok.cact");
        let mut buf = Vec::new();
        write_trace_columnar(
            &mut buf,
            (0..2000u64).map(|i| TraceOp::load(0x3000 + 4 * i, 8 * i, 1, None)),
        )
        .unwrap();
        std::fs::write(&raw, buf).unwrap();
        corpus.add("healthy", &raw).unwrap();

        // Truncate the first trace's stored file (drops the index).
        let entry = corpus.manifest().get("synthetic").unwrap().clone();
        let stored = corpus.trace_path(&entry);
        let bytes = std::fs::read(&stored).unwrap();
        std::fs::write(&stored, &bytes[..bytes.len() / 2]).unwrap();

        let configs = vec![write_config(&dir, "a.toml", &direct_mapped("4KiB"))];
        let report = run(&corpus, &configs, &RunOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(matches!(
            report.rows[0].cells[0],
            CellOutcome::Failed { .. }
        ));
        assert!(matches!(report.rows[1].cells[0], CellOutcome::Done { .. }));
        assert_eq!(report.summary.failed, 1);
        assert_eq!(report.summary.replayed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

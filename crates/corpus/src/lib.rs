//! The corpus tier: a manifest-driven store of columnar traces with
//! incremental fleet sweeps.
//!
//! The ROADMAP's north star treats miss-ratio evaluation as a service:
//! users submit traces, the service answers "how would this workload
//! behave across the organization grid" — and keeps answering cheaply
//! as traces and configs churn. This crate is that data tier:
//!
//! * [`Corpus`] — a directory holding `corpus.toml` (the manifest) and
//!   one CACT v3 columnar file per ingested trace. [`Corpus::add`]
//!   accepts any sniffable trace format (text, binary v1/v2, columnar
//!   v3) and transcodes it into the block-compressed columnar store,
//!   recording a content hash so downstream results can be invalidated
//!   precisely.
//! * [`manifest`] — the `corpus.toml` schema: one `[[trace]]` entry per
//!   stored trace with its FNV-64 content hash, record counts and
//!   stored size. Saves are atomic (temp file + rename), mirroring the
//!   sweep journal.
//! * [`run`] — the incremental fleet runner: traces × configs, one
//!   decode pass per trace, with per-(trace-hash, config-hash) result
//!   cells persisted in a [`cac_sim::journal::Journal`] so a rerun
//!   recomputes only cells whose trace or config content changed. An
//!   optional analytic prune screens dominated configs with a single
//!   LRU stack pass before any replay (see [`cac_sim::analytic`]).
//!
//! Cell keys are `<trace>@<trace-hash>/<config>@<config-hash>`: editing
//! a config invalidates one column of the result matrix, re-adding a
//! trace with different content invalidates one row, and everything
//! else restores from the journal without touching the trace bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod fsck;
pub mod lock;
pub mod manifest;
pub mod run;
pub mod store;
pub mod supervisor;

pub use fsck::{fsck, FsckProblem, FsckReport};
pub use lock::{runner_alive, CorpusLock, RunnerLease};
pub use manifest::{Manifest, QuarantineEntry, TraceEntry};
pub use run::{
    degraded_stats, failed_stats, pruned_stats, CellOutcome, RunOptions, RunReport, TraceHealth,
    TraceRow, WorkSummary, DEGRADED_ESTIMATE, DEGRADED_FLAG, DEGRADED_SE, FAILED_CLASS,
    FAILED_FLAG, FAILED_REASON_PREFIX, PRUNED_FLAG, PRUNED_PREDICTED,
};
pub use store::{Corpus, VerifyReport};
pub use supervisor::{classify, CellBudget, ChaosPlan, RetryPolicy};

/// Errors produced by corpus operations.
#[derive(Debug)]
pub enum CorpusError {
    /// An I/O operation failed; `context` names what was being done.
    Io {
        /// What the operation was trying to do.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The corpus manifest is missing, malformed, or inconsistent.
    Manifest(String),
    /// A trace file failed to decode.
    Trace(cac_trace::io::BinaryTraceError),
    /// A simulator config or journal operation failed.
    Sim(cac_core::Error),
}

impl CorpusError {
    /// Shorthand for an [`CorpusError::Io`] with formatted context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CorpusError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { context, source } => write!(f, "{context}: {source}"),
            CorpusError::Manifest(msg) => write!(f, "corpus manifest: {msg}"),
            CorpusError::Trace(e) => write!(f, "trace decode: {e}"),
            CorpusError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            CorpusError::Trace(e) => Some(e),
            CorpusError::Sim(e) => Some(e),
            CorpusError::Manifest(_) => None,
        }
    }
}

impl From<cac_trace::io::BinaryTraceError> for CorpusError {
    fn from(e: cac_trace::io::BinaryTraceError) -> Self {
        CorpusError::Trace(e)
    }
}

impl From<cac_core::Error> for CorpusError {
    fn from(e: cac_core::Error) -> Self {
        CorpusError::Sim(e)
    }
}

/// FNV-1a over raw bytes — the corpus content hash.
///
/// Matches the journal's string hash on identical byte sequences, so a
/// hash printed by `cac corpus ls` can be compared against journal cell
/// keys directly.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_matches_fnv_reference() {
        // FNV-1a reference vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CorpusError::Manifest("missing [[trace]] name".into());
        assert!(e.to_string().contains("missing [[trace]] name"));
        let e = CorpusError::io(
            "reading corpus.toml",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("reading corpus.toml"));
    }
}

//! The on-disk corpus: a directory of columnar traces plus manifest.
//!
//! Layout:
//!
//! ```text
//! <corpus-dir>/
//!   corpus.toml        # manifest: one [[trace]] entry per stored trace
//!   traces/<name>.cact # CACT v3 columnar files, one per trace
//!   results.journal    # incremental result cells (see crate::run)
//!   .corpus.lock       # advisory root lock (see crate::lock)
//!   locks/<id>.lock    # runner liveness leases (see crate::lock)
//! ```
//!
//! [`Corpus::add`] ingests a trace in any sniffable format (text,
//! binary v1/v2, columnar v3) and transcodes it — streaming, one record
//! at a time — into the columnar store. The stored file's content hash
//! becomes part of every result-cell key, so re-adding a trace under
//! the same name invalidates exactly that trace's row of results.
//!
//! Every mutation (trace install, manifest save) runs the crash-atomic
//! commit protocol from [`cac_trace::io::commitfs`] under the exclusive
//! [`CorpusLock`], so concurrent runners and
//! mid-commit crashes leave the store either fully-old or fully-new.

use crate::lock::CorpusLock;
use crate::manifest::{Manifest, QuarantineEntry, TraceEntry};
use crate::{content_hash, CorpusError};
use cac_trace::io::commitfs::{CommitFs, DiskFs};
use cac_trace::io::{
    read_trace, sniff_format, ColumnarFile, ColumnarTraceReader, ColumnarTraceWriter, TraceFormat,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Name of the manifest file inside the corpus directory.
pub const MANIFEST_FILE: &str = "corpus.toml";
/// Name of the subdirectory holding stored traces.
pub const TRACES_DIR: &str = "traces";
/// Name of the incremental result journal.
pub const RESULTS_FILE: &str = "results.journal";

/// An open corpus directory.
#[derive(Debug)]
pub struct Corpus {
    dir: PathBuf,
    manifest: Manifest,
}

/// The outcome of verifying one stored trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The trace's manifest name.
    pub name: String,
    /// `true` if every check passed.
    pub ok: bool,
    /// Human-readable detail: counts on success, the reason on failure.
    pub detail: String,
}

impl Corpus {
    /// Creates a new corpus directory (with `traces/` and an empty
    /// manifest).
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] if a manifest already exists there;
    /// [`CorpusError::Io`] on filesystem failures.
    pub fn init(dir: &Path) -> Result<Corpus, CorpusError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(CorpusError::Manifest(format!(
                "{} already exists — use open",
                manifest_path.display()
            )));
        }
        std::fs::create_dir_all(dir.join(TRACES_DIR))
            .map_err(|e| CorpusError::io(format!("creating corpus dir {}", dir.display()), e))?;
        let manifest = Manifest::default();
        manifest.save(&manifest_path)?;
        Ok(Corpus {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// Opens an existing corpus directory.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the manifest cannot be read,
    /// [`CorpusError::Manifest`] if it does not parse.
    pub fn open(dir: &Path) -> Result<Corpus, CorpusError> {
        let manifest = Manifest::load(&dir.join(MANIFEST_FILE))?;
        Ok(Corpus {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// Opens the corpus at `dir`, initialising it first if the
    /// manifest does not exist yet.
    ///
    /// # Errors
    ///
    /// As [`Corpus::open`] / [`Corpus::init`].
    pub fn open_or_init(dir: &Path) -> Result<Corpus, CorpusError> {
        if dir.join(MANIFEST_FILE).exists() {
            Corpus::open(dir)
        } else {
            Corpus::init(dir)
        }
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Stored traces, in manifest order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.manifest.traces
    }

    /// Absolute path of a stored trace file.
    pub fn trace_path(&self, entry: &TraceEntry) -> PathBuf {
        self.dir.join(&entry.file)
    }

    /// Path of the incremental result journal.
    pub fn results_path(&self) -> PathBuf {
        self.dir.join(RESULTS_FILE)
    }

    /// Ingests the trace at `source` under `name`, transcoding it into
    /// the columnar store and updating the manifest atomically.
    ///
    /// Accepts any sniffable input format. Re-adding an existing name
    /// replaces that entry; if the new content hash differs, the
    /// trace's result cells (keyed by hash) are naturally invalidated.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] for invalid names, [`CorpusError::Io`]
    /// / [`CorpusError::Trace`] if the source cannot be read or
    /// decoded.
    pub fn add(&mut self, name: &str, source: &Path) -> Result<&TraceEntry, CorpusError> {
        self.add_with(name, source, &DiskFs)
    }

    /// [`Corpus::add`] through an explicit [`CommitFs`], so tests can
    /// inject crash points and disk-full faults into the pool-install
    /// commit sequence (stream to `<name>.cact.tmp` → `fsync` → rename
    /// → `fsync` dir → commit manifest). Runs under the exclusive
    /// corpus lock.
    ///
    /// # Errors
    ///
    /// As [`Corpus::add`].
    pub fn add_with(
        &mut self,
        name: &str,
        source: &Path,
        fs: &dyn CommitFs,
    ) -> Result<&TraceEntry, CorpusError> {
        validate_name(name)?;
        let _lock = CorpusLock::exclusive(&self.dir)?;
        let rel = format!("{TRACES_DIR}/{name}.cact");
        let stored = self.dir.join(&rel);
        let tmp = self.dir.join(format!("{TRACES_DIR}/{name}.cact.tmp"));
        if let Some(parent) = stored.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                CorpusError::io(format!("creating trace dir {}", parent.display()), e)
            })?;
        }

        // Any failure between temp creation and the rename must remove
        // the temp file — a leaked `.tmp` is exactly the orphan class
        // `fsck` exists to flag.
        let install = || -> Result<(u64, u64), CorpusError> {
            let out = fs
                .create(&tmp)
                .map_err(|e| CorpusError::io(format!("creating {}", tmp.display()), e))?;
            let mut writer = ColumnarTraceWriter::new(BufWriter::new(out))
                .map_err(|e| CorpusError::io(format!("writing {}", tmp.display()), e))?;
            let counts = transcode_into(source, &mut writer)?;
            let buf = writer
                .finish()
                .map_err(|e| CorpusError::io(format!("finishing {}", tmp.display()), e))?;
            let out = buf.into_inner().map_err(|e| {
                CorpusError::io(format!("flushing {}", tmp.display()), e.into_error())
            })?;
            drop(out);
            fs.sync_file(&tmp)
                .map_err(|e| CorpusError::io(format!("syncing {}", tmp.display()), e))?;
            fs.rename(&tmp, &stored)
                .map_err(|e| CorpusError::io(format!("installing {}", stored.display()), e))?;
            if let Some(parent) = stored.parent() {
                fs.sync_dir(parent)
                    .map_err(|e| CorpusError::io(format!("syncing {}", parent.display()), e))?;
            }
            Ok(counts)
        };
        let counts = match install() {
            Ok(c) => c,
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                return Err(e);
            }
        };

        let bytes = std::fs::read(&stored)
            .map_err(|e| CorpusError::io(format!("hashing {}", stored.display()), e))?;
        let hash = content_hash(&bytes);
        let indexed = ColumnarFile::open_path(&stored)?;
        let entry = TraceEntry {
            name: name.to_owned(),
            file: rel,
            hash,
            ops: counts.0,
            refs: counts.1,
            bytes: bytes.len() as u64,
            blocks: indexed.block_count() as u64,
        };
        match self.manifest.traces.iter_mut().find(|e| e.name == name) {
            Some(slot) => *slot = entry,
            None => self.manifest.traces.push(entry),
        }
        // Re-adding with different bytes deserves a fresh chance: drop
        // any quarantine record made against the old content.
        if self
            .manifest
            .quarantine
            .iter()
            .any(|q| q.name == name && q.hash != hash)
        {
            self.manifest.clear_quarantine(name);
        }
        self.manifest.save_with(&self.dir.join(MANIFEST_FILE), fs)?;
        Ok(self.manifest.get(name).expect("entry just inserted"))
    }

    /// The quarantine record for a trace's *current* content, if any
    /// (see [`Manifest::quarantined`]).
    pub fn quarantined(&self, name: &str) -> Option<&QuarantineEntry> {
        self.manifest.quarantined(name)
    }

    /// Records a quarantine for a trace and persists the manifest.
    ///
    /// Runs as a reload-merge-save transaction under the exclusive
    /// corpus lock: a peer runner's quarantine records written since
    /// this corpus was opened are preserved, not clobbered. Callers
    /// must not already hold the corpus lock (it is not re-entrant).
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the manifest cannot be saved.
    pub fn quarantine(&mut self, entry: QuarantineEntry) -> Result<(), CorpusError> {
        self.quarantine_with(entry, &DiskFs)
    }

    /// [`Corpus::quarantine`] through an explicit [`CommitFs`].
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the manifest cannot be saved.
    pub fn quarantine_with(
        &mut self,
        entry: QuarantineEntry,
        fs: &dyn CommitFs,
    ) -> Result<(), CorpusError> {
        let _lock = CorpusLock::exclusive(&self.dir)?;
        let path = self.dir.join(MANIFEST_FILE);
        if let Ok(disk) = Manifest::load(&path) {
            self.manifest = disk;
        }
        self.manifest.set_quarantine(entry);
        self.manifest.save_with(&path, fs)
    }

    /// Drops any quarantine record for `name` and persists the
    /// manifest (a reload-merge-save transaction under the exclusive
    /// corpus lock, like [`Corpus::quarantine`]). Returns true if a
    /// record was removed.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the manifest cannot be saved.
    pub fn clear_quarantine(&mut self, name: &str) -> Result<bool, CorpusError> {
        let _lock = CorpusLock::exclusive(&self.dir)?;
        let path = self.dir.join(MANIFEST_FILE);
        if let Ok(disk) = Manifest::load(&path) {
            self.manifest = disk;
        }
        if !self.manifest.clear_quarantine(name) {
            return Ok(false);
        }
        self.manifest.save(&path)?;
        Ok(true)
    }

    /// Verifies every stored trace: file present, content hash intact,
    /// full strict decode succeeds, and counts match the manifest.
    ///
    /// Per-trace failures are reported, not returned as errors, so a
    /// damaged trace does not hide the state of the others.
    pub fn verify(&self) -> Vec<VerifyReport> {
        self.entries()
            .iter()
            .map(|e| {
                let detail = self.verify_entry(e);
                VerifyReport {
                    name: e.name.clone(),
                    ok: detail.is_ok(),
                    detail: match detail {
                        Ok(d) | Err(d) => d,
                    },
                }
            })
            .collect()
    }

    fn verify_entry(&self, e: &TraceEntry) -> Result<String, String> {
        let path = self.trace_path(e);
        let bytes =
            std::fs::read(&path).map_err(|err| format!("cannot read {}: {err}", path.display()))?;
        // Collect every problem instead of stopping at the first: a
        // torn final block fails the size check *and* the decode, and
        // the decode's block index + failure class is what tells the
        // operator (and the supervisor) whether the damage is
        // retryable.
        let mut problems = Vec::new();
        if bytes.len() as u64 != e.bytes {
            problems.push(format!(
                "size mismatch: stored {} bytes, manifest says {}",
                bytes.len(),
                e.bytes
            ));
        }
        let hash = content_hash(&bytes);
        if hash != e.hash {
            problems.push(format!(
                "content hash mismatch: stored {hash:016x}, manifest says {:016x}",
                e.hash
            ));
        }
        match ColumnarTraceReader::new(&bytes[..]) {
            Err(err) => problems.push(format!(
                "not a columnar trace [{}]: {err}",
                err.failure_class()
            )),
            Ok(mut reader) => {
                let mut ops = 0u64;
                let mut refs = 0u64;
                let decode_err = loop {
                    match reader.next_op() {
                        Ok(Some(op)) => {
                            ops += 1;
                            refs += u64::from(op.mem_ref().is_some());
                        }
                        Ok(None) => break None,
                        Err(err) => break Some(err),
                    }
                };
                if let Some(err) = decode_err {
                    // Fully decoded blocks so far = 0-based index of
                    // the block the failure is in — the one shared
                    // classifier names it transient or permanent.
                    problems.push(format!(
                        "decode failed in block {} after {ops} ops [{}]: {err}",
                        reader.blocks_decoded(),
                        err.failure_class()
                    ));
                } else {
                    if ops != e.ops || refs != e.refs {
                        problems.push(format!(
                            "count mismatch: decoded {ops} ops / {refs} refs, manifest says {} / {}",
                            e.ops, e.refs
                        ));
                    }
                    let blocks = reader.blocks_decoded();
                    if blocks != e.blocks {
                        problems.push(format!(
                            "block count mismatch: decoded {blocks}, manifest says {}",
                            e.blocks
                        ));
                    }
                }
            }
        }
        if !problems.is_empty() {
            return Err(problems.join("; "));
        }
        Ok(format!(
            "{} ops, {} refs, {} blocks, {} bytes, hash {hash:016x}",
            e.ops, e.refs, e.blocks, e.bytes
        ))
    }
}

/// Streams every record of `source` (any sniffable format) into the
/// columnar writer, returning `(ops, refs)` written.
fn transcode_into<W: Write>(
    source: &Path,
    writer: &mut ColumnarTraceWriter<W>,
) -> Result<(u64, u64), CorpusError> {
    let mut file = File::open(source)
        .map_err(|e| CorpusError::io(format!("opening {}", source.display()), e))?;
    let mut prefix = [0u8; 5];
    let mut got = 0usize;
    while got < prefix.len() {
        match file
            .read(&mut prefix[got..])
            .map_err(|e| CorpusError::io(format!("reading {}", source.display()), e))?
        {
            0 => break,
            n => got += n,
        }
    }
    // Re-open rather than seek so the format-specific readers each see
    // the stream from byte zero (text input may be a pipe-unfriendly
    // special file; plain reopen is the simplest correct move).
    drop(file);
    let file = File::open(source)
        .map_err(|e| CorpusError::io(format!("reopening {}", source.display()), e))?;
    let mut ops = 0u64;
    let mut refs = 0u64;
    let mut push =
        |op: cac_trace::TraceOp, writer: &mut ColumnarTraceWriter<W>| -> Result<(), CorpusError> {
            ops += 1;
            refs += u64::from(op.mem_ref().is_some());
            writer
                .write_op(op)
                .map_err(|e| CorpusError::io("writing columnar block", e))
        };
    match sniff_format(&prefix[..got]) {
        TraceFormat::Text => {
            for op in read_trace(BufReader::new(file)) {
                let op = op.map_err(|e| {
                    CorpusError::io(
                        format!("parsing text trace {}", source.display()),
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
                    )
                })?;
                push(op, writer)?;
            }
        }
        TraceFormat::Binary => {
            let mut reader = cac_trace::io::BinaryTraceReader::new(BufReader::new(file))?;
            while let Some(op) = reader.next_op()? {
                push(op, writer)?;
            }
        }
        TraceFormat::Columnar => {
            let mut reader = ColumnarTraceReader::new(BufReader::new(file))?;
            while let Some(op) = reader.next_op()? {
                push(op, writer)?;
            }
        }
    }
    Ok((ops, refs))
}

pub(crate) fn validate_name(name: &str) -> Result<(), CorpusError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(CorpusError::Manifest(format!(
            "invalid trace name {name:?} (want 1-64 chars of [A-Za-z0-9._-], not starting with '.')"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cac_trace::io::write_trace_columnar;
    use cac_trace::TraceOp;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-corpus-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops(n: u64) -> Vec<TraceOp> {
        (0..n)
            .map(|i| match i % 3 {
                0 => TraceOp::load(0x1000 + 4 * i, 0x8000 + 16 * i, 1, Some(4)),
                1 => TraceOp::store(0x1000 + 4 * i, 0x9000 + 8 * i, 2, None),
                _ => TraceOp::compute(0x1000 + 4 * i, cac_trace::OpClass::IntAlu, 3, [None; 2]),
            })
            .collect()
    }

    #[test]
    fn add_ingests_all_three_formats_identically() {
        let dir = tmp_dir("ingest");
        let ops = sample_ops(5000);

        let text = dir.join("in.txt");
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, ops.iter().copied()).unwrap();
        std::fs::write(&text, w).unwrap();

        let binary = dir.join("in.bin");
        let mut w = Vec::new();
        cac_trace::io::write_trace_binary(&mut w, ops.iter().copied()).unwrap();
        std::fs::write(&binary, w).unwrap();

        let columnar = dir.join("in.col");
        let mut w = Vec::new();
        write_trace_columnar(&mut w, ops.iter().copied()).unwrap();
        std::fs::write(&columnar, w).unwrap();

        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        let h1 = corpus.add("from-text", &text).unwrap().hash;
        let h2 = corpus.add("from-binary", &binary).unwrap().hash;
        let h3 = corpus.add("from-columnar", &columnar).unwrap().hash;
        // Same records => identical stored bytes => identical hashes.
        assert_eq!(h1, h2);
        assert_eq!(h2, h3);
        let entry = corpus.manifest().get("from-text").unwrap();
        assert_eq!(entry.ops, 5000);
        assert_eq!(
            entry.refs,
            ops.iter().filter(|o| o.mem_ref().is_some()).count() as u64
        );
        assert!(entry.blocks >= 1);

        for r in corpus.verify() {
            assert!(r.ok, "{}: {}", r.name, r.detail);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn re_add_with_changed_content_changes_hash() {
        let dir = tmp_dir("re-add");
        let t1 = dir.join("a.txt");
        let t2 = dir.join("b.txt");
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(100)).unwrap();
        std::fs::write(&t1, &w).unwrap();
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(200)).unwrap();
        std::fs::write(&t2, &w).unwrap();

        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        let h1 = corpus.add("t", &t1).unwrap().hash;
        let h2 = corpus.add("t", &t2).unwrap().hash;
        assert_ne!(h1, h2);
        assert_eq!(corpus.entries().len(), 1);

        // Reopen sees the updated entry.
        let reopened = Corpus::open(corpus.dir()).unwrap();
        assert_eq!(reopened.manifest().get("t").unwrap().hash, h2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_flags_tampered_trace() {
        let dir = tmp_dir("verify");
        let t = dir.join("a.txt");
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(3000)).unwrap();
        std::fs::write(&t, &w).unwrap();

        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        let file = corpus.add("t", &t).unwrap().file.clone();
        let path = corpus.dir().join(&file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let reports = corpus.verify();
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].ok);
        assert!(
            reports[0].detail.contains("hash mismatch"),
            "unexpected detail: {}",
            reports[0].detail
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_names_block_and_class_for_torn_final_block() {
        let dir = tmp_dir("torn");
        let t = dir.join("a.txt");
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(30_000)).unwrap();
        std::fs::write(&t, &w).unwrap();

        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        let (blocks, file) = {
            let e = corpus.add("t", &t).unwrap();
            (e.blocks, e.file.clone())
        };
        assert!(blocks >= 2, "need a multi-block trace, got {blocks}");
        let path = corpus.dir().join(&file);
        let bytes = std::fs::read(&path).unwrap();
        // Tear the tail off: the final block (and footer) are gone.
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

        let reports = corpus.verify();
        assert!(!reports[0].ok);
        let d = &reports[0].detail;
        assert!(d.contains("size mismatch"), "{d}");
        assert!(d.contains("decode failed in block "), "{d}");
        assert!(d.contains("[permanent]"), "{d}");
        // The reported index is a real block index of this trace.
        let idx: u64 = d
            .split("decode failed in block ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("block index in detail");
        assert!(
            idx < blocks,
            "index {idx} out of range ({blocks} blocks): {d}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_persists_and_clears_on_re_add() {
        use cac_trace::io::FailureClass;
        let dir = tmp_dir("quarantine");
        let t1 = dir.join("a.txt");
        let t2 = dir.join("b.txt");
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(100)).unwrap();
        std::fs::write(&t1, &w).unwrap();
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(200)).unwrap();
        std::fs::write(&t2, &w).unwrap();

        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        let hash = corpus.add("t", &t1).unwrap().hash;
        corpus
            .quarantine(QuarantineEntry {
                name: "t".into(),
                hash,
                reason: "corrupt block 0".into(),
                class: FailureClass::Permanent,
            })
            .unwrap();
        // Persisted: a reopened corpus still sees it.
        let reopened = Corpus::open(corpus.dir()).unwrap();
        assert_eq!(reopened.quarantined("t").unwrap().reason, "corrupt block 0");

        // Re-adding different content clears the quarantine on disk.
        corpus.add("t", &t2).unwrap();
        assert!(corpus.quarantined("t").is_none());
        let reopened = Corpus::open(corpus.dir()).unwrap();
        assert!(reopened.manifest().quarantine.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn init_twice_is_an_error_but_open_or_init_is_not() {
        let dir = tmp_dir("init");
        let c = dir.join("corpus");
        Corpus::init(&c).unwrap();
        assert!(Corpus::init(&c).is_err());
        assert!(Corpus::open_or_init(&c).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_names_rejected() {
        let dir = tmp_dir("names");
        let t = dir.join("a.txt");
        let mut w = Vec::new();
        cac_trace::io::write_trace(&mut w, sample_ops(10)).unwrap();
        std::fs::write(&t, &w).unwrap();
        let mut corpus = Corpus::init(&dir.join("corpus")).unwrap();
        for bad in ["", "../evil", "a b", ".hidden", "x/y"] {
            assert!(corpus.add(bad, &t).is_err(), "accepted {bad:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

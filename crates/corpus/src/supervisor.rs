//! Fleet-supervision policy types: failure classification, retry
//! schedules, and per-cell budgets.
//!
//! The fleet runner ([`crate::run`]) is a supervisor: every per-trace
//! failure is classified **transient** (worth retrying — I/O faults,
//! lenient-decode skips past the tolerance) or **permanent** (retrying
//! cannot help — structural corruption, config errors, model panics)
//! using the one shared classifier rooted in
//! [`cac_trace::io::BinaryTraceError::failure_class`]. Transient failures are retried
//! on a deterministic jittered backoff schedule; exhausted or permanent
//! failures are journaled as FAILED cells and the trace is quarantined
//! in `corpus.toml` so later runs skip it without replaying anything.

use crate::{content_hash, CorpusError};
use cac_sim::sweep::SweepBudget;
use cac_trace::fault::FaultSpec;
use cac_trace::io::FailureClass;
use std::fmt;

/// Classifies a corpus-level failure with the shared taxonomy: I/O
/// errors are transient, trace-decode errors defer to
/// [`cac_trace::io::BinaryTraceError::failure_class`], and everything
/// else (manifest problems, config/build/journal errors) is permanent.
pub fn classify(err: &CorpusError) -> FailureClass {
    match err {
        CorpusError::Io { .. } => FailureClass::Transient,
        CorpusError::Trace(e) => e.failure_class(),
        CorpusError::Manifest(_) | CorpusError::Sim(_) => FailureClass::Permanent,
    }
}

/// Retry policy for transient failures: how many extra attempts, and a
/// *deterministic* jittered backoff schedule so reruns reproduce the
/// exact same attempt timing.
///
/// The delay before retry `i` (0-based) is
/// `base_ms * 2^i * (0.5 + jitter)` with `jitter ∈ [0, 1)` drawn from a
/// xorshift64* stream seeded by FNV-1a over `(seed, trace key, i)` —
/// a pure function of the policy and the cell, never of wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts after the first try (0 = fail fast).
    pub attempts: u32,
    /// Base backoff delay in milliseconds (0 = retry immediately; the
    /// schedule is still computed and reported for reproducibility).
    pub base_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// The full backoff schedule for one trace: `attempts` delays in
    /// milliseconds, deterministic in `(seed, trace_key)`.
    pub fn schedule(&self, trace_key: &str) -> Vec<u64> {
        (0..self.attempts)
            .map(|i| self.delay_ms(trace_key, i))
            .collect()
    }

    /// The delay in milliseconds before retry `attempt` (0-based).
    pub fn delay_ms(&self, trace_key: &str, attempt: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let mut seed_bytes = Vec::with_capacity(trace_key.len() + 12);
        seed_bytes.extend_from_slice(&self.seed.to_le_bytes());
        seed_bytes.extend_from_slice(trace_key.as_bytes());
        seed_bytes.extend_from_slice(&attempt.to_le_bytes());
        // xorshift64* over the FNV hash; one step is plenty for a
        // jitter fraction.
        let mut x = content_hash(&seed_bytes) | 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let jitter = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(16));
        ((exp as f64) * (0.5 + jitter)) as u64
    }
}

/// A per-cell replay budget, parsed from the CLI's
/// `--cell-budget <N[refs]|Xsecs>` flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellBudget {
    /// Cancel a trace's sweep after this many references
    /// (deterministic; see [`SweepBudget`]).
    Refs(u64),
    /// Cancel after this much wall-clock time (machine-dependent).
    Secs(f64),
}

impl CellBudget {
    /// Parses `"500000"`, `"500000refs"` or `"2.5secs"` (also accepts
    /// the `s`/`sec` suffixes).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed value.
    pub fn parse(s: &str) -> Result<CellBudget, String> {
        let s = s.trim();
        if let Some(n) = s.strip_suffix("refs") {
            return n
                .trim()
                .parse::<u64>()
                .map(CellBudget::Refs)
                .map_err(|_| format!("cell budget `{s}`: `{n}` is not a whole number of refs"));
        }
        for suffix in ["secs", "sec", "s"] {
            if let Some(n) = s.strip_suffix(suffix) {
                return n
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v > 0.0)
                    .map(CellBudget::Secs)
                    .ok_or_else(|| {
                        format!("cell budget `{s}`: `{n}` is not a positive number of seconds")
                    });
            }
        }
        s.parse::<u64>()
            .map(CellBudget::Refs)
            .map_err(|_| format!("cell budget `{s}` wants <N>[refs] or <X>secs"))
    }

    /// The [`SweepBudget`] enforcing this cell budget.
    pub fn to_sweep(self) -> SweepBudget {
        match self {
            CellBudget::Refs(n) => SweepBudget::refs(n),
            CellBudget::Secs(x) => SweepBudget::secs(x),
        }
    }

    /// A canonical tag for journal fingerprints: degraded cells are a
    /// function of the budget, so runs with different budgets must not
    /// share a journal.
    pub fn tag(self) -> String {
        match self {
            CellBudget::Refs(n) => format!("{n}refs"),
            CellBudget::Secs(x) => format!("{x}secs"),
        }
    }
}

impl fmt::Display for CellBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tag())
    }
}

/// A chaos-injection plan: wrap trace streams in a seeded
/// [`FaultSource`](cac_trace::fault::FaultSource) for the first
/// `faulty_attempts` attempts of each trace, then read clean. Letting
/// later attempts succeed is what drives the transient-retry path
/// end-to-end; `faulty_attempts` larger than the retry allowance makes
/// the fault effectively persistent.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The faults to inject.
    pub spec: FaultSpec,
    /// Number of leading attempts (per trace) that see the fault.
    pub faulty_attempts: u32,
    /// Restrict injection to this trace name (`None` = every trace).
    pub trace: Option<String>,
}

impl ChaosPlan {
    /// The fault to apply to `trace` on 0-based `attempt`, if any.
    pub fn fault_for(&self, trace: &str, attempt: u32) -> Option<&FaultSpec> {
        let targeted = self.trace.as_deref().is_none_or(|t| t == trace);
        (targeted && attempt < self.faulty_attempts && !self.spec.is_noop()).then_some(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_uses_shared_taxonomy() {
        use cac_trace::io::BinaryTraceError;
        let io = CorpusError::io(
            "reading trace",
            std::io::Error::new(std::io::ErrorKind::Interrupted, "flaky"),
        );
        assert_eq!(classify(&io), FailureClass::Transient);
        let tr = CorpusError::Trace(BinaryTraceError::Io(std::io::Error::other("disk")));
        assert_eq!(classify(&tr), FailureClass::Transient);
        let corrupt = CorpusError::Trace(BinaryTraceError::BadMagic);
        assert_eq!(classify(&corrupt), FailureClass::Permanent);
        let sim = CorpusError::Sim(cac_core::Error::config("bad ways"));
        assert_eq!(classify(&sim), FailureClass::Permanent);
    }

    #[test]
    fn retry_schedule_is_deterministic_and_jittered() {
        let p = RetryPolicy {
            attempts: 4,
            base_ms: 100,
            seed: 7,
        };
        let a = p.schedule("go@00000000deadbeef");
        let b = p.schedule("go@00000000deadbeef");
        assert_eq!(a, b, "same policy + key => same schedule");
        assert_eq!(a.len(), 4);
        // Exponential envelope: delay i sits in [base*2^i/2, base*2^i*1.5).
        for (i, &d) in a.iter().enumerate() {
            let exp = 100u64 << i;
            assert!(d >= exp / 2 && d < exp + exp / 2, "delay {i} = {d}");
        }
        // A different trace key jitters differently somewhere.
        let c = p.schedule("gcc@0123456789abcdef");
        assert_ne!(a, c);
        // base 0 = no sleeping at all.
        let zero = RetryPolicy {
            attempts: 3,
            base_ms: 0,
            seed: 7,
        };
        assert_eq!(zero.schedule("x"), vec![0, 0, 0]);
    }

    #[test]
    fn cell_budget_parses_both_units() {
        assert_eq!(CellBudget::parse("500000"), Ok(CellBudget::Refs(500_000)));
        assert_eq!(CellBudget::parse("10refs"), Ok(CellBudget::Refs(10)));
        assert_eq!(CellBudget::parse(" 2.5secs "), Ok(CellBudget::Secs(2.5)));
        assert_eq!(CellBudget::parse("3s"), Ok(CellBudget::Secs(3.0)));
        assert!(CellBudget::parse("").is_err());
        assert!(CellBudget::parse("fast").is_err());
        assert!(CellBudget::parse("-1secs").is_err());
        assert_eq!(CellBudget::Refs(10).tag(), "10refs");
        assert_eq!(CellBudget::Refs(10).to_sweep(), SweepBudget::refs(10));
        assert_eq!(CellBudget::Secs(2.0).to_sweep(), SweepBudget::secs(2.0));
    }

    #[test]
    fn chaos_plan_targets_leading_attempts() {
        let plan = ChaosPlan {
            spec: FaultSpec {
                flip_ppm: 100,
                ..FaultSpec::default()
            },
            faulty_attempts: 2,
            trace: Some("bad".into()),
        };
        assert!(plan.fault_for("bad", 0).is_some());
        assert!(plan.fault_for("bad", 1).is_some());
        assert!(plan.fault_for("bad", 2).is_none());
        assert!(plan.fault_for("healthy", 0).is_none());
        let all = ChaosPlan {
            trace: None,
            ..plan.clone()
        };
        assert!(all.fault_for("healthy", 0).is_some());
        // A no-op spec never injects.
        let noop = ChaosPlan {
            spec: FaultSpec::default(),
            faulty_attempts: 9,
            trace: None,
        };
        assert!(noop.fault_for("x", 0).is_none());
    }
}

//! Property-based tests for the scientific address patterns.

use cac_trace::patterns::{CsrSpmv, FftButterfly, Stencil5, TiledMatMul};
use proptest::prelude::*;

proptest! {
    /// Every FFT stage touches each element exactly once as a load and
    /// once as a store, and partners are exactly `2^s` elements apart.
    #[test]
    fn fft_stage_structure(log2_n in 2u32..11, elem_log in 2u32..5) {
        let elem = 1u64 << elem_log;
        let fft = FftButterfly::new(0x8000, log2_n, elem);
        for s in 0..log2_n {
            let refs: Vec<_> = fft.stage(s).collect();
            prop_assert_eq!(refs.len() as u64, fft.n() * 2);
            let mut loads = std::collections::HashSet::new();
            let mut stores = std::collections::HashSet::new();
            for quad in refs.chunks(4) {
                prop_assert_eq!(quad[1].addr - quad[0].addr, elem << s);
                prop_assert_eq!(quad[0].addr, quad[2].addr);
                prop_assert_eq!(quad[1].addr, quad[3].addr);
                for r in &quad[..2] {
                    prop_assert!(loads.insert(r.addr), "duplicate load");
                }
                for r in &quad[2..] {
                    prop_assert!(stores.insert(r.addr), "duplicate store");
                }
            }
            prop_assert_eq!(loads.len() as u64, fft.n());
        }
    }

    /// The bit-reversal pass swaps each non-palindromic pair exactly once
    /// and never touches fixed points.
    #[test]
    fn fft_bit_reversal_is_an_involution(log2_n in 2u32..12) {
        let fft = FftButterfly::new(0, log2_n, 16);
        let mut seen = std::collections::HashSet::new();
        for r in fft.bit_reversal().filter(|r| !r.is_write) {
            let idx = r.addr / 16;
            prop_assert!(seen.insert(idx), "element touched twice");
            let rev = idx.reverse_bits() >> (64 - log2_n);
            prop_assert_ne!(idx, rev, "fixed point must not be swapped");
        }
        // Loads come in (i, rev i) pairs: even count.
        prop_assert_eq!(seen.len() % 2, 0);
    }

    /// Stencil sweeps stay inside the two grids and have the exact
    /// interior-point count.
    #[test]
    fn stencil_bounds_and_count(
        rows in 3u64..40,
        cols in 3u64..40,
        pitch_log in 8u32..14,
    ) {
        let pitch = 1u64 << pitch_log;
        prop_assume!(pitch >= cols * 8);
        let st = Stencil5::new(0x1000, rows, cols, pitch, 8);
        let refs: Vec<_> = st.sweep().collect();
        prop_assert_eq!(refs.len() as u64, (rows - 2) * (cols - 2) * 6);
        let end = 0x1000 + 2 * rows * pitch;
        for r in &refs {
            prop_assert!(r.addr >= 0x1000 && r.addr < end, "{:#x}", r.addr);
        }
        prop_assert_eq!(
            refs.iter().filter(|r| r.is_write).count() as u64,
            (rows - 2) * (cols - 2)
        );
    }

    /// SpMV gathers stay inside `x` and the stream shape is exact.
    #[test]
    fn spmv_shape(rows in 1u64..64, nnz in 1u64..16, x_log in 4u32..12, seed in any::<u64>()) {
        let x_len = 1u64 << x_log;
        let spmv = CsrSpmv::new(rows, nnz, x_len, seed);
        let refs: Vec<_> = spmv.product().collect();
        prop_assert_eq!(refs.len() as u64, rows * (2 + 3 * nnz));
        prop_assert_eq!(refs.iter().filter(|r| r.is_write).count() as u64, rows);
        for r in refs.iter().filter(|r| (0x3000_0000..0x4000_0000).contains(&r.addr)) {
            prop_assert!(r.addr < 0x3000_0000 + x_len * 8);
        }
    }

    /// The tiled-matmul block row touches only the three matrices, stores
    /// only to C, and its length follows the tile algebra.
    #[test]
    fn matmul_block_row_shape(
        n_log in 3u32..8,
        tile_log in 2u32..6,
        pad in 0u64..3,
    ) {
        let n = 1u64 << n_log;
        let tile = (1u64 << tile_log).min(n);
        let pitch = (n + pad * 8) * 8;
        let mm = TiledMatMul::new(n, tile, pitch);
        let tiles = n / tile;
        let mut count = 0u64;
        let c_base = 2 * n * pitch;
        let end = 3 * n * pitch;
        for r in mm.block_row() {
            count += 1;
            prop_assert!(r.addr < end);
            if r.is_write {
                prop_assert!(r.addr >= c_base, "stores go to C only");
            }
        }
        prop_assert_eq!(count, tiles * tiles * tile * tile * tile * 4);
    }
}

//! Property-based tests for the columnar (v3) trace codec: arbitrary
//! op sequences round-trip record-identically with the row (v2) codec,
//! damaged streams are skipped with exact accounting rather than
//! misdecoded, and seeded fault injection composes with the reader.

use cac_trace::fault::{FaultSource, FaultSpec};
use cac_trace::io::{
    sniff_format, write_trace_binary, write_trace_columnar, BinaryTraceError, BinaryTraceReader,
    ColumnarFile, ColumnarTraceReader, TraceFormat, COL_BLOCK_RECORDS, HEADER_LEN,
};
use cac_trace::{MemRef, OpClass, TraceOp};
use proptest::prelude::*;
use std::io::Cursor;

/// Strategy for one arbitrary (but structurally valid) trace op.
fn arb_op() -> impl Strategy<Value = TraceOp> {
    let reg = prop_oneof![Just(None), (0u8..64).prop_map(Some)];
    (
        any::<u64>(),  // pc
        any::<u64>(),  // addr / target
        0u8..64,       // mandatory register
        reg,           // optional register
        any::<bool>(), // taken / spare
        0usize..10,    // kind selector
    )
        .prop_map(|(pc, addr, r1, r2, flag, kind)| match kind {
            0..=2 => TraceOp::load(pc, addr, r1, r2),
            3 | 4 => TraceOp::store(pc, addr, r1, r2),
            5 | 6 => TraceOp::branch(pc, flag, addr, r2),
            7 => TraceOp::compute(pc, OpClass::IntAlu, r1, [r2, None]),
            8 => TraceOp::compute(pc, OpClass::FpMul, r1, [r2, Some(r1)]),
            _ => TraceOp::compute(pc, OpClass::IntDiv, r1, [None, r2]),
        })
}

/// Drains a reader's ref stream chunk by chunk into `refs`.
fn drain(
    refs: &mut Vec<MemRef>,
    chunk: usize,
    mut f: impl FnMut(&mut Vec<MemRef>, usize) -> usize,
) {
    let mut buf = Vec::new();
    while f(&mut buf, chunk) > 0 {
        refs.extend_from_slice(&buf);
    }
}

proptest! {
    /// in-memory → columnar → in-memory is the identity, and the v2
    /// and v3 encodings of the same ops decode record-identically.
    #[test]
    fn v2_v3_record_identical(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let v2 = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let v3 = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        prop_assert_eq!(sniff_format(&v3), TraceFormat::Columnar);
        let from_v2: Vec<TraceOp> =
            BinaryTraceReader::new(&v2[..]).unwrap().map(Result::unwrap).collect();
        let from_v3: Vec<TraceOp> =
            ColumnarTraceReader::new(&v3[..]).unwrap().map(Result::unwrap).collect();
        prop_assert_eq!(&from_v3, &ops);
        prop_assert_eq!(from_v2, from_v3);
    }

    /// The reference projections of the two formats agree chunk for
    /// chunk, whatever the chunk size.
    #[test]
    fn v2_v3_ref_streams_identical(
        ops in proptest::collection::vec(arb_op(), 0..300),
        chunk in 1usize..200,
    ) {
        let v2 = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let v3 = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let mut r2 = BinaryTraceReader::new(&v2[..]).unwrap();
        let mut refs2 = Vec::new();
        drain(&mut refs2, chunk, |b, n| r2.read_ref_chunk(b, n).unwrap());
        let mut r3 = ColumnarTraceReader::new(&v3[..]).unwrap();
        let mut refs3 = Vec::new();
        drain(&mut refs3, chunk, |b, n| r3.read_ref_chunk(b, n).unwrap());
        let expect: Vec<MemRef> = ops.iter().filter_map(TraceOp::mem_ref).collect();
        prop_assert_eq!(&refs2, &expect);
        prop_assert_eq!(refs3, expect);
    }

    /// Truncating a columnar stream anywhere never misdecodes: strict
    /// mode always errors (the index is missing), and whatever lenient
    /// mode delivers is a prefix of the clean record stream.
    #[test]
    fn truncation_never_misdecodes(
        ops in proptest::collection::vec(arb_op(), 1..100),
        cut_permille in 0u64..1000,
    ) {
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let cut = HEADER_LEN + ((bytes.len() - 1 - HEADER_LEN) as u64 * cut_permille / 1000) as usize;
        let results: Vec<_> = ColumnarTraceReader::new(&bytes[..cut]).unwrap().collect();
        let decoded: Vec<TraceOp> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .copied()
            .collect();
        prop_assert!(decoded.len() <= ops.len());
        prop_assert_eq!(&decoded[..], &ops[..decoded.len()]);
        // Unlike v2, *every* cut is detected — the index never arrives.
        prop_assert!(
            matches!(
                results.last(),
                Some(Err(BinaryTraceError::Truncated { .. } | BinaryTraceError::Corrupt { .. }))
            ),
            "cut at {} went undetected", cut
        );

        let mut lenient = ColumnarTraceReader::new_lenient(&bytes[..cut]).unwrap();
        let relaxed: Vec<TraceOp> = (&mut lenient).map(Result::unwrap).collect();
        prop_assert_eq!(&relaxed[..], &ops[..relaxed.len()]);
        prop_assert!(lenient.skipped().any(), "cut at {} left no tally", cut);
    }

    /// Under seeded bit-flip injection the lenient reader (a) never
    /// fails the stream, (b) never fabricates records, and (c) resyncs
    /// at block granularity: every delivered record is genuine and in
    /// stream order.
    #[test]
    fn fault_source_composes_with_v3(
        seed in 0u64..500,
        flip_ppm in 50u32..400,
    ) {
        use cac_trace::SpecBenchmark;
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(seed).take(20_000).collect();
        let clean = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let spec = FaultSpec { seed, flip_ppm, ..FaultSpec::default() };
        // Compose the fault injector *under* the columnar reader, the
        // way `cac trace gen --inject` stages damage.
        let mut damaged = Vec::new();
        std::io::Read::read_to_end(
            &mut FaultSource::new(&clean[..], spec),
            &mut damaged,
        ).unwrap();
        damaged[..HEADER_LEN].copy_from_slice(&clean[..HEADER_LEN]);

        let mut reader = ColumnarTraceReader::new_lenient(&damaged[..]).unwrap();
        let decoded: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        let skip = reader.skipped();
        prop_assert!(decoded.len() <= ops.len());
        prop_assert!(reader.ops_decoded() <= ops.len() as u64);
        if skip.blocks == 0 {
            prop_assert_eq!(&decoded, &ops);
        }
        // Delivered records appear in the original stream, in order.
        let mut it = ops.iter();
        for op in &decoded {
            prop_assert!(it.any(|o| o == op), "fabricated record {:?}", op);
        }
    }

    /// Payload-confined damage (headers and index left alone) gives
    /// exact skip accounting: decoded + skipped == written, and the
    /// reader resynchronizes at exactly the next indexed block.
    #[test]
    fn payload_damage_accounting_is_exact(seed in 0u64..300) {
        use cac_trace::SpecBenchmark;
        let n = 3 * COL_BLOCK_RECORDS + 100;
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(seed).take(n).collect();
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        // Locate blocks through the trailing index, then flip one
        // payload byte per block on a seeded coin toss.
        let file = ColumnarFile::open(Cursor::new(bytes.clone())).unwrap();
        let entries: Vec<_> = file.entries().to_vec();
        let mut damaged = bytes.clone();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17; state
        };
        let mut expect_lost_records = 0u64;
        let mut expect_lost_blocks = 0u64;
        let mut surviving = Vec::new();
        let mut at = 0usize;
        for e in &entries {
            let hit = next() % 2 == 0;
            if hit {
                let payload_at = e.offset as usize + 20 + (next() as usize % 64);
                damaged[payload_at] ^= 1 << (next() % 8);
                expect_lost_records += u64::from(e.records);
                expect_lost_blocks += 1;
            } else {
                surviving.extend_from_slice(&ops[at..at + e.records as usize]);
            }
            at += e.records as usize;
        }
        let mut reader = ColumnarTraceReader::new_lenient(&damaged[..]).unwrap();
        let decoded: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        let skip = reader.skipped();
        prop_assert_eq!(skip.blocks, expect_lost_blocks);
        prop_assert_eq!(skip.records, expect_lost_records);
        prop_assert_eq!(decoded, surviving);
        prop_assert_eq!(reader.index_entries(), entries.len() as u64);
    }

    /// O(1) block access agrees with the streaming decode for every
    /// block, in arbitrary visit order.
    #[test]
    fn indexed_reads_match_streaming(seed in 0u64..200, visit in any::<u64>()) {
        use cac_trace::SpecBenchmark;
        let n = 2 * COL_BLOCK_RECORDS + 700;
        let ops: Vec<TraceOp> = SpecBenchmark::Hydro2d.generator(seed).take(n).collect();
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let mut file = ColumnarFile::open(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(file.records(), ops.len() as u64);
        let blocks = file.block_count();
        for i in 0..blocks {
            // Arbitrary-order visits: permute by the seed.
            let b = (i + (visit as usize % blocks.max(1))) % blocks;
            let got = file.read_block(b).unwrap();
            let lo = b * COL_BLOCK_RECORDS;
            let hi = (lo + COL_BLOCK_RECORDS).min(ops.len());
            prop_assert_eq!(got, &ops[lo..hi]);
        }
    }
}

/// A truncated stream fed through `FaultSource` (truncate + flip
/// composed) still never misdecodes through the chunked ref path.
#[test]
fn composed_truncate_and_flip_never_misdecode() {
    use cac_trace::SpecBenchmark;
    let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(11).take(30_000).collect();
    let clean = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
    let clean_refs: Vec<MemRef> = ops.iter().filter_map(TraceOp::mem_ref).collect();
    for seed in 0..20u64 {
        let spec = FaultSpec {
            seed,
            flip_ppm: 120,
            truncate_at: Some(clean.len() as u64 * (seed + 70) / 100),
            ..FaultSpec::default()
        };
        let mut damaged = Vec::new();
        std::io::Read::read_to_end(&mut FaultSource::new(&clean[..], spec), &mut damaged).unwrap();
        let head = HEADER_LEN.min(damaged.len());
        damaged[..head].copy_from_slice(&clean[..head]);
        let mut reader = ColumnarTraceReader::new_lenient(&damaged[..]).unwrap();
        let mut refs: Vec<MemRef> = Vec::new();
        let mut buf = Vec::new();
        while reader.read_ref_chunk(&mut buf, 4096).unwrap() > 0 {
            refs.extend_from_slice(&buf);
        }
        // Damage plus truncation must be tallied, and every delivered
        // reference must be genuine (in-order subsequence).
        assert!(reader.skipped().any(), "seed {seed}: no tally");
        let mut it = clean_refs.iter();
        for r in &refs {
            assert!(it.any(|c| c == r), "seed {seed}: fabricated ref {r:?}");
        }
    }
}

//! Property-based tests for the trace codecs: arbitrary op sequences
//! survive text ↔ binary ↔ in-memory round trips, and structurally
//! damaged binary streams are rejected rather than misdecoded.

use cac_trace::fault::{FaultSource, FaultSpec};
use cac_trace::io::{
    read_trace, sniff_format, write_trace, write_trace_binary, BinaryTraceError, BinaryTraceReader,
    TraceFormat, HEADER_LEN,
};
use cac_trace::{MemRef, OpClass, TraceOp};
use proptest::prelude::*;

/// Strategy for one arbitrary (but structurally valid) trace op.
fn arb_op() -> impl Strategy<Value = TraceOp> {
    let reg = prop_oneof![Just(None), (0u8..64).prop_map(Some)];
    (
        any::<u64>(),  // pc
        any::<u64>(),  // addr / target
        0u8..64,       // mandatory register
        reg,           // optional register
        any::<bool>(), // taken / spare
        0usize..10,    // kind selector
    )
        .prop_map(|(pc, addr, r1, r2, flag, kind)| match kind {
            0..=2 => TraceOp::load(pc, addr, r1, r2),
            3 | 4 => TraceOp::store(pc, addr, r1, r2),
            5 | 6 => TraceOp::branch(pc, flag, addr, r2),
            7 => TraceOp::compute(pc, OpClass::IntAlu, r1, [r2, None]),
            8 => TraceOp::compute(pc, OpClass::FpMul, r1, [r2, Some(r1)]),
            _ => TraceOp::compute(pc, OpClass::IntDiv, r1, [None, r2]),
        })
}

proptest! {
    /// in-memory → binary → in-memory is the identity.
    #[test]
    fn binary_round_trip(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        prop_assert_eq!(sniff_format(&bytes), TraceFormat::Binary);
        let back: Result<Vec<TraceOp>, _> =
            BinaryTraceReader::new(&bytes[..]).unwrap().collect();
        prop_assert_eq!(back.unwrap(), ops);
    }

    /// in-memory → text → binary → text → in-memory is the identity:
    /// the two formats encode exactly the same information.
    #[test]
    fn text_binary_text_round_trip(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut text = Vec::new();
        write_trace(&mut text, ops.iter().copied()).unwrap();
        let from_text: Vec<TraceOp> =
            read_trace(&text[..]).map(Result::unwrap).collect();
        prop_assert_eq!(&from_text, &ops);

        let bytes = write_trace_binary(Vec::new(), from_text.iter().copied()).unwrap();
        let from_binary: Vec<TraceOp> =
            BinaryTraceReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        prop_assert_eq!(&from_binary, &ops);

        let mut text2 = Vec::new();
        write_trace(&mut text2, from_binary.iter().copied()).unwrap();
        prop_assert_eq!(text, text2);
    }

    /// Truncating a valid stream anywhere either yields a clean prefix
    /// (cut on a record boundary) or ends with exactly one
    /// `Truncated` error — never garbage ops beyond the damage point.
    #[test]
    fn truncation_never_misdecodes(
        ops in proptest::collection::vec(arb_op(), 1..100),
        cut_permille in 0u64..1000,
    ) {
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let cut = HEADER_LEN + ((bytes.len() - HEADER_LEN) as u64 * cut_permille / 1000) as usize;
        let results: Vec<_> = BinaryTraceReader::new(&bytes[..cut]).unwrap().collect();
        let decoded: Vec<TraceOp> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .copied()
            .collect();
        // Decoded prefix must be a prefix of the original ops.
        prop_assert!(decoded.len() <= ops.len());
        prop_assert_eq!(&decoded[..], &ops[..decoded.len()]);
        if let Some(Err(e)) = results.last() {
            prop_assert!(matches!(e, BinaryTraceError::Truncated { .. }), "{}", e);
        }
    }

    /// Truncating a valid stream anywhere never misdecodes through the
    /// chunked and fused ref paths either: whatever they deliver is a
    /// prefix of the clean stream's reference projection.
    #[test]
    fn truncation_never_misdecodes_ref_paths(
        ops in proptest::collection::vec(arb_op(), 1..100),
        cut_permille in 0u64..1000,
        chunk in 1usize..200,
    ) {
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let clean_refs: Vec<MemRef> = ops.iter().filter_map(TraceOp::mem_ref).collect();
        let cut = HEADER_LEN + ((bytes.len() - HEADER_LEN) as u64 * cut_permille / 1000) as usize;

        // Chunked ref path.
        let mut reader = BinaryTraceReader::new(&bytes[..cut]).unwrap();
        let mut buf = Vec::new();
        let mut refs = Vec::new();
        let err = loop {
            match reader.read_ref_chunk(&mut buf, chunk) {
                Ok(0) => break None,
                Ok(_) => refs.extend_from_slice(&buf),
                Err(e) => { refs.extend_from_slice(&buf); break Some(e) }
            }
        };
        prop_assert!(refs.len() <= clean_refs.len());
        prop_assert_eq!(&refs[..], &clean_refs[..refs.len()]);
        if let Some(ref e) = err {
            prop_assert!(matches!(e, BinaryTraceError::Truncated { .. }), "{}", e);
        }

        // Fused path agrees with the chunked path exactly.
        let mut fused = Vec::new();
        let fused_err = BinaryTraceReader::new(&bytes[..cut])
            .unwrap()
            .for_each_ref(|r| fused.push(r))
            .err();
        prop_assert_eq!(&fused, &refs);
        prop_assert_eq!(fused_err.is_some(), err.is_some());
    }

    /// Lenient mode on a clean stream is exactly strict mode: same
    /// ops, nothing skipped — it never misdecodes a clean block.
    #[test]
    fn lenient_matches_strict_on_clean_input(
        ops in proptest::collection::vec(arb_op(), 0..300),
    ) {
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut reader = BinaryTraceReader::new_lenient(&bytes[..]).unwrap();
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        prop_assert_eq!(back, ops);
        prop_assert!(!reader.skipped().any());
    }

    /// Under seeded bit-flip injection, lenient decode (a) never
    /// fails the stream, (b) accounts for every record exactly —
    /// decoded + header-claimed-skipped = written, whenever every
    /// damaged region left its block header intact — and (c) never
    /// fabricates more records than were written.
    #[test]
    fn lenient_skip_counts_are_exact_under_fault_injection(
        seed in 0u64..1000,
        flip_ppm in 50u32..400,
    ) {
        use cac_trace::SpecBenchmark;
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(seed).take(40_000).collect();
        let clean = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let spec = FaultSpec { seed, flip_ppm, ..FaultSpec::default() };
        let mut damaged = Vec::new();
        std::io::Read::read_to_end(
            &mut FaultSource::new(&clean[..], spec),
            &mut damaged,
        ).unwrap();
        // Keep the 8-byte file header intact: lenient mode still
        // requires an identifiable file.
        damaged[..HEADER_LEN].copy_from_slice(&clean[..HEADER_LEN]);

        let mut reader = BinaryTraceReader::new_lenient(&damaged[..]).unwrap();
        let mut decoded = 0u64;
        let mut buf = Vec::new();
        while reader.read_ref_chunk(&mut buf, 4096).unwrap() > 0 {
            decoded += buf.len() as u64;
        }
        let skip = reader.skipped();
        let total_mem = ops.iter().filter(|o| o.mem_ref().is_some()).count() as u64;
        // Never fabricates records beyond the clean stream's content.
        prop_assert!(decoded <= total_mem);
        prop_assert!(reader.ops_decoded() <= ops.len() as u64);
        // If nothing needed skipping, the decode was complete; if
        // something was lost, the tally says so. (Exact per-record
        // accounting under payload-confined damage is proven by
        // `payload_damage_accounting_is_exact`; a flipped *header*
        // byte can forge the claimed record count, so only block/byte
        // tallies are meaningful here.)
        if skip.blocks == 0 {
            prop_assert_eq!(decoded, total_mem);
            prop_assert_eq!(reader.ops_decoded(), ops.len() as u64);
        } else {
            prop_assert!(skip.bytes > 0 || skip.records > 0);
        }
    }

    /// Payload-confined damage (block headers left alone) gives exact
    /// record accounting: decoded + skipped == written.
    #[test]
    fn payload_damage_accounting_is_exact(seed in 0u64..500) {
        use cac_trace::SpecBenchmark;
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(seed).take(40_000).collect();
        let mut bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        // Walk the block structure and flip one payload byte per block
        // on a seeded coin toss, never touching headers.
        let mut pos = HEADER_LEN;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
        while pos + 16 <= bytes.len() {
            let payload = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
            if next() % 2 == 0 && payload > 0 {
                let off = pos + 16 + (next() as usize % payload);
                bytes[off] ^= 1 << (next() % 8);
            }
            pos += 16 + payload;
        }
        let mut reader = BinaryTraceReader::new_lenient(&bytes[..]).unwrap();
        let decoded: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        let skip = reader.skipped();
        prop_assert_eq!(
            decoded.len() as u64 + skip.records,
            ops.len() as u64,
            "blocks skipped: {}", skip.blocks
        );
        // Decoded records are genuine: each surviving block's run
        // matches the original stream (checked as subsequence).
        let mut it = ops.iter();
        for op in &decoded {
            prop_assert!(it.any(|o| o == op), "fabricated record {:?}", op);
        }
    }

    /// A flipped version byte is always rejected at open.
    #[test]
    fn wrong_version_rejected(ops in proptest::collection::vec(arb_op(), 0..20), v in 3u8..255) {
        let mut bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        bytes[4] = v;
        prop_assert!(matches!(
            BinaryTraceReader::new(&bytes[..]),
            Err(BinaryTraceError::UnsupportedVersion(got)) if got == v
        ));
    }

    /// Any corruption of the magic is rejected as a foreign stream.
    #[test]
    fn corrupt_magic_rejected(byte in 0usize..4, xor in 1u16..256) {
        let mut bytes = write_trace_binary(Vec::new(), std::iter::empty()).unwrap();
        bytes[byte] ^= xor as u8;
        prop_assert!(matches!(
            BinaryTraceReader::new(&bytes[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        prop_assert_eq!(sniff_format(&bytes), TraceFormat::Text);
    }
}

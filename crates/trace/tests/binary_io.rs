//! Property-based tests for the trace codecs: arbitrary op sequences
//! survive text ↔ binary ↔ in-memory round trips, and structurally
//! damaged binary streams are rejected rather than misdecoded.

use cac_trace::io::{
    read_trace, sniff_format, write_trace, write_trace_binary, BinaryTraceError, BinaryTraceReader,
    TraceFormat, HEADER_LEN,
};
use cac_trace::{OpClass, TraceOp};
use proptest::prelude::*;

/// Strategy for one arbitrary (but structurally valid) trace op.
fn arb_op() -> impl Strategy<Value = TraceOp> {
    let reg = prop_oneof![Just(None), (0u8..64).prop_map(Some)];
    (
        any::<u64>(),  // pc
        any::<u64>(),  // addr / target
        0u8..64,       // mandatory register
        reg,           // optional register
        any::<bool>(), // taken / spare
        0usize..10,    // kind selector
    )
        .prop_map(|(pc, addr, r1, r2, flag, kind)| match kind {
            0..=2 => TraceOp::load(pc, addr, r1, r2),
            3 | 4 => TraceOp::store(pc, addr, r1, r2),
            5 | 6 => TraceOp::branch(pc, flag, addr, r2),
            7 => TraceOp::compute(pc, OpClass::IntAlu, r1, [r2, None]),
            8 => TraceOp::compute(pc, OpClass::FpMul, r1, [r2, Some(r1)]),
            _ => TraceOp::compute(pc, OpClass::IntDiv, r1, [None, r2]),
        })
}

proptest! {
    /// in-memory → binary → in-memory is the identity.
    #[test]
    fn binary_round_trip(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        prop_assert_eq!(sniff_format(&bytes), TraceFormat::Binary);
        let back: Result<Vec<TraceOp>, _> =
            BinaryTraceReader::new(&bytes[..]).unwrap().collect();
        prop_assert_eq!(back.unwrap(), ops);
    }

    /// in-memory → text → binary → text → in-memory is the identity:
    /// the two formats encode exactly the same information.
    #[test]
    fn text_binary_text_round_trip(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut text = Vec::new();
        write_trace(&mut text, ops.iter().copied()).unwrap();
        let from_text: Vec<TraceOp> =
            read_trace(&text[..]).map(Result::unwrap).collect();
        prop_assert_eq!(&from_text, &ops);

        let bytes = write_trace_binary(Vec::new(), from_text.iter().copied()).unwrap();
        let from_binary: Vec<TraceOp> =
            BinaryTraceReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        prop_assert_eq!(&from_binary, &ops);

        let mut text2 = Vec::new();
        write_trace(&mut text2, from_binary.iter().copied()).unwrap();
        prop_assert_eq!(text, text2);
    }

    /// Truncating a valid stream anywhere either yields a clean prefix
    /// (cut on a record boundary) or ends with exactly one
    /// `Truncated` error — never garbage ops beyond the damage point.
    #[test]
    fn truncation_never_misdecodes(
        ops in proptest::collection::vec(arb_op(), 1..100),
        cut_permille in 0u64..1000,
    ) {
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let cut = HEADER_LEN + ((bytes.len() - HEADER_LEN) as u64 * cut_permille / 1000) as usize;
        let results: Vec<_> = BinaryTraceReader::new(&bytes[..cut]).unwrap().collect();
        let decoded: Vec<TraceOp> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .copied()
            .collect();
        // Decoded prefix must be a prefix of the original ops.
        prop_assert!(decoded.len() <= ops.len());
        prop_assert_eq!(&decoded[..], &ops[..decoded.len()]);
        if let Some(Err(e)) = results.last() {
            prop_assert!(matches!(e, BinaryTraceError::Truncated { .. }), "{}", e);
        }
    }

    /// A flipped version byte is always rejected at open.
    #[test]
    fn wrong_version_rejected(ops in proptest::collection::vec(arb_op(), 0..20), v in 2u8..255) {
        let mut bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        bytes[4] = v;
        prop_assert!(matches!(
            BinaryTraceReader::new(&bytes[..]),
            Err(BinaryTraceError::UnsupportedVersion(got)) if got == v
        ));
    }

    /// Any corruption of the magic is rejected as a foreign stream.
    #[test]
    fn corrupt_magic_rejected(byte in 0usize..4, xor in 1u16..256) {
        let mut bytes = write_trace_binary(Vec::new(), std::iter::empty()).unwrap();
        bytes[byte] ^= xor as u8;
        prop_assert!(matches!(
            BinaryTraceReader::new(&bytes[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        prop_assert_eq!(sniff_format(&bytes), TraceFormat::Text);
    }
}

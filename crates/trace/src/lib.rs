//! Trace and workload generation for the conflict-avoiding-cache
//! reproduction.
//!
//! The paper evaluates with SPEC95 traces (100M instructions per program
//! after a 2000M warm-up skip). Those traces are not redistributable, so
//! this crate provides **synthetic workload models**: parameterised loop
//! nests whose memory behaviour is tuned to reproduce the *shape* of the
//! paper's per-benchmark miss ratios — in particular the catastrophic
//! power-of-two column strides of `tomcatv`, `swim` and `wave5` that
//! I-Poly indexing eliminates. See `DESIGN.md` (Substitutions) for the
//! rationale.
//!
//! * [`record`] — instruction/memory record types ([`TraceOp`], [`MemRef`]).
//! * [`io`] — trace serialization: a line-oriented text interchange
//!   format and a compact varint/delta binary format, both with writers
//!   and streaming readers, so externally captured traces (the paper's
//!   original methodology) can replace the synthetic models and replay
//!   at batched-simulation speed.
//! * [`fault`] — seeded fault injection (bit flips, truncation, I/O
//!   errors) for proving the lenient decode and recovery paths work.
//! * [`stride`] — the Figure 1 stride-sweep trace (64-element vector,
//!   strides 1..4096).
//! * [`kernels`] — composable loop-nest generator: strided array sweeps,
//!   column walks, random working sets, pointer chases, with synthetic
//!   register dependences and branches.
//! * [`patterns`] — classic scientific address patterns (FFT butterflies,
//!   stencils, CSR SpMV, tiled matmul) for the conclusion's claims about
//!   regular codes and tiling.
//! * [`spec`] — the 18 named SPEC95 workload models used by Tables 2–3.
//!
//! # Example
//!
//! ```
//! use cac_trace::spec::SpecBenchmark;
//!
//! let mut gen = SpecBenchmark::Tomcatv.generator(42);
//! let ops: Vec<_> = (&mut gen).take(1000).collect();
//! assert_eq!(ops.len(), 1000);
//! assert!(ops.iter().any(|op| op.is_load()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod io;
pub mod kernels;
pub mod patterns;
pub mod record;
pub mod spec;
pub mod stride;

pub use kernels::{ArrayWalk, LoopKernel};
pub use record::{MemRef, OpClass, TraceOp};
pub use spec::SpecBenchmark;

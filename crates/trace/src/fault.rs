//! Deterministic fault injection for robustness testing.
//!
//! The lenient decode mode, the panic-isolated sweep engine and the
//! checkpoint journal all claim to *recover* from damage. Claims about
//! recovery need a reproducible way to produce damage: this module
//! wraps any byte stream ([`FaultSource`]) or op stream
//! ([`FaultChunkSource`]) and injects faults at seeded, configurable
//! rates — the same seed always damages the same bytes, so a failing
//! case is a one-line reproduction (`cac trace gen --inject ...`).
//!
//! Three fault classes cover the realistic failure modes of captured
//! trace files:
//!
//! * **bit flips** (storage/transfer corruption) at a parts-per-million
//!   rate over the byte stream;
//! * **truncation** (a killed capture run) at a fixed byte offset;
//! * **I/O errors** (a flaky mount) raised once at a fixed byte offset.
//!
//! # Example
//!
//! ```
//! use cac_trace::fault::{FaultSource, FaultSpec};
//! use std::io::Read;
//!
//! let clean = vec![0u8; 100_000];
//! let spec = FaultSpec::parse("flip=100,seed=7").unwrap();
//! let mut damaged = Vec::new();
//! let mut src = FaultSource::new(&clean[..], spec);
//! src.read_to_end(&mut damaged).unwrap();
//! assert_eq!(damaged.len(), clean.len());
//! assert!(src.flips() > 0);
//! assert_ne!(damaged, clean);
//! ```

use crate::io::ChunkSource;
use crate::record::TraceOp;
use std::io::{self, Read};

/// What faults to inject, and where. Built directly or parsed from the
/// CLI's compact `k=v` list by [`FaultSpec::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// PRNG seed; the same seed over the same stream damages the same
    /// bytes.
    pub seed: u64,
    /// Bit-flip rate in flipped bits per million bytes (each byte gets
    /// at most one flipped bit). 0 disables flips.
    pub flip_ppm: u32,
    /// Truncate the stream at this byte offset (report EOF early).
    pub truncate_at: Option<u64>,
    /// Raise one `io::Error` when the read cursor reaches this offset;
    /// subsequent reads continue normally (a transient fault).
    pub io_error_at: Option<u64>,
}

impl FaultSpec {
    /// Parses a compact comma-separated `key=value` list, e.g.
    /// `"flip=200,seed=7"` or `"truncate=65536,io-error=4096"`.
    ///
    /// Keys: `flip` (bit flips per million bytes), `seed` (PRNG seed),
    /// `truncate` (byte offset), `io-error` (byte offset). Unknown keys
    /// and malformed numbers are rejected.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed
    /// entry.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{item}` is not key=value"))?;
            let number = |what: &str| {
                value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec {what} `{value}` is not a number"))
            };
            match key.trim() {
                "flip" => {
                    let ppm = number("flip rate")?;
                    if ppm > 1_000_000 {
                        return Err(format!("flip rate {ppm} exceeds 1000000 ppm"));
                    }
                    spec.flip_ppm = ppm as u32;
                }
                "seed" => spec.seed = number("seed")?,
                "truncate" => spec.truncate_at = Some(number("truncate offset")?),
                "io-error" => spec.io_error_at = Some(number("io-error offset")?),
                k => {
                    return Err(format!(
                        "unknown fault spec key `{k}` (known: flip, seed, truncate, io-error)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// True if this spec injects nothing.
    pub fn is_noop(&self) -> bool {
        self.flip_ppm == 0 && self.truncate_at.is_none() && self.io_error_at.is_none()
    }
}

/// xorshift64* — tiny, seedable, and plenty random for picking fault
/// sites. Kept inline so fault injection has no dependency footprint.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point.
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A [`Read`] adapter injecting the faults described by a
/// [`FaultSpec`] into the wrapped stream. See the [module
/// docs](self) for the fault classes.
#[derive(Debug)]
pub struct FaultSource<R> {
    inner: R,
    spec: FaultSpec,
    rng: Rng,
    offset: u64,
    flips: u64,
    io_error_armed: bool,
}

impl<R: Read> FaultSource<R> {
    /// Wraps `inner`, injecting per `spec`.
    pub fn new(inner: R, spec: FaultSpec) -> Self {
        FaultSource {
            inner,
            rng: Rng::new(spec.seed),
            offset: 0,
            flips: 0,
            io_error_armed: spec.io_error_at.is_some(),
            spec,
        }
    }

    /// Bits flipped so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Bytes delivered so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultSource<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut limit = buf.len();
        if let Some(cut) = self.spec.truncate_at {
            limit = limit.min(cut.saturating_sub(self.offset) as usize);
            if limit == 0 && !buf.is_empty() {
                return Ok(0); // injected truncation: early EOF
            }
        }
        if self.io_error_armed {
            if let Some(at) = self.spec.io_error_at {
                if self.offset >= at {
                    self.io_error_armed = false;
                    return Err(io::Error::other(format!("injected I/O fault at byte {at}")));
                }
                limit = limit.min((at - self.offset) as usize).max(1);
            }
        }
        let n = self.inner.read(&mut buf[..limit])?;
        if self.spec.flip_ppm > 0 {
            // Per-byte Bernoulli trial at flip_ppm / 1e6; one flipped
            // bit per damaged byte.
            let threshold = u64::from(self.spec.flip_ppm) * (u64::MAX / 1_000_000);
            for b in &mut buf[..n] {
                if self.rng.next() < threshold {
                    *b ^= 1 << (self.rng.next() % 8);
                    self.flips += 1;
                }
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// A [`ChunkSource`] adapter injecting *record-level* faults: drops
/// whole ops at a seeded parts-per-million rate. Useful for exercising
/// consumers that must tolerate incomplete streams without involving
/// byte-level decode at all.
#[derive(Debug)]
pub struct FaultChunkSource<S> {
    inner: S,
    rng: Rng,
    drop_ppm: u32,
    dropped: u64,
}

impl<S: ChunkSource> FaultChunkSource<S> {
    /// Wraps `inner`, dropping ops at `drop_ppm` parts per million
    /// under `seed`.
    pub fn new(inner: S, seed: u64, drop_ppm: u32) -> Self {
        FaultChunkSource {
            inner,
            rng: Rng::new(seed),
            drop_ppm,
            dropped: 0,
        }
    }

    /// Ops dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<S: ChunkSource> ChunkSource for FaultChunkSource<S> {
    type Error = S::Error;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, S::Error> {
        let n = self.inner.read_chunk(out, max)?;
        if self.drop_ppm > 0 && n > 0 {
            let threshold = u64::from(self.drop_ppm) * (u64::MAX / 1_000_000);
            let before = out.len();
            let rng = &mut self.rng;
            out.retain(|_| rng.next() >= threshold);
            self.dropped += (before - out.len()) as u64;
        }
        Ok(out.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SliceSource;
    use crate::spec::SpecBenchmark;

    #[test]
    fn spec_parses_and_rejects() {
        let spec = FaultSpec::parse("flip=200, seed=7, truncate=1024, io-error=99").unwrap();
        assert_eq!(
            spec,
            FaultSpec {
                seed: 7,
                flip_ppm: 200,
                truncate_at: Some(1024),
                io_error_at: Some(99),
            }
        );
        assert!(FaultSpec::parse("").unwrap().is_noop());
        assert!(FaultSpec::parse("flip").is_err());
        assert!(FaultSpec::parse("flip=abc").is_err());
        assert!(FaultSpec::parse("warp=9").is_err());
        assert!(FaultSpec::parse("flip=2000000").is_err());
    }

    #[test]
    fn flips_are_deterministic_and_rate_bounded() {
        let clean = vec![0u8; 1 << 20];
        let read_all = |spec: FaultSpec| {
            let mut src = FaultSource::new(&clean[..], spec);
            let mut out = Vec::new();
            src.read_to_end(&mut out).unwrap();
            (out, src.flips())
        };
        let spec = FaultSpec {
            flip_ppm: 500,
            seed: 42,
            ..FaultSpec::default()
        };
        let (a, flips_a) = read_all(spec);
        let (b, flips_b) = read_all(spec);
        assert_eq!(a, b, "same seed, same damage");
        assert_eq!(flips_a, flips_b);
        // ~500ppm over 1MiB ≈ 524 expected flips; allow wide slack.
        assert!((100..3000).contains(&flips_a), "{flips_a}");
        let differing = a.iter().filter(|&&x| x != 0).count() as u64;
        assert_eq!(differing, flips_a, "one bit per damaged byte");
        let (c, _) = read_all(FaultSpec { seed: 43, ..spec });
        assert_ne!(a, c, "different seed, different damage");
    }

    #[test]
    fn truncation_cuts_exactly() {
        let clean: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let spec = FaultSpec {
            truncate_at: Some(777),
            ..FaultSpec::default()
        };
        let mut out = Vec::new();
        FaultSource::new(&clean[..], spec)
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, &clean[..777]);
    }

    #[test]
    fn io_error_fires_once_then_recovers() {
        let clean = vec![7u8; 10_000];
        let spec = FaultSpec {
            io_error_at: Some(100),
            ..FaultSpec::default()
        };
        let mut src = FaultSource::new(&clean[..], spec);
        let mut out = Vec::new();
        let err = src.read_to_end(&mut out).unwrap_err();
        assert!(err.to_string().contains("injected I/O fault"), "{err}");
        // The error is transient: retrying drains the rest.
        out.clear();
        src.read_to_end(&mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
    }

    #[test]
    fn chunk_faults_drop_deterministically() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(1).take(50_000).collect();
        let drain = |seed: u64| {
            let mut src = FaultChunkSource::new(SliceSource::new(&ops), seed, 10_000);
            let mut buf = Vec::new();
            let mut all = Vec::new();
            while src.read_chunk(&mut buf, 4096).unwrap() > 0 {
                all.extend_from_slice(&buf);
            }
            (all, src.dropped())
        };
        let (a, dropped_a) = drain(5);
        let (b, dropped_b) = drain(5);
        assert_eq!(a, b);
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(a.len() as u64 + dropped_a, ops.len() as u64);
        // 1% drop rate over 50k ops: a few hundred expected.
        assert!((100..2000).contains(&dropped_a), "{dropped_a}");
    }

    #[test]
    fn noop_spec_is_transparent() {
        let clean: Vec<u8> = (0..=255u8).cycle().take(5_000).collect();
        let mut out = Vec::new();
        let mut src = FaultSource::new(&clean[..], FaultSpec::default());
        src.read_to_end(&mut out).unwrap();
        assert_eq!(out, clean);
        assert_eq!(src.flips(), 0);
    }
}

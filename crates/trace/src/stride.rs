//! The Figure 1 stride-sweep trace.
//!
//! The paper's Figure 1 experiment drives four cache configurations with
//! "an address trace representing repeated accesses to a vector of 64
//! 8-byte elements in which the elements were separated by stride `S`",
//! for every stride `1 ≤ S < 4096`.

use crate::record::MemRef;

/// Generator of the Figure 1 vector-access trace: `passes` sweeps over 64
/// elements of 8 bytes, `stride_elems * 8` bytes apart.
///
/// # Example
///
/// ```
/// use cac_trace::stride::VectorStride;
///
/// let refs: Vec<_> = VectorStride::paper_figure1(3, 2).collect();
/// assert_eq!(refs.len(), 2 * 64);
/// assert_eq!(refs[1].addr - refs[0].addr, 3 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct VectorStride {
    base: u64,
    elems: u64,
    stride_bytes: u64,
    total: u64,
    emitted: u64,
    pc: u64,
}

impl VectorStride {
    /// Creates a sweep of `elems` elements of `elem_bytes` bytes, spaced
    /// `stride_elems` elements apart, repeated `passes` times.
    pub fn new(base: u64, elems: u64, elem_bytes: u64, stride_elems: u64, passes: u64) -> Self {
        VectorStride {
            base,
            elems,
            stride_bytes: stride_elems * elem_bytes,
            total: elems * passes,
            emitted: 0,
            pc: 0x1000,
        }
    }

    /// The paper's Figure 1 configuration: 64 elements of 8 bytes at the
    /// given element stride.
    pub fn paper_figure1(stride_elems: u64, passes: u64) -> Self {
        Self::new(0, 64, 8, stride_elems, passes)
    }

    /// Number of references this generator will produce in total.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if the generator will produce no references.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl Iterator for VectorStride {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.emitted == self.total {
            return None;
        }
        let i = self.emitted % self.elems;
        self.emitted += 1;
        Some(MemRef {
            pc: self.pc,
            addr: self.base + i * self.stride_bytes,
            is_write: false,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for VectorStride {}

/// Runs the full Figure 1 stride sweep: for each stride in
/// `1..max_stride`, calls `f` with the stride and a fresh trace.
///
/// The per-stride trace makes `passes` sweeps; the first pass warms the
/// cache, so a conflict-free configuration converges to a miss ratio of
/// `1/passes`.
pub fn figure1_sweep<F: FnMut(u64, VectorStride)>(max_stride: u64, passes: u64, mut f: F) {
    for stride in 1..max_stride {
        f(stride, VectorStride::paper_figure1(stride, passes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_passes_times_elems() {
        let v = VectorStride::paper_figure1(7, 5);
        assert_eq!(v.len(), 320);
        assert_eq!(v.count(), 320);
    }

    #[test]
    fn addresses_wrap_each_pass() {
        let refs: Vec<_> = VectorStride::paper_figure1(2, 2).collect();
        assert_eq!(refs[0].addr, refs[64].addr);
        assert_eq!(refs[63].addr, 63 * 16);
        assert!(refs.iter().all(|r| !r.is_write));
    }

    #[test]
    fn stride_one_is_sequential() {
        let refs: Vec<_> = VectorStride::paper_figure1(1, 1).collect();
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(r.addr, i as u64 * 8);
        }
    }

    #[test]
    fn sweep_covers_all_strides() {
        let mut seen = Vec::new();
        figure1_sweep(10, 1, |s, trace| {
            seen.push(s);
            assert_eq!(trace.len(), 64);
        });
        assert_eq!(seen, (1..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_when_zero_passes() {
        let v = VectorStride::paper_figure1(1, 0);
        assert!(v.is_empty());
        assert_eq!(v.count(), 0);
    }
}

//! Crash-atomic file commits behind one swappable trait.
//!
//! Every durable artifact in the workspace — the checkpoint journal,
//! the corpus manifest, the columnar trace pool — reaches disk through
//! the same protocol: write a sibling temp file, `fsync` it, `rename`
//! it over the target, `fsync` the parent directory. A crash at any
//! step leaves either the old file or the new file (plus, at worst, an
//! orphaned `*.tmp` that recovery removes) — never a torn mix.
//!
//! Claims about crash behaviour need a reproducible way to crash (the
//! same argument as [`crate::fault`] makes for read-side damage), so
//! the protocol lives behind the [`CommitFs`] trait with two
//! implementations:
//!
//! * [`DiskFs`] — the real thing: full `fsync` discipline on the host
//!   filesystem.
//! * [`FaultFs`] — a deterministic fault injector: a seeded **crash
//!   point** stops the operation sequence mid-step and simulates the
//!   operating system losing everything that was not yet synced
//!   (unsynced file tails truncate to a seeded prefix; renames whose
//!   parent directory was never synced may roll back), and a seeded
//!   **ENOSPC budget** makes writes run out of disk after N bytes,
//!   tearing the write mid-buffer exactly like a full disk does.
//!
//! # Example
//!
//! ```
//! use cac_trace::io::commitfs::{CommitFs, DiskFs, FaultFs, FaultPlan};
//!
//! let dir = std::env::temp_dir().join(format!("cac-commitfs-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let target = dir.join("state");
//! let tmp = dir.join("state.tmp");
//!
//! // A full commit: temp -> fsync -> rename -> fsync dir.
//! DiskFs.commit_bytes(&target, &tmp, b"v1")?;
//! assert_eq!(std::fs::read(&target)?, b"v1");
//!
//! // The same commit under a crash point injected after one op: the
//! // temp write lands, the fsync "crashes", and the target is intact.
//! let faulty = FaultFs::new(FaultPlan { crash_after_ops: Some(1), ..FaultPlan::default() });
//! assert!(faulty.commit_bytes(&target, &tmp, b"v2").is_err());
//! assert_eq!(std::fs::read(&target)?, b"v1", "old state survives");
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The write-side file operations a durable store needs, in primitive
/// form so a fault injector can fail (and damage) each one separately.
///
/// The provided [`CommitFs::commit_bytes`] composes them into the full
/// crash-atomic commit protocol; stores that stream large files (the
/// trace pool) use [`CommitFs::create`] and run the sync/rename steps
/// themselves.
pub trait CommitFs: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) `path` and returns a streaming writer to
    /// it. The data is *not* durable until [`CommitFs::sync_file`].
    ///
    /// # Errors
    ///
    /// Underlying or injected I/O failure.
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>>;

    /// Creates (or truncates) `path` with exactly `bytes`. Equivalent
    /// to [`CommitFs::create`] + one write, as a single operation.
    ///
    /// # Errors
    ///
    /// Underlying or injected I/O failure (possibly after a partial,
    /// torn write).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Forces `path`'s contents to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Underlying or injected I/O failure.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` onto `to`. The *directory entry*
    /// update is not durable until [`CommitFs::sync_dir`] on the
    /// parent.
    ///
    /// # Errors
    ///
    /// Underlying or injected I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Forces directory-entry updates under `dir` (renames, creates,
    /// removes) to stable storage.
    ///
    /// # Errors
    ///
    /// Underlying or injected I/O failure.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Removes a file (recovery paths use this to clear orphaned temp
    /// files).
    ///
    /// # Errors
    ///
    /// Underlying or injected I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// The full crash-atomic commit: write `bytes` to `tmp`, `fsync`
    /// it, rename it over `path`, `fsync` the parent directory. After
    /// this returns, `path` holds exactly `bytes` durably; if it
    /// fails, `path` still holds its previous content (an orphaned
    /// `tmp` may remain for recovery to sweep).
    ///
    /// # Errors
    ///
    /// The first failing step's error.
    fn commit_bytes(&self, path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
        self.write_file(tmp, bytes)?;
        self.sync_file(tmp)?;
        self.rename(tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            self.sync_dir(dir)?;
        }
        Ok(())
    }
}

/// The real filesystem with full `fsync` discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskFs;

impl CommitFs for DiskFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(File::create(path)?))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // POSIX: fsync on a read-only directory handle flushes its
        // entries. Windows cannot open directories this way; renames
        // there are metadata-journaled, so skipping is the best
        // available behaviour.
        #[cfg(windows)]
        {
            let _ = dir;
            Ok(())
        }
        #[cfg(not(windows))]
        File::open(dir)?.sync_all()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// What faults [`FaultFs`] injects. Built directly or parsed from the
/// compact `k=v` list by [`FaultPlan::parse`] (the same convention as
/// [`crate::fault::FaultSpec`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for damage decisions (torn-tail lengths, rename
    /// persistence). The same seed over the same operation sequence
    /// damages identically.
    pub seed: u64,
    /// Crash after this many primitive operations succeed: the next
    /// operation fails, unsynced data is damaged on disk, and every
    /// later operation fails too. `Some(0)` crashes immediately.
    pub crash_after_ops: Option<u64>,
    /// Simulated disk-full: writes succeed until this many cumulative
    /// bytes, then tear mid-buffer and fail with `StorageFull`.
    pub enospc_after_bytes: Option<u64>,
}

impl FaultPlan {
    /// Parses a compact comma-separated `key=value` list, e.g.
    /// `"crash-op=3,seed=7"` or `"enospc-bytes=4096"`.
    ///
    /// Keys: `crash-op` (operation count before the crash), `enospc-bytes`
    /// (byte budget before writes fail), `seed`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed entry.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault plan item `{item}` is not key=value"))?;
            let number = |what: &str| {
                value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault plan {what} `{value}` is not a number"))
            };
            match key.trim() {
                "crash-op" => plan.crash_after_ops = Some(number("crash op")?),
                "enospc-bytes" => plan.enospc_after_bytes = Some(number("byte budget")?),
                "seed" => plan.seed = number("seed")?,
                k => {
                    return Err(format!(
                        "unknown fault plan key `{k}` (known: crash-op, enospc-bytes, seed)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// True if this plan injects nothing.
    pub fn is_noop(&self) -> bool {
        self.crash_after_ops.is_none() && self.enospc_after_bytes.is_none()
    }
}

/// xorshift64* — the same tiny seedable generator the read-side fault
/// injector uses.
#[derive(Debug)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// A rename whose directory entry has not been synced: the crash
/// routine decides (seeded) whether it persisted, and can undo it.
#[derive(Debug)]
struct PendingRename {
    from: PathBuf,
    to: PathBuf,
    /// `to`'s previous content (`None` = it did not exist).
    old_target: Option<Vec<u8>>,
    /// `from`'s content at rename time, for rollback.
    moved: Vec<u8>,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    bytes: u64,
    crashed: bool,
    /// Files with writes since their last sync: path -> durable length
    /// (bytes guaranteed on stable storage).
    unsynced: HashMap<PathBuf, u64>,
    renames: Vec<PendingRename>,
}

/// Deterministic fault-injecting [`CommitFs`]: real files, simulated
/// crashes.
///
/// Operations are numbered in call order ([`FaultPlan::crash_after_ops`]
/// counts `create`/`write_file`/`sync_file`/`rename`/`sync_dir`/
/// `remove_file`; streaming writes through a [`CommitFs::create`]
/// handle count bytes, not operations, so crash-point numbering does
/// not depend on buffer sizes). At the crash point the injector damages
/// the real directory the way a power loss would:
///
/// * every file with unsynced writes keeps only a seeded prefix of the
///   unsynced suffix (a torn tail);
/// * every rename whose parent directory was never synced is kept or
///   rolled back by a seeded coin (directory entries without an
///   `fsync` may or may not have reached disk).
///
/// After the crash every further operation fails, like a dead process.
#[derive(Debug)]
pub struct FaultFs {
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFs {
    /// A fresh injector; operation and byte counters start at zero.
    pub fn new(plan: FaultPlan) -> FaultFs {
        FaultFs {
            plan,
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Primitive operations performed so far. Run a sequence once with
    /// a crash-free plan to learn its length, then sweep
    /// `crash_after_ops` over `0..len` to hit every crash point.
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state poisoned").ops
    }

    /// True once the crash point fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault state poisoned").crashed
    }

    /// Counts one primitive op; fires the crash point when due.
    fn step(&self, state: &mut FaultState) -> io::Result<()> {
        if state.crashed {
            return Err(io::Error::other("injected crash: filesystem is down"));
        }
        if self
            .plan
            .crash_after_ops
            .is_some_and(|limit| state.ops >= limit)
        {
            Self::apply_crash(state, self.plan.seed);
            return Err(io::Error::other(format!(
                "injected crash at op {}",
                state.ops
            )));
        }
        state.ops += 1;
        Ok(())
    }

    /// Simulates the OS losing unsynced state, then marks the
    /// filesystem dead.
    fn apply_crash(state: &mut FaultState, seed: u64) {
        state.crashed = true;
        let mut rng = Rng::new(seed ^ state.ops.wrapping_mul(0x9E3779B97F4A7C15));
        // Un-fsynced renames: each directory-entry update independently
        // did or did not reach disk. Roll back the lost ones (newest
        // first, so chained renames undo cleanly).
        let renames = std::mem::take(&mut state.renames);
        for r in renames.into_iter().rev() {
            if rng.coin() {
                continue; // this entry made it to disk
            }
            match &r.old_target {
                Some(bytes) => {
                    let _ = std::fs::write(&r.to, bytes);
                }
                None => {
                    let _ = std::fs::remove_file(&r.to);
                }
            }
            let _ = std::fs::write(&r.from, &r.moved);
            // Unsynced tracking follows the file back to its old name.
            if let Some(durable) = state.unsynced.remove(&r.to) {
                state.unsynced.insert(r.from.clone(), durable);
            }
        }
        // Un-fsynced writes: keep a seeded prefix of the unsynced
        // suffix — the classic torn tail.
        for (path, durable) in std::mem::take(&mut state.unsynced) {
            let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if len > durable {
                let keep = durable + rng.below(len - durable + 1);
                let _ = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(keep));
            }
        }
    }

    /// Charges `want` bytes against the ENOSPC budget; returns how many
    /// may actually be written (the torn prefix when the budget runs
    /// out).
    fn charge(&self, state: &mut FaultState, want: usize) -> usize {
        let allowed = match self.plan.enospc_after_bytes {
            Some(limit) => (limit.saturating_sub(state.bytes) as usize).min(want),
            None => want,
        };
        state.bytes += allowed as u64;
        allowed
    }

    fn enospc() -> io::Error {
        io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC: disk is full")
    }
}

/// Streaming writer for [`FaultFs::create`]: writes through to the
/// real file while keeping the shared fault state honest.
#[derive(Debug)]
struct FaultWriter {
    file: File,
    path: PathBuf,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

impl Write for FaultWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.state.lock().expect("fault state poisoned");
        if state.crashed {
            return Err(io::Error::other("injected crash: filesystem is down"));
        }
        let fs = FaultFs {
            plan: self.plan,
            state: Arc::clone(&self.state),
        };
        let allowed = fs.charge(&mut state, buf.len());
        state.unsynced.entry(self.path.clone()).or_insert(0);
        drop(state);
        if allowed > 0 {
            self.file.write_all(&buf[..allowed])?;
        }
        if allowed < buf.len() {
            return Err(FaultFs::enospc());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // A userspace flush is not an fsync: data stays "unsynced".
        self.file.flush()
    }
}

impl CommitFs for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        let mut state = self.state.lock().expect("fault state poisoned");
        self.step(&mut state)?;
        let file = File::create(path)?;
        state.unsynced.insert(path.to_path_buf(), 0);
        Ok(Box::new(FaultWriter {
            file,
            path: path.to_path_buf(),
            plan: self.plan,
            state: Arc::clone(&self.state),
        }))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state poisoned");
        self.step(&mut state)?;
        let allowed = self.charge(&mut state, bytes.len());
        std::fs::write(path, &bytes[..allowed])?;
        state.unsynced.insert(path.to_path_buf(), 0);
        if allowed < bytes.len() {
            return Err(Self::enospc());
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state poisoned");
        self.step(&mut state)?;
        File::open(path)?.sync_all()?;
        state.unsynced.remove(path);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state poisoned");
        self.step(&mut state)?;
        let old_target = std::fs::read(to).ok();
        let moved = std::fs::read(from).unwrap_or_default();
        std::fs::rename(from, to)?;
        if let Some(durable) = state.unsynced.remove(from) {
            state.unsynced.insert(to.to_path_buf(), durable);
        }
        state.renames.push(PendingRename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            old_target,
            moved,
        });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state poisoned");
        self.step(&mut state)?;
        state
            .renames
            .retain(|r| r.to.parent() != Some(dir) && r.to.parent() != dir.parent().map(|_| dir));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state poisoned");
        self.step(&mut state)?;
        std::fs::remove_file(path)?;
        state.unsynced.remove(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cac-commitfs-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_round_trips_and_rejects_junk() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        let p = FaultPlan::parse("crash-op=3, seed=7, enospc-bytes=100").unwrap();
        assert_eq!(p.crash_after_ops, Some(3));
        assert_eq!(p.seed, 7);
        assert_eq!(p.enospc_after_bytes, Some(100));
        assert!(!p.is_noop());
        assert!(FaultPlan::parse("crash-op=x").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("crash-op").is_err());
    }

    #[test]
    fn disk_commit_is_atomic_and_cleans_tmp() {
        let dir = tmp_dir("disk");
        let target = dir.join("state");
        let tmp = dir.join("state.tmp");
        DiskFs.commit_bytes(&target, &tmp, b"hello").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"hello");
        assert!(!tmp.exists());
        DiskFs.commit_bytes(&target, &tmp, b"world").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"world");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_crash_point_leaves_old_or_new_state() {
        let dir = tmp_dir("sweep");
        let target = dir.join("state");
        let tmp = dir.join("state.tmp");
        DiskFs.commit_bytes(&target, &tmp, b"old-contents").unwrap();

        // Learn the sequence length from a crash-free run.
        let probe = FaultFs::new(FaultPlan::default());
        probe.commit_bytes(&target, &tmp, b"new-contents!").unwrap();
        let total = probe.ops();
        assert!(total >= 4, "commit should be write+sync+rename+syncdir");
        DiskFs.commit_bytes(&target, &tmp, b"old-contents").unwrap();

        for crash_at in 0..total {
            for seed in [1u64, 2, 3] {
                DiskFs.commit_bytes(&target, &tmp, b"old-contents").unwrap();
                std::fs::remove_file(&tmp).ok();
                let fs = FaultFs::new(FaultPlan {
                    seed,
                    crash_after_ops: Some(crash_at),
                    ..FaultPlan::default()
                });
                let err = fs
                    .commit_bytes(&target, &tmp, b"new-contents!")
                    .unwrap_err();
                assert!(err.to_string().contains("injected crash"), "{err}");
                assert!(fs.crashed());
                let got = std::fs::read(&target).unwrap();
                assert!(
                    got == b"old-contents" || got == b"new-contents!",
                    "crash at {crash_at} seed {seed} left torn target {:?}",
                    String::from_utf8_lossy(&got)
                );
                // Dead filesystems stay dead.
                assert!(fs.write_file(&target, b"x").is_err());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_after_full_sequence_changes_nothing() {
        let dir = tmp_dir("post");
        let target = dir.join("state");
        let tmp = dir.join("state.tmp");
        let fs = FaultFs::new(FaultPlan {
            crash_after_ops: Some(100),
            ..FaultPlan::default()
        });
        fs.commit_bytes(&target, &tmp, b"durable").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"durable");
        assert!(!fs.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_tears_the_write_and_fails() {
        let dir = tmp_dir("enospc");
        let path = dir.join("f");
        let fs = FaultFs::new(FaultPlan {
            enospc_after_bytes: Some(5),
            ..FaultPlan::default()
        });
        let err = fs.write_file(&path, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234", "torn prefix");
        // The disk stays full for later writes too.
        let err = fs.write_file(&dir.join("g"), b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_writer_counts_bytes_not_ops() {
        let dir = tmp_dir("stream");
        let path = dir.join("s");
        let fs = FaultFs::new(FaultPlan::default());
        let mut w = fs.create(&path).unwrap();
        for chunk in [b"aa".as_slice(), b"bb", b"cc"] {
            w.write_all(chunk).unwrap();
        }
        drop(w);
        assert_eq!(fs.ops(), 1, "create is one op; chunk writes are free");
        assert_eq!(std::fs::read(&path).unwrap(), b"aabbcc");

        // A crash with the stream unsynced tears its tail
        // deterministically.
        let fs = FaultFs::new(FaultPlan {
            seed: 9,
            crash_after_ops: Some(1),
            ..FaultPlan::default()
        });
        let mut w = fs.create(&path).unwrap();
        w.write_all(b"0123456789").unwrap();
        drop(w);
        assert!(fs.sync_file(&path).is_err(), "crash point fires");
        let torn = std::fs::read(&path).unwrap();
        assert!(torn.len() <= 10);
        assert_eq!(&torn[..], &b"0123456789"[..torn.len()], "prefix, not noise");
        // Same seed, same sequence => same tear.
        let fs2 = FaultFs::new(FaultPlan {
            seed: 9,
            crash_after_ops: Some(1),
            ..FaultPlan::default()
        });
        let mut w = fs2.create(&path).unwrap();
        w.write_all(b"0123456789").unwrap();
        drop(w);
        assert!(fs2.sync_file(&path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), torn);
        std::fs::remove_dir_all(&dir).ok();
    }
}

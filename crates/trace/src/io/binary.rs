//! Compact binary trace serialization.
//!
//! The text format parses at a few million ops per second — an order of
//! magnitude below the simulator's batched replay path. This module
//! defines a streaming binary format that closes that gap, so
//! multi-gigabyte externally captured traces (the MIRAGE/birthday-bound
//! style of evaluation) replay at full speed:
//!
//! * an 8-byte header: the [`BINARY_MAGIC`] bytes `CACT`, a format
//!   version byte ([`BINARY_VERSION`]) and three reserved zero bytes;
//! * one record per dynamic instruction: a **tag byte** encoding the op
//!   kind (compute class, load, store, branch taken/not-taken), followed
//!   by kind-specific fields;
//! * program counters and effective addresses are **delta-encoded**
//!   against the previous record (zigzag + LEB128 varint), which turns
//!   the mostly-sequential pc stream and spatially local address stream
//!   into one- or two-byte fields;
//! * register operands are single bytes (`0xFF` = absent).
//!
//! The stream is terminated by the end of the underlying reader; records
//! are self-delimiting, so readers detect truncation mid-record and
//! report it as [`BinaryTraceError::Truncated`] rather than silently
//! dropping the tail.
//!
//! # Example
//!
//! ```
//! use cac_trace::io::{BinaryTraceReader, BinaryTraceWriter};
//! use cac_trace::TraceOp;
//!
//! let ops = vec![
//!     TraceOp::load(0x400, 0x1_0000, 5, Some(3)),
//!     TraceOp::store(0x404, 0x1_0008, 7, None),
//!     TraceOp::branch(0x408, true, 0x400, Some(2)),
//! ];
//! let mut w = BinaryTraceWriter::new(Vec::new())?;
//! w.write_all(ops.iter().copied())?;
//! let bytes = w.finish()?;
//! let back: Result<Vec<_>, _> = BinaryTraceReader::new(&bytes[..])?.collect();
//! assert_eq!(back?, ops);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use super::ChunkSource;
use crate::record::{MemRef, OpClass, TraceOp};
use std::fmt;
use std::io::{self, BufWriter, Read, Write};

/// Magic bytes opening every binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"CACT";

/// Current (and only) format version.
pub const BINARY_VERSION: u8 = 1;

/// Header length in bytes: magic, version, three reserved zeros.
pub const HEADER_LEN: usize = 8;

/// Upper bound on the encoded size of one record: tag byte, two 10-byte
/// varints, three register bytes.
const MAX_RECORD_LEN: usize = 1 + 10 + 10 + 3;

/// Register-operand byte meaning "absent".
const REG_NONE: u8 = 0xFF;

// Tag-byte kinds. 0..=6 are the compute classes in `OpClass` order;
// memory and branch kinds follow. The high tag bits are reserved and
// must be zero in version 1.
const TAG_LOAD: u8 = 7;
const TAG_STORE: u8 = 8;
const TAG_BRANCH_NOT_TAKEN: u8 = 9;
const TAG_BRANCH_TAKEN: u8 = 10;

const COMPUTE_CLASSES: [OpClass; 7] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::FpSqrt,
];

fn compute_tag(class: OpClass) -> u8 {
    COMPUTE_CLASSES
        .iter()
        .position(|&c| c == class)
        .expect("compute class") as u8
}

/// Error produced while reading a binary trace.
#[derive(Debug)]
pub enum BinaryTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`BINARY_MAGIC`].
    BadMagic,
    /// The header carries a version this reader does not understand.
    UnsupportedVersion(u8),
    /// The stream ended in the middle of a record.
    Truncated {
        /// Number of records successfully decoded before the cut.
        ops_decoded: u64,
    },
    /// A structurally invalid record.
    Corrupt {
        /// 0-based index of the offending record.
        op: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for BinaryTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryTraceError::Io(e) => write!(f, "binary trace read failed: {e}"),
            BinaryTraceError::BadMagic => {
                write!(f, "not a binary trace (bad magic; expected `CACT`)")
            }
            BinaryTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary trace version {v} (supported: 1)")
            }
            BinaryTraceError::Truncated { ops_decoded } => {
                write!(
                    f,
                    "binary trace truncated after {ops_decoded} complete records"
                )
            }
            BinaryTraceError::Corrupt { op, reason } => {
                write!(f, "corrupt binary trace record {op}: {reason}")
            }
        }
    }
}

impl std::error::Error for BinaryTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinaryTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BinaryTraceError {
    fn from(e: io::Error) -> Self {
        BinaryTraceError::Io(e)
    }
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn reg_byte(r: Option<u8>) -> u8 {
    r.unwrap_or(REG_NONE)
}

/// Record-decode failure, positioned by the caller.
enum DecodeError {
    Truncated,
    Corrupt(String),
}

/// Byte cursor over a fully buffered span of the stream.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    #[inline(always)]
    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    #[inline(always)]
    fn varint(&mut self) -> Result<u64, DecodeError> {
        // Unrolled fast paths: delta-encoded streams are dominated by
        // one-byte (sequential pc) and two/three-byte (local address)
        // varints.
        let b = self.byte()?;
        if b < 0x80 {
            return Ok(u64::from(b));
        }
        let mut v = u64::from(b & 0x7F);
        let b = self.byte()?;
        v |= u64::from(b & 0x7F) << 7;
        if b < 0x80 {
            return Ok(v);
        }
        let b = self.byte()?;
        v |= u64::from(b & 0x7F) << 14;
        if b < 0x80 {
            return Ok(v);
        }
        let mut shift = 21u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::Corrupt("varint overflows 64 bits".into()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::Corrupt("varint longer than 10 bytes".into()));
            }
        }
    }

    #[inline(always)]
    fn reg(&mut self) -> Result<Option<u8>, DecodeError> {
        match self.byte()? {
            REG_NONE => Ok(None),
            r if r < 64 => Ok(Some(r)),
            r => Err(bad_register(r)),
        }
    }
}

#[cold]
fn bad_register(r: u8) -> DecodeError {
    DecodeError::Corrupt(format!("register byte {r:#x} out of range"))
}

/// Decodes one record from `cur`, given the previous pc/addr state.
/// Returns the op and the updated previous-address state.
#[inline(always)]
fn decode_record(
    cur: &mut Cursor<'_>,
    prev_pc: u64,
    prev_addr: u64,
) -> Result<(TraceOp, u64), DecodeError> {
    let tag = cur.byte()?;
    let pc = prev_pc.wrapping_add(zigzag_decode(cur.varint()?) as u64);
    let op = match tag {
        TAG_LOAD | TAG_STORE => {
            let addr = prev_addr.wrapping_add(zigzag_decode(cur.varint()?) as u64);
            let a = cur.reg()?;
            let b = cur.reg()?;
            let op = if tag == TAG_LOAD {
                let dst =
                    a.ok_or_else(|| DecodeError::Corrupt("load without destination".into()))?;
                TraceOp::load(pc, addr, dst, b)
            } else {
                let src =
                    a.ok_or_else(|| DecodeError::Corrupt("store without data register".into()))?;
                TraceOp::store(pc, addr, src, b)
            };
            return Ok((op, addr));
        }
        TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => {
            let target = pc.wrapping_add(zigzag_decode(cur.varint()?) as u64);
            let src = cur.reg()?;
            TraceOp::branch(pc, tag == TAG_BRANCH_TAKEN, target, src)
        }
        t if (t as usize) < COMPUTE_CLASSES.len() => {
            let dst = cur
                .reg()?
                .ok_or_else(|| DecodeError::Corrupt("compute op without destination".into()))?;
            let s1 = cur.reg()?;
            let s2 = cur.reg()?;
            TraceOp::compute(pc, COMPUTE_CLASSES[t as usize], dst, [s1, s2])
        }
        t => return Err(DecodeError::Corrupt(format!("unknown tag byte {t:#x}"))),
    };
    Ok((op, prev_addr))
}

/// Streaming writer for the binary format.
///
/// Buffers internally; call [`finish`](BinaryTraceWriter::finish) to
/// flush and recover the underlying writer.
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write> {
    out: BufWriter<W>,
    /// Per-record scratch, reused to avoid small write calls.
    scratch: Vec<u8>,
    prev_pc: u64,
    prev_addr: u64,
    ops: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a binary trace on `w`, writing the header immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(w: W) -> io::Result<Self> {
        let mut out = BufWriter::with_capacity(1 << 16, w);
        out.write_all(&BINARY_MAGIC)?;
        out.write_all(&[BINARY_VERSION, 0, 0, 0])?;
        Ok(BinaryTraceWriter {
            out,
            scratch: Vec::with_capacity(MAX_RECORD_LEN),
            prev_pc: 0,
            prev_addr: 0,
            ops: 0,
        })
    }

    /// Number of records written so far.
    pub fn ops_written(&self) -> u64 {
        self.ops
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_op(&mut self, op: TraceOp) -> io::Result<()> {
        let scratch = &mut self.scratch;
        scratch.clear();
        let pc_delta = zigzag_encode(op.pc.wrapping_sub(self.prev_pc) as i64);
        match op.class {
            OpClass::Load => {
                let addr = op.addr.unwrap_or(0);
                scratch.push(TAG_LOAD);
                write_varint(scratch, pc_delta);
                write_varint(
                    scratch,
                    zigzag_encode(addr.wrapping_sub(self.prev_addr) as i64),
                );
                scratch.push(reg_byte(op.dst));
                scratch.push(reg_byte(op.srcs[0]));
                self.prev_addr = addr;
            }
            OpClass::Store => {
                let addr = op.addr.unwrap_or(0);
                scratch.push(TAG_STORE);
                write_varint(scratch, pc_delta);
                write_varint(
                    scratch,
                    zigzag_encode(addr.wrapping_sub(self.prev_addr) as i64),
                );
                scratch.push(reg_byte(op.srcs[0]));
                scratch.push(reg_byte(op.srcs[1]));
                self.prev_addr = addr;
            }
            OpClass::Branch => {
                scratch.push(if op.taken {
                    TAG_BRANCH_TAKEN
                } else {
                    TAG_BRANCH_NOT_TAKEN
                });
                write_varint(scratch, pc_delta);
                write_varint(scratch, zigzag_encode(op.target.wrapping_sub(op.pc) as i64));
                scratch.push(reg_byte(op.srcs[0]));
            }
            class => {
                scratch.push(compute_tag(class));
                write_varint(scratch, pc_delta);
                scratch.push(reg_byte(op.dst));
                scratch.push(reg_byte(op.srcs[0]));
                scratch.push(reg_byte(op.srcs[1]));
            }
        }
        self.prev_pc = op.pc;
        self.ops += 1;
        self.out.write_all(scratch)
    }

    /// Appends every op of an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_all<I: IntoIterator<Item = TraceOp>>(&mut self, ops: I) -> io::Result<()> {
        for op in ops {
            self.write_op(op)?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(self) -> io::Result<W> {
        self.out
            .into_inner()
            .map_err(io::IntoInnerError::into_error)
    }
}

/// One-call convenience: writes header plus all `ops` to `w` and returns
/// the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_binary<W: Write, I: IntoIterator<Item = TraceOp>>(
    w: W,
    ops: I,
) -> io::Result<W> {
    let mut writer = BinaryTraceWriter::new(w)?;
    writer.write_all(ops)?;
    writer.finish()
}

/// Streaming reader for the binary format.
///
/// Maintains its own refill buffer (no `BufReader` needed underneath)
/// and decodes records either one at a time (the [`Iterator`] impl) or
/// in caller-buffered batches
/// ([`read_chunk`](BinaryTraceReader::read_chunk), the fast path used by
/// `cac_sim::replay`).
#[derive(Debug)]
pub struct BinaryTraceReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    hit_eof: bool,
    failed: bool,
    prev_pc: u64,
    prev_addr: u64,
    ops: u64,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a binary trace, validating the header.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::BadMagic`] /
    /// [`BinaryTraceError::UnsupportedVersion`] on a foreign or
    /// newer-versioned stream, [`BinaryTraceError::Truncated`] if the
    /// stream ends inside the header, or an I/O error.
    pub fn new(inner: R) -> Result<Self, BinaryTraceError> {
        let mut r = BinaryTraceReader {
            inner,
            buf: vec![0; 1 << 16],
            pos: 0,
            len: 0,
            hit_eof: false,
            failed: false,
            prev_pc: 0,
            prev_addr: 0,
            ops: 0,
        };
        r.refill()?;
        if r.len - r.pos < HEADER_LEN {
            let have = r.len.min(BINARY_MAGIC.len());
            if r.len == 0 || r.buf[..have] != BINARY_MAGIC[..have] {
                return Err(BinaryTraceError::BadMagic);
            }
            return Err(BinaryTraceError::Truncated { ops_decoded: 0 });
        }
        if r.buf[..4] != BINARY_MAGIC {
            return Err(BinaryTraceError::BadMagic);
        }
        if r.buf[4] != BINARY_VERSION {
            return Err(BinaryTraceError::UnsupportedVersion(r.buf[4]));
        }
        r.pos = HEADER_LEN;
        Ok(r)
    }

    /// Number of records decoded so far.
    pub fn ops_decoded(&self) -> u64 {
        self.ops
    }

    /// Moves the unconsumed tail to the front of the buffer and reads
    /// more bytes, until the buffer is full or the stream ends.
    fn refill(&mut self) -> Result<(), BinaryTraceError> {
        self.buf.copy_within(self.pos..self.len, 0);
        self.len -= self.pos;
        self.pos = 0;
        while self.len < self.buf.len() && !self.hit_eof {
            match self.inner.read(&mut self.buf[self.len..]) {
                Ok(0) => self.hit_eof = true,
                Ok(n) => self.len += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn corrupt(&self, reason: impl Into<String>) -> BinaryTraceError {
        BinaryTraceError::Corrupt {
            op: self.ops,
            reason: reason.into(),
        }
    }

    /// Decodes the next record, or `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::Truncated`] if the stream stops mid-record,
    /// [`BinaryTraceError::Corrupt`] on invalid tags/operands, or an
    /// I/O error.
    pub fn next_op(&mut self) -> Result<Option<TraceOp>, BinaryTraceError> {
        // Guarantee a whole record (or final EOF) is buffered so the
        // decode below never touches the reader.
        if self.len - self.pos < MAX_RECORD_LEN && !self.hit_eof {
            self.refill()?;
        }
        if self.pos == self.len {
            return Ok(None);
        }
        let mut cur = Cursor {
            buf: &self.buf[self.pos..self.len],
            pos: 0,
        };
        let result = decode_record(&mut cur, self.prev_pc, self.prev_addr);
        let (op, prev_addr) = match result {
            Ok(decoded) => decoded,
            Err(DecodeError::Truncated) => {
                return Err(BinaryTraceError::Truncated {
                    ops_decoded: self.ops,
                })
            }
            Err(DecodeError::Corrupt(reason)) => return Err(self.corrupt(reason)),
        };
        self.pos += cur.pos;
        self.prev_pc = op.pc;
        self.prev_addr = prev_addr;
        self.ops += 1;
        Ok(Some(op))
    }

    /// Clears `out` and decodes up to `max` records into it, returning
    /// the count (`0` = end of stream). This is the batched fast path:
    /// the buffer is caller-owned and reused, refill checks are hoisted
    /// out of the per-record loop, and the inner decode runs over a
    /// plain byte slice — so a replay loop does no per-op allocation,
    /// error-checking or buffer management.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](BinaryTraceReader::next_op). Records decoded
    /// before the error are left in `out`.
    pub fn read_chunk(
        &mut self,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        out.clear();
        out.reserve(max.min(1 << 20));
        while out.len() < max {
            if self.len - self.pos < MAX_RECORD_LEN && !self.hit_eof {
                self.refill()?;
            }
            if self.pos == self.len {
                break;
            }
            // Records starting before `guaranteed` are fully buffered;
            // past it (only at EOF) the cursor may legitimately run out,
            // which decode reports as `Truncated`.
            let guaranteed = if self.hit_eof {
                self.len
            } else {
                self.len - MAX_RECORD_LEN + 1
            };
            let mut cur = Cursor {
                buf: &self.buf[..self.len],
                pos: self.pos,
            };
            let (mut prev_pc, mut prev_addr) = (self.prev_pc, self.prev_addr);
            let mut ops = self.ops;
            let mut failure = None;
            while out.len() < max && cur.pos < guaranteed {
                match decode_record(&mut cur, prev_pc, prev_addr) {
                    Ok((op, addr)) => {
                        prev_pc = op.pc;
                        prev_addr = addr;
                        ops += 1;
                        out.push(op);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            self.pos = cur.pos;
            self.prev_pc = prev_pc;
            self.prev_addr = prev_addr;
            self.ops = ops;
            match failure {
                Some(DecodeError::Truncated) => {
                    return Err(BinaryTraceError::Truncated { ops_decoded: ops })
                }
                Some(DecodeError::Corrupt(reason)) => {
                    return Err(BinaryTraceError::Corrupt { op: ops, reason })
                }
                None => {}
            }
        }
        Ok(out.len())
    }
}

impl<R: Read> BinaryTraceReader<R> {
    /// Clears `out` and decodes records into it as bare [`MemRef`]s
    /// until `max` references are buffered or the stream ends, skipping
    /// non-memory records without materialising them. Returns the
    /// reference count (`0` = end of stream).
    ///
    /// This is the chunked sibling of
    /// [`for_each_ref`](BinaryTraceReader::for_each_ref), shaped for
    /// multi-model sweeps (`cac_sim::sweep`): the chunk is decoded
    /// **once** and then replayed against any number of cache models,
    /// so decode cost is amortised across the whole configuration
    /// matrix instead of being paid per configuration.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](BinaryTraceReader::next_op). References
    /// decoded before the error are left in `out`.
    pub fn read_ref_chunk(
        &mut self,
        out: &mut Vec<MemRef>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        out.clear();
        out.reserve(max.min(1 << 20));
        while out.len() < max {
            if self.len - self.pos < MAX_RECORD_LEN && !self.hit_eof {
                self.refill()?;
            }
            if self.pos == self.len {
                break;
            }
            let guaranteed = if self.hit_eof {
                self.len
            } else {
                self.len - MAX_RECORD_LEN + 1
            };
            let mut cur = Cursor {
                buf: &self.buf[..self.len],
                pos: self.pos,
            };
            let (mut prev_pc, mut prev_addr) = (self.prev_pc, self.prev_addr);
            let mut ops = self.ops;
            let mut failure = None;
            while out.len() < max && cur.pos < guaranteed {
                match decode_ref(&mut cur, prev_pc, prev_addr) {
                    Ok((r, pc, addr)) => {
                        prev_pc = pc;
                        prev_addr = addr;
                        ops += 1;
                        if let Some(r) = r {
                            out.push(r);
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            self.pos = cur.pos;
            self.prev_pc = prev_pc;
            self.prev_addr = prev_addr;
            self.ops = ops;
            match failure {
                Some(DecodeError::Truncated) => {
                    return Err(BinaryTraceError::Truncated { ops_decoded: ops })
                }
                Some(DecodeError::Corrupt(reason)) => {
                    return Err(BinaryTraceError::Corrupt { op: ops, reason })
                }
                None => {}
            }
        }
        Ok(out.len())
    }

    /// Decodes the rest of the stream, invoking `f` on every memory
    /// reference, and returns the number of records consumed.
    ///
    /// Decode and consumer run fused in one loop with no intermediate
    /// buffer — the right shape when the consumer is a genuinely
    /// per-reference closure. Batched replay consumers should prefer
    /// [`read_ref_chunk`](BinaryTraceReader::read_ref_chunk) instead:
    /// `cac_sim::replay::run_cache_refs` decodes chunks through it so
    /// each chunk replays on the simulator's specialized probe kernels,
    /// which outruns the fused per-op loop.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](BinaryTraceReader::next_op). References
    /// already delivered to `f` before the error stand.
    pub fn for_each_ref<F: FnMut(MemRef)>(&mut self, mut f: F) -> Result<u64, BinaryTraceError> {
        let mut consumed = 0u64;
        loop {
            if self.len - self.pos < MAX_RECORD_LEN && !self.hit_eof {
                self.refill()?;
            }
            if self.pos == self.len {
                return Ok(consumed);
            }
            let guaranteed = if self.hit_eof {
                self.len
            } else {
                self.len - MAX_RECORD_LEN + 1
            };
            let mut cur = Cursor {
                buf: &self.buf[..self.len],
                pos: self.pos,
            };
            let (mut prev_pc, mut prev_addr) = (self.prev_pc, self.prev_addr);
            let mut ops = self.ops;
            let mut failure = None;
            while cur.pos < guaranteed {
                match decode_ref(&mut cur, prev_pc, prev_addr) {
                    Ok((r, pc, addr)) => {
                        prev_pc = pc;
                        prev_addr = addr;
                        ops += 1;
                        consumed += 1;
                        if let Some(r) = r {
                            f(r);
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            self.pos = cur.pos;
            self.prev_pc = prev_pc;
            self.prev_addr = prev_addr;
            self.ops = ops;
            match failure {
                Some(DecodeError::Truncated) => {
                    return Err(BinaryTraceError::Truncated { ops_decoded: ops })
                }
                Some(DecodeError::Corrupt(reason)) => {
                    return Err(BinaryTraceError::Corrupt { op: ops, reason })
                }
                None => {}
            }
        }
    }
}

/// Decodes one record, keeping only its memory-reference projection.
/// Returns the (optional) reference plus the new pc/addr state.
#[inline(always)]
fn decode_ref(
    cur: &mut Cursor<'_>,
    prev_pc: u64,
    prev_addr: u64,
) -> Result<(Option<MemRef>, u64, u64), DecodeError> {
    let tag = cur.byte()?;
    let pc = prev_pc.wrapping_add(zigzag_decode(cur.varint()?) as u64);
    match tag {
        TAG_LOAD | TAG_STORE => {
            let addr = prev_addr.wrapping_add(zigzag_decode(cur.varint()?) as u64);
            let a = cur.reg()?;
            cur.reg()?;
            if a.is_none() {
                return Err(DecodeError::Corrupt(
                    if tag == TAG_LOAD {
                        "load without destination"
                    } else {
                        "store without data register"
                    }
                    .into(),
                ));
            }
            let r = MemRef {
                pc,
                addr,
                is_write: tag == TAG_STORE,
            };
            Ok((Some(r), pc, addr))
        }
        TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => {
            cur.varint()?;
            cur.reg()?;
            Ok((None, pc, prev_addr))
        }
        t if (t as usize) < COMPUTE_CLASSES.len() => {
            cur.reg()?
                .ok_or_else(|| DecodeError::Corrupt("compute op without destination".into()))?;
            cur.reg()?;
            cur.reg()?;
            Ok((None, pc, prev_addr))
        }
        t => Err(DecodeError::Corrupt(format!("unknown tag byte {t:#x}"))),
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<TraceOp, BinaryTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_op() {
            Ok(Some(op)) => Some(Ok(op)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

impl<R: Read> ChunkSource for BinaryTraceReader<R> {
    type Error = BinaryTraceError;

    fn read_chunk(
        &mut self,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        BinaryTraceReader::read_chunk(self, out, max)
    }
}

impl<R: Read> super::RefSource for BinaryTraceReader<R> {
    type Error = BinaryTraceError;

    fn read_ref_chunk(
        &mut self,
        out: &mut Vec<MemRef>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        BinaryTraceReader::read_ref_chunk(self, out, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::load(0x400, 0x1000, 5, Some(3)),
            TraceOp::load(0x404, 0x2000, 6, None),
            TraceOp::store(0x408, 0x3000, 7, Some(2)),
            TraceOp::branch(0x40c, true, 0x400, Some(1)),
            TraceOp::branch(0x410, false, 0, None),
            TraceOp::compute(0x414, OpClass::IntAlu, 1, [Some(2), Some(3)]),
            TraceOp::compute(0x418, OpClass::FpSqrt, 40, [Some(41), None]),
            TraceOp::compute(0x41c, OpClass::IntDiv, 9, [None, None]),
        ]
    }

    #[test]
    fn round_trip_every_op_kind() {
        let ops = sample_ops();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn round_trip_synthetic_benchmark_prefix() {
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(9).take(5000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn delta_encoding_is_compact() {
        // A sequential pc stream with local addresses: ~4 bytes per
        // memory op, ~4 per compute op.
        let ops: Vec<TraceOp> = (0..1000u64)
            .map(|i| TraceOp::load(0x1_0000 + i * 4, 0x8_0000 + i * 8, 5, Some(3)))
            .collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        // First record pays full-width deltas; every later one is
        // tag + 1-byte pc delta + 1-byte addr delta + 2 register bytes.
        assert!(
            bytes.len() <= HEADER_LEN + MAX_RECORD_LEN + (ops.len() - 1) * 5,
            "{} bytes for {} ops",
            bytes.len(),
            ops.len()
        );
    }

    #[test]
    fn extreme_values_survive() {
        let ops = vec![
            TraceOp::load(u64::MAX, 0, 63, Some(0)),
            TraceOp::load(0, u64::MAX, 0, None),
            TraceOp::branch(u64::MAX / 2, true, u64::MAX, None),
        ];
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            BinaryTraceReader::new(&b"NOPE4567"[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        assert!(matches!(
            BinaryTraceReader::new(&b""[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        let mut bytes = write_trace_binary(Vec::new(), sample_ops()).unwrap();
        bytes[4] = 9;
        assert!(matches!(
            BinaryTraceReader::new(&bytes[..]),
            Err(BinaryTraceError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let ops = sample_ops();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        for cut in 0..bytes.len() {
            let r = BinaryTraceReader::new(&bytes[..cut]);
            match r {
                Err(BinaryTraceError::BadMagic) => assert!(cut < 4),
                Err(BinaryTraceError::Truncated { .. }) => assert!(cut < HEADER_LEN),
                Ok(reader) => {
                    assert!(cut >= HEADER_LEN);
                    let results: Vec<_> = reader.collect();
                    let decoded_ok = results.iter().filter(|r| r.is_ok()).count();
                    assert!(decoded_ok <= ops.len());
                    // A cut either lands on a record boundary (clean
                    // short stream) or yields exactly one final error.
                    if let Some(Err(e)) = results.last() {
                        assert!(matches!(e, BinaryTraceError::Truncated { .. }), "{e}");
                    }
                }
                Err(e) => panic!("unexpected header error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn corrupt_records_are_rejected() {
        // Unknown tag.
        let mut bytes = write_trace_binary(Vec::new(), sample_ops()).unwrap();
        bytes[HEADER_LEN] = 0x3F;
        let err = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .find_map(Result::err)
            .expect("error");
        assert!(
            matches!(err, BinaryTraceError::Corrupt { op: 0, .. }),
            "{err}"
        );

        // Register byte out of range: load record is tag, pc varint,
        // addr varint, dst, base — corrupt the dst byte of op 0.
        let ops = vec![TraceOp::load(1, 1, 5, None)];
        let mut bytes = write_trace_binary(Vec::new(), ops).unwrap();
        let dst_off = bytes.len() - 2;
        bytes[dst_off] = 0x64;
        let err = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .find_map(Result::err)
            .expect("error");
        assert!(matches!(err, BinaryTraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn chunked_reads_match_iteration() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(4).take(3000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while reader.read_chunk(&mut buf, 257).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, ops);
        assert_eq!(reader.ops_decoded(), ops.len() as u64);
    }

    #[test]
    fn ref_chunks_match_for_each_ref() {
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(6).take(4000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut fused = Vec::new();
        BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .for_each_ref(|r| fused.push(r))
            .unwrap();
        for chunk in [1usize, 61, 8192] {
            let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
            let mut buf = Vec::new();
            let mut all = Vec::new();
            while reader.read_ref_chunk(&mut buf, chunk).unwrap() > 0 {
                all.extend_from_slice(&buf);
            }
            assert_eq!(all, fused, "chunk {chunk}");
            assert_eq!(reader.ops_decoded(), ops.len() as u64);
        }
    }

    #[test]
    fn ref_chunks_skip_non_memory_tails() {
        // A stream ending in non-memory ops must still report 0 (not a
        // short non-empty chunk followed by a stuck loop).
        let ops = [
            TraceOp::load(0x400, 0x1000, 5, None),
            TraceOp::branch(0x404, true, 0x400, None),
            TraceOp::compute(0x408, OpClass::IntAlu, 1, [None, None]),
        ];
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(reader.read_ref_chunk(&mut buf, 8).unwrap(), 1);
        assert_eq!(reader.read_ref_chunk(&mut buf, 8).unwrap(), 0);
    }

    #[test]
    fn small_refill_buffers_still_decode() {
        // Force many refills by feeding one byte at a time.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(4).take(50).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(OneByte(&bytes))
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }
}

//! Compact binary trace serialization.
//!
//! The text format parses at a few million ops per second — an order of
//! magnitude below the simulator's batched replay path. This module
//! defines a streaming binary format that closes that gap, so
//! multi-gigabyte externally captured traces (the MIRAGE/birthday-bound
//! style of evaluation) replay at full speed:
//!
//! * an 8-byte header: the [`BINARY_MAGIC`] bytes `CACT`, a format
//!   version byte ([`BINARY_VERSION`]) and three reserved zero bytes;
//! * one record per dynamic instruction: a **tag byte** encoding the op
//!   kind (compute class, load, store, branch taken/not-taken), followed
//!   by kind-specific fields;
//! * program counters and effective addresses are **delta-encoded**
//!   against the previous record (zigzag + LEB128 varint), which turns
//!   the mostly-sequential pc stream and spatially local address stream
//!   into one- or two-byte fields;
//! * register operands are single bytes (`0xFF` = absent).
//!
//! # Version 2: framed, checksummed blocks
//!
//! Version 2 (the current writer output) groups records into
//! independently decodable **blocks** of roughly [`BLOCK_TARGET`]
//! payload bytes. Each block is a 16-byte header — the [`BLOCK_MAGIC`]
//! marker `CBLK`, the payload length, the record count, and a checksum
//! of the payload — followed by the v1-encoded records. The delta state
//! resets at every block start, so one damaged block never corrupts the
//! decode of its neighbours. Version 1 streams (no framing, one
//! continuous record run) are still read transparently.
//!
//! Framing is what makes **lenient decode** possible: a reader in
//! [`DecodeMode::Lenient`] drops a block whose checksum (or structure)
//! does not verify, resynchronizes at the next `CBLK` marker, and keeps
//! going, tallying what it skipped in a [`SkipReport`] instead of
//! failing the stream. Strict mode (the default) reports the first
//! damage as an error positioned by absolute byte offset. Truncation is
//! detected in both versions and both modes: the stream ends either at
//! a block/record boundary (clean EOF) or inside one
//! ([`BinaryTraceError::Truncated`], or a skip tally in lenient mode).
//!
//! # Example
//!
//! ```
//! use cac_trace::io::{BinaryTraceReader, BinaryTraceWriter};
//! use cac_trace::TraceOp;
//!
//! let ops = vec![
//!     TraceOp::load(0x400, 0x1_0000, 5, Some(3)),
//!     TraceOp::store(0x404, 0x1_0008, 7, None),
//!     TraceOp::branch(0x408, true, 0x400, Some(2)),
//! ];
//! let mut w = BinaryTraceWriter::new(Vec::new())?;
//! w.write_all(ops.iter().copied())?;
//! let bytes = w.finish()?;
//! let back: Result<Vec<_>, _> = BinaryTraceReader::new(&bytes[..])?.collect();
//! assert_eq!(back?, ops);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use super::ChunkSource;
use crate::record::{MemRef, OpClass, TraceOp};
use std::fmt;
use std::io::{self, BufWriter, Read, Write};

/// Magic bytes opening every binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"CACT";

/// Current format version (written by [`BinaryTraceWriter::new`]).
/// Versions 1 and 2 are both readable.
pub const BINARY_VERSION: u8 = 2;

/// Header length in bytes: magic, version, three reserved zeros.
pub const HEADER_LEN: usize = 8;

/// Marker bytes opening every version-2 block.
pub const BLOCK_MAGIC: [u8; 4] = *b"CBLK";

/// Version-2 block header length: marker, payload length (u32 LE),
/// record count (u32 LE), payload checksum (u32 LE).
pub const BLOCK_HEADER_LEN: usize = 16;

/// Payload size at which the writer closes the current block. Blocks
/// may exceed this by at most one record.
pub const BLOCK_TARGET: usize = 32 << 10;

/// Largest payload length a reader accepts in a block header. A
/// corrupted length field cannot make the reader buffer an absurd
/// amount of data: anything above this cap is treated as damage.
pub const MAX_BLOCK_LEN: usize = 1 << 20;

/// Upper bound on the encoded size of one record: tag byte, two 10-byte
/// varints, three register bytes.
const MAX_RECORD_LEN: usize = 1 + 10 + 10 + 3;

/// Register-operand byte meaning "absent".
const REG_NONE: u8 = 0xFF;

// Tag-byte kinds. 0..=6 are the compute classes in `OpClass` order;
// memory and branch kinds follow. The high tag bits are reserved and
// must be zero.
const TAG_LOAD: u8 = 7;
const TAG_STORE: u8 = 8;
const TAG_BRANCH_NOT_TAKEN: u8 = 9;
const TAG_BRANCH_TAKEN: u8 = 10;

const COMPUTE_CLASSES: [OpClass; 7] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::FpSqrt,
];

fn compute_tag(class: OpClass) -> u8 {
    COMPUTE_CLASSES
        .iter()
        .position(|&c| c == class)
        .expect("compute class") as u8
}

/// Checksum over a block payload: FNV-1a over 8-byte words (plus a
/// byte-wise tail), folded to 32 bits. Word-wise so verification costs
/// a fraction of record decode on the hot streaming path.
pub fn block_checksum(bytes: &[u8]) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ (bytes.len() as u64);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    (h ^ (h >> 32)) as u32
}

/// Error produced while reading a binary trace.
#[derive(Debug)]
pub enum BinaryTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`BINARY_MAGIC`].
    BadMagic,
    /// The header carries a version this reader does not understand.
    UnsupportedVersion(u8),
    /// The stream ended in the middle of a record, block header or
    /// block payload.
    Truncated {
        /// Number of records successfully decoded before the cut.
        ops_decoded: u64,
        /// Absolute byte offset of the end of the stream.
        offset: u64,
    },
    /// A structurally invalid record or block.
    Corrupt {
        /// 0-based index of the next record (records decoded so far).
        op: u64,
        /// Absolute byte offset of the damage.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for BinaryTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryTraceError::Io(e) => write!(f, "binary trace read failed: {e}"),
            BinaryTraceError::BadMagic => {
                write!(f, "not a binary trace (bad magic; expected `CACT`)")
            }
            BinaryTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported binary trace version {v} (supported: 1-2)")
            }
            BinaryTraceError::Truncated {
                ops_decoded,
                offset,
            } => {
                write!(
                    f,
                    "binary trace truncated at byte {offset} after {ops_decoded} complete records"
                )
            }
            BinaryTraceError::Corrupt { op, offset, reason } => {
                write!(
                    f,
                    "corrupt binary trace at byte {offset} (record {op}): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for BinaryTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinaryTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Coarse failure classification shared by every consumer that must
/// decide between *retrying* and *giving up* — the corpus fleet
/// supervisor, `cac corpus verify`, the chaos harness.
///
/// The split is about what a retry can change, not about severity: an
/// I/O error may be a flaky mount that succeeds on the next attempt,
/// while structural damage (bad magic, truncation, corrupt blocks) is
/// a property of the bytes themselves — re-reading the same file can
/// only reproduce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Retrying the same operation may succeed (transient I/O faults,
    /// flaky mounts, excessive lenient-decode skips from a mid-read
    /// disturbance).
    Transient,
    /// Retrying cannot help: the input itself is wrong (structural
    /// corruption, truncation, unsupported formats, config errors,
    /// model panics).
    Permanent,
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureClass::Transient => "transient",
            FailureClass::Permanent => "permanent",
        })
    }
}

impl FailureClass {
    /// Parses the rendering produced by [`Display`](fmt::Display)
    /// (used by the corpus quarantine manifest).
    pub fn parse(s: &str) -> Option<FailureClass> {
        match s {
            "transient" => Some(FailureClass::Transient),
            "permanent" => Some(FailureClass::Permanent),
            _ => None,
        }
    }
}

impl BinaryTraceError {
    /// The one shared trace-decode classifier: I/O failures are
    /// [`FailureClass::Transient`], structural damage — bad magic,
    /// unsupported versions, truncation, corrupt records or blocks —
    /// is [`FailureClass::Permanent`].
    pub fn failure_class(&self) -> FailureClass {
        match self {
            BinaryTraceError::Io(_) => FailureClass::Transient,
            BinaryTraceError::BadMagic
            | BinaryTraceError::UnsupportedVersion(_)
            | BinaryTraceError::Truncated { .. }
            | BinaryTraceError::Corrupt { .. } => FailureClass::Permanent,
        }
    }
}

impl From<io::Error> for BinaryTraceError {
    fn from(e: io::Error) -> Self {
        BinaryTraceError::Io(e)
    }
}

/// Error-handling policy of a [`BinaryTraceReader`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DecodeMode {
    /// Report the first structural damage as an error (the default).
    #[default]
    Strict,
    /// Skip damaged data and resynchronize at the next block boundary,
    /// tallying what was dropped in a [`SkipReport`]. Only header and
    /// I/O errors still fail the stream. On version-1 streams (no block
    /// framing to resynchronize on) the remaining tail is abandoned at
    /// the first damaged record.
    Lenient,
}

/// What a lenient reader skipped over. All zeros on a clean stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipReport {
    /// Damaged regions skipped: blocks that failed verification, plus
    /// one per resynchronization scan over unrecognizable bytes.
    pub blocks: u64,
    /// Records lost, as claimed by the skipped blocks' headers (exact
    /// when the damage is confined to block payloads; damage to a block
    /// header loses that block's count).
    pub records: u64,
    /// Bytes skipped without being decoded.
    pub bytes: u64,
}

impl SkipReport {
    /// True if anything at all was skipped.
    pub fn any(&self) -> bool {
        *self != SkipReport::default()
    }
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn reg_byte(r: Option<u8>) -> u8 {
    r.unwrap_or(REG_NONE)
}

/// Record-decode failure, positioned by the caller.
enum DecodeError {
    Truncated,
    Corrupt(String),
}

/// Byte cursor over a fully buffered span of the stream.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    #[inline(always)]
    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    #[inline(always)]
    fn varint(&mut self) -> Result<u64, DecodeError> {
        // Unrolled fast paths: delta-encoded streams are dominated by
        // one-byte (sequential pc) and two/three-byte (local address)
        // varints.
        let b = self.byte()?;
        if b < 0x80 {
            return Ok(u64::from(b));
        }
        let mut v = u64::from(b & 0x7F);
        let b = self.byte()?;
        v |= u64::from(b & 0x7F) << 7;
        if b < 0x80 {
            return Ok(v);
        }
        let b = self.byte()?;
        v |= u64::from(b & 0x7F) << 14;
        if b < 0x80 {
            return Ok(v);
        }
        let mut shift = 21u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(DecodeError::Corrupt("varint overflows 64 bits".into()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::Corrupt("varint longer than 10 bytes".into()));
            }
        }
    }

    #[inline(always)]
    fn reg(&mut self) -> Result<Option<u8>, DecodeError> {
        match self.byte()? {
            REG_NONE => Ok(None),
            r if r < 64 => Ok(Some(r)),
            r => Err(bad_register(r)),
        }
    }
}

#[cold]
fn bad_register(r: u8) -> DecodeError {
    DecodeError::Corrupt(format!("register byte {r:#x} out of range"))
}

/// Decodes one record from `cur`, given the previous pc/addr state.
/// Returns the op and the updated previous-address state.
#[inline(always)]
fn decode_record(
    cur: &mut Cursor<'_>,
    prev_pc: u64,
    prev_addr: u64,
) -> Result<(TraceOp, u64), DecodeError> {
    let tag = cur.byte()?;
    let pc = prev_pc.wrapping_add(zigzag_decode(cur.varint()?) as u64);
    let op = match tag {
        TAG_LOAD | TAG_STORE => {
            let addr = prev_addr.wrapping_add(zigzag_decode(cur.varint()?) as u64);
            let a = cur.reg()?;
            let b = cur.reg()?;
            let op = if tag == TAG_LOAD {
                let dst =
                    a.ok_or_else(|| DecodeError::Corrupt("load without destination".into()))?;
                TraceOp::load(pc, addr, dst, b)
            } else {
                let src =
                    a.ok_or_else(|| DecodeError::Corrupt("store without data register".into()))?;
                TraceOp::store(pc, addr, src, b)
            };
            return Ok((op, addr));
        }
        TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => {
            let target = pc.wrapping_add(zigzag_decode(cur.varint()?) as u64);
            let src = cur.reg()?;
            TraceOp::branch(pc, tag == TAG_BRANCH_TAKEN, target, src)
        }
        t if (t as usize) < COMPUTE_CLASSES.len() => {
            let dst = cur
                .reg()?
                .ok_or_else(|| DecodeError::Corrupt("compute op without destination".into()))?;
            let s1 = cur.reg()?;
            let s2 = cur.reg()?;
            TraceOp::compute(pc, COMPUTE_CLASSES[t as usize], dst, [s1, s2])
        }
        t => return Err(DecodeError::Corrupt(format!("unknown tag byte {t:#x}"))),
    };
    Ok((op, prev_addr))
}

/// Streaming writer for the binary format.
///
/// Writes version-2 framed blocks by default
/// ([`new`](BinaryTraceWriter::new)); the unframed version-1 layout
/// remains writable ([`new_v1`](BinaryTraceWriter::new_v1)) for
/// compatibility fixtures. Buffers internally; call
/// [`finish`](BinaryTraceWriter::finish) to flush the final block and
/// recover the underlying writer.
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write> {
    out: BufWriter<W>,
    version: u8,
    /// v1: per-record scratch. v2: the accumulating block payload.
    scratch: Vec<u8>,
    block_records: u32,
    prev_pc: u64,
    prev_addr: u64,
    ops: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a version-2 binary trace on `w`, writing the header
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(w: W) -> io::Result<Self> {
        BinaryTraceWriter::with_version(w, BINARY_VERSION)
    }

    /// Starts a legacy version-1 (unframed) binary trace on `w`. Kept
    /// so compatibility with old readers and fixtures can be exercised;
    /// new traces should use [`new`](BinaryTraceWriter::new).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new_v1(w: W) -> io::Result<Self> {
        BinaryTraceWriter::with_version(w, 1)
    }

    fn with_version(w: W, version: u8) -> io::Result<Self> {
        let mut out = BufWriter::with_capacity(1 << 16, w);
        out.write_all(&BINARY_MAGIC)?;
        out.write_all(&[version, 0, 0, 0])?;
        Ok(BinaryTraceWriter {
            out,
            version,
            scratch: Vec::with_capacity(if version >= 2 {
                BLOCK_TARGET + MAX_RECORD_LEN
            } else {
                MAX_RECORD_LEN
            }),
            block_records: 0,
            prev_pc: 0,
            prev_addr: 0,
            ops: 0,
        })
    }

    /// Number of records written so far.
    pub fn ops_written(&self) -> u64 {
        self.ops
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_op(&mut self, op: TraceOp) -> io::Result<()> {
        if self.version < 2 {
            self.scratch.clear();
        }
        let scratch = &mut self.scratch;
        let pc_delta = zigzag_encode(op.pc.wrapping_sub(self.prev_pc) as i64);
        match op.class {
            OpClass::Load => {
                let addr = op.addr.unwrap_or(0);
                scratch.push(TAG_LOAD);
                write_varint(scratch, pc_delta);
                write_varint(
                    scratch,
                    zigzag_encode(addr.wrapping_sub(self.prev_addr) as i64),
                );
                scratch.push(reg_byte(op.dst));
                scratch.push(reg_byte(op.srcs[0]));
                self.prev_addr = addr;
            }
            OpClass::Store => {
                let addr = op.addr.unwrap_or(0);
                scratch.push(TAG_STORE);
                write_varint(scratch, pc_delta);
                write_varint(
                    scratch,
                    zigzag_encode(addr.wrapping_sub(self.prev_addr) as i64),
                );
                scratch.push(reg_byte(op.srcs[0]));
                scratch.push(reg_byte(op.srcs[1]));
                self.prev_addr = addr;
            }
            OpClass::Branch => {
                scratch.push(if op.taken {
                    TAG_BRANCH_TAKEN
                } else {
                    TAG_BRANCH_NOT_TAKEN
                });
                write_varint(scratch, pc_delta);
                write_varint(scratch, zigzag_encode(op.target.wrapping_sub(op.pc) as i64));
                scratch.push(reg_byte(op.srcs[0]));
            }
            class => {
                scratch.push(compute_tag(class));
                write_varint(scratch, pc_delta);
                scratch.push(reg_byte(op.dst));
                scratch.push(reg_byte(op.srcs[0]));
                scratch.push(reg_byte(op.srcs[1]));
            }
        }
        self.prev_pc = op.pc;
        self.ops += 1;
        if self.version < 2 {
            return self.out.write_all(&self.scratch);
        }
        self.block_records += 1;
        if self.scratch.len() >= BLOCK_TARGET {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Writes the accumulated block (header + payload) and resets the
    /// per-block delta state, matching the reader's per-block reset.
    fn flush_block(&mut self) -> io::Result<()> {
        if self.scratch.is_empty() {
            return Ok(());
        }
        let mut header = [0u8; BLOCK_HEADER_LEN];
        header[..4].copy_from_slice(&BLOCK_MAGIC);
        header[4..8].copy_from_slice(&(self.scratch.len() as u32).to_le_bytes());
        header[8..12].copy_from_slice(&self.block_records.to_le_bytes());
        header[12..16].copy_from_slice(&block_checksum(&self.scratch).to_le_bytes());
        self.out.write_all(&header)?;
        self.out.write_all(&self.scratch)?;
        self.scratch.clear();
        self.block_records = 0;
        self.prev_pc = 0;
        self.prev_addr = 0;
        Ok(())
    }

    /// Appends every op of an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_all<I: IntoIterator<Item = TraceOp>>(&mut self, ops: I) -> io::Result<()> {
        for op in ops {
            self.write_op(op)?;
        }
        Ok(())
    }

    /// Flushes (closing the final block on version 2) and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(mut self) -> io::Result<W> {
        if self.version >= 2 {
            self.flush_block()?;
        }
        self.out
            .into_inner()
            .map_err(io::IntoInnerError::into_error)
    }
}

/// One-call convenience: writes header plus all `ops` to `w` and returns
/// the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_binary<W: Write, I: IntoIterator<Item = TraceOp>>(
    w: W,
    ops: I,
) -> io::Result<W> {
    let mut writer = BinaryTraceWriter::new(w)?;
    writer.write_all(ops)?;
    writer.finish()
}

/// Streaming reader for the binary format (versions 1 and 2).
///
/// Maintains its own refill buffer (no `BufReader` needed underneath)
/// and decodes records either one at a time (the [`Iterator`] impl) or
/// in caller-buffered batches
/// ([`read_chunk`](BinaryTraceReader::read_chunk), the fast path used by
/// `cac_sim::replay`).
///
/// Opened in [`DecodeMode::Strict`] by
/// [`new`](BinaryTraceReader::new) or [`DecodeMode::Lenient`] by
/// [`new_lenient`](BinaryTraceReader::new_lenient); see [`DecodeMode`]
/// for the difference and [`skipped`](BinaryTraceReader::skipped) for
/// the lenient-mode damage tally.
#[derive(Debug)]
pub struct BinaryTraceReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    hit_eof: bool,
    failed: bool,
    mode: DecodeMode,
    version: u8,
    /// Absolute stream offset of `buf[0]`.
    stream_base: u64,
    /// End of the current verified block payload in `buf` (v2 only;
    /// `== pos` when no block is open).
    block_end: usize,
    /// Record count the current block's header claims (v2 only).
    block_records: u64,
    /// `ops` when the current block opened (v2 only).
    block_ops_base: u64,
    blocks: u64,
    skip: SkipReport,
    prev_pc: u64,
    prev_addr: u64,
    ops: u64,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Opens a binary trace in strict mode, validating the header.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::BadMagic`] /
    /// [`BinaryTraceError::UnsupportedVersion`] on a foreign or
    /// newer-versioned stream, [`BinaryTraceError::Truncated`] if the
    /// stream ends inside the header, or an I/O error.
    pub fn new(inner: R) -> Result<Self, BinaryTraceError> {
        BinaryTraceReader::with_mode(inner, DecodeMode::Strict)
    }

    /// Opens a binary trace in lenient mode: damaged blocks are skipped
    /// and tallied instead of failing the stream.
    ///
    /// # Errors
    ///
    /// As for [`new`](BinaryTraceReader::new) — the file header must
    /// still be intact.
    pub fn new_lenient(inner: R) -> Result<Self, BinaryTraceError> {
        BinaryTraceReader::with_mode(inner, DecodeMode::Lenient)
    }

    /// Opens a binary trace with an explicit [`DecodeMode`].
    ///
    /// # Errors
    ///
    /// As for [`new`](BinaryTraceReader::new).
    pub fn with_mode(inner: R, mode: DecodeMode) -> Result<Self, BinaryTraceError> {
        let mut r = BinaryTraceReader {
            inner,
            buf: vec![0; 1 << 16],
            pos: 0,
            len: 0,
            hit_eof: false,
            failed: false,
            mode,
            version: 0,
            stream_base: 0,
            block_end: 0,
            block_records: 0,
            block_ops_base: 0,
            blocks: 0,
            skip: SkipReport::default(),
            prev_pc: 0,
            prev_addr: 0,
            ops: 0,
        };
        r.refill(0)?;
        if r.len < HEADER_LEN {
            let have = r.len.min(BINARY_MAGIC.len());
            if r.len == 0 || r.buf[..have] != BINARY_MAGIC[..have] {
                return Err(BinaryTraceError::BadMagic);
            }
            return Err(BinaryTraceError::Truncated {
                ops_decoded: 0,
                offset: r.len as u64,
            });
        }
        if r.buf[..4] != BINARY_MAGIC {
            return Err(BinaryTraceError::BadMagic);
        }
        if !(1..=BINARY_VERSION).contains(&r.buf[4]) {
            return Err(BinaryTraceError::UnsupportedVersion(r.buf[4]));
        }
        r.version = r.buf[4];
        r.pos = HEADER_LEN;
        r.block_end = r.pos;
        Ok(r)
    }

    /// Number of records decoded so far.
    pub fn ops_decoded(&self) -> u64 {
        self.ops
    }

    /// The stream's format version (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The reader's error-handling mode.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// Verified blocks decoded so far (always 0 on version-1 streams).
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks
    }

    /// What lenient decode has skipped so far (all zeros in strict mode
    /// and on clean streams).
    pub fn skipped(&self) -> SkipReport {
        self.skip
    }

    /// Absolute stream offset of buffer position `pos`.
    fn offset_at(&self, pos: usize) -> u64 {
        self.stream_base + pos as u64
    }

    /// Moves the unconsumed tail to the front of the buffer, grows it
    /// to at least `needed` bytes, and reads until the buffer is full
    /// or the stream ends.
    fn refill(&mut self, needed: usize) -> Result<(), BinaryTraceError> {
        self.stream_base += self.pos as u64;
        self.buf.copy_within(self.pos..self.len, 0);
        self.len -= self.pos;
        self.block_end = self.block_end.saturating_sub(self.pos);
        self.pos = 0;
        if self.buf.len() < needed {
            self.buf.resize(needed, 0);
        }
        while self.len < self.buf.len() && !self.hit_eof {
            match self.inner.read(&mut self.buf[self.len..]) {
                Ok(0) => self.hit_eof = true,
                Ok(n) => self.len += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn truncated(&self) -> BinaryTraceError {
        BinaryTraceError::Truncated {
            ops_decoded: self.ops,
            offset: self.offset_at(self.len),
        }
    }

    fn corrupt_at(&self, pos: usize, reason: impl Into<String>) -> BinaryTraceError {
        BinaryTraceError::Corrupt {
            op: self.ops,
            offset: self.offset_at(pos),
            reason: reason.into(),
        }
    }

    /// Ensures decodable data is buffered at `pos` and returns the
    /// *guard*: the exclusive bound on record **start** positions for
    /// the inner decode loops. `None` means clean end of stream.
    ///
    /// v1: records starting before the guard are guaranteed fully
    /// buffered (except at EOF, where running out is genuine
    /// truncation). v2: the guard is the end of the current verified
    /// block payload.
    fn prepare(&mut self) -> Result<Option<usize>, BinaryTraceError> {
        if self.version >= 2 {
            return self.prepare_block();
        }
        if self.len - self.pos < MAX_RECORD_LEN && !self.hit_eof {
            self.refill(0)?;
        }
        if self.pos == self.len {
            return Ok(None);
        }
        Ok(Some(if self.hit_eof {
            self.len
        } else {
            self.len - MAX_RECORD_LEN + 1
        }))
    }

    /// The exclusive bound the record decoder may read up to (wider
    /// than the guard on v1, where only record *starts* are bounded).
    fn decode_limit(&self) -> usize {
        if self.version >= 2 {
            self.block_end
        } else {
            self.len
        }
    }

    /// v2 [`prepare`](Self::prepare): verifies block framing, skipping
    /// damage in lenient mode.
    fn prepare_block(&mut self) -> Result<Option<usize>, BinaryTraceError> {
        loop {
            if self.pos < self.block_end {
                return Ok(Some(self.block_end));
            }
            if self.len - self.pos < BLOCK_HEADER_LEN && !self.hit_eof {
                self.refill(0)?;
            }
            if self.pos == self.len {
                return Ok(None);
            }
            let avail = self.len - self.pos;
            if avail < BLOCK_HEADER_LEN {
                // EOF inside a block header (or trailing garbage too
                // short to be one).
                if self.mode == DecodeMode::Strict {
                    return Err(self.truncated());
                }
                self.skip.blocks += 1;
                self.skip.bytes += avail as u64;
                self.pos = self.len;
                continue;
            }
            if self.buf[self.pos..self.pos + 4] != BLOCK_MAGIC {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(self.pos, "bad block marker"));
                }
                self.resync()?;
                continue;
            }
            let header = &self.buf[self.pos..self.pos + BLOCK_HEADER_LEN];
            let payload_len =
                u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
            let records = u64::from(u32::from_le_bytes(
                header[8..12].try_into().expect("4 bytes"),
            ));
            let stored_sum = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
            if payload_len > MAX_BLOCK_LEN {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(
                        self.pos + 4,
                        format!("block length {payload_len} exceeds the {MAX_BLOCK_LEN}-byte cap"),
                    ));
                }
                self.resync()?;
                continue;
            }
            let framed = BLOCK_HEADER_LEN + payload_len;
            if self.len - self.pos < framed {
                self.refill(framed)?;
                if self.len - self.pos < framed {
                    // EOF inside the payload.
                    if self.mode == DecodeMode::Strict {
                        return Err(self.truncated());
                    }
                    self.skip.blocks += 1;
                    self.skip.records += records;
                    self.skip.bytes += (self.len - self.pos) as u64;
                    self.pos = self.len;
                    continue;
                }
            }
            let payload = &self.buf[self.pos + BLOCK_HEADER_LEN..self.pos + framed];
            if block_checksum(payload) != stored_sum {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(self.pos + 12, "block checksum mismatch"));
                }
                self.skip.blocks += 1;
                self.skip.records += records;
                self.skip.bytes += framed as u64;
                self.pos += framed;
                continue;
            }
            // Verified: open the block and reset the delta state, the
            // writer's per-block reset mirrored.
            self.pos += BLOCK_HEADER_LEN;
            self.block_end = self.pos + payload_len;
            self.block_records = records;
            self.block_ops_base = self.ops;
            self.blocks += 1;
            self.prev_pc = 0;
            self.prev_addr = 0;
            return Ok(Some(self.block_end));
        }
    }

    /// Lenient-mode resynchronization: the bytes at `pos` do not start
    /// a block, so skip at least one byte and scan forward for the next
    /// [`BLOCK_MAGIC`] marker, refilling as needed.
    fn resync(&mut self) -> Result<(), BinaryTraceError> {
        self.skip.blocks += 1;
        self.pos += 1;
        self.skip.bytes += 1;
        loop {
            while self.len - self.pos >= BLOCK_MAGIC.len() {
                if self.buf[self.pos..self.pos + 4] == BLOCK_MAGIC {
                    return Ok(());
                }
                self.pos += 1;
                self.skip.bytes += 1;
            }
            if self.hit_eof {
                self.skip.bytes += (self.len - self.pos) as u64;
                self.pos = self.len;
                return Ok(());
            }
            self.refill(0)?;
        }
    }

    /// Lenient handling of a damaged record inside a verified v2 block
    /// (possible only if the damage survived the checksum): drop the
    /// rest of the block.
    fn skip_rest_of_block(&mut self) {
        let decoded_here = self.ops - self.block_ops_base;
        self.skip.records += self.block_records.saturating_sub(decoded_here);
        self.skip.blocks += 1;
        self.skip.bytes += (self.block_end - self.pos) as u64;
        self.pos = self.block_end;
    }

    /// Lenient handling of a damaged record on an unframed v1 stream:
    /// with no block boundary to resynchronize on, abandon (and count)
    /// the rest of the stream.
    fn abandon_tail(&mut self) -> Result<(), BinaryTraceError> {
        self.skip.blocks += 1;
        self.skip.bytes += (self.len - self.pos) as u64;
        self.pos = self.len;
        let mut scratch = [0u8; 8192];
        while !self.hit_eof {
            match self.inner.read(&mut scratch) {
                Ok(0) => self.hit_eof = true,
                Ok(n) => self.skip.bytes += n as u64,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Handles a record-decode failure at buffer position `at`: strict
    /// mode returns the positioned error; lenient mode tallies the skip
    /// and returns `Ok` so the caller re-enters [`prepare`](Self::prepare).
    fn record_failure(&mut self, e: DecodeError, at: usize) -> Result<(), BinaryTraceError> {
        match self.mode {
            DecodeMode::Strict => Err(match e {
                DecodeError::Truncated if self.version >= 2 => {
                    self.corrupt_at(at, "record crosses its block boundary")
                }
                DecodeError::Truncated => self.truncated(),
                DecodeError::Corrupt(reason) => self.corrupt_at(at, reason),
            }),
            DecodeMode::Lenient => {
                if self.version >= 2 {
                    self.skip_rest_of_block();
                    Ok(())
                } else {
                    self.abandon_tail()
                }
            }
        }
    }

    /// Decodes the next record, or `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::Truncated`] if the stream stops mid-record,
    /// [`BinaryTraceError::Corrupt`] on invalid blocks/tags/operands,
    /// or an I/O error. Lenient mode reports only header and I/O
    /// errors; structural damage is skipped and tallied instead.
    pub fn next_op(&mut self) -> Result<Option<TraceOp>, BinaryTraceError> {
        loop {
            if self.prepare()?.is_none() {
                return Ok(None);
            }
            let limit = self.decode_limit();
            let at = self.pos;
            let mut cur = Cursor {
                buf: &self.buf[..limit],
                pos: at,
            };
            match decode_record(&mut cur, self.prev_pc, self.prev_addr) {
                Ok((op, prev_addr)) => {
                    self.pos = cur.pos;
                    self.prev_pc = op.pc;
                    self.prev_addr = prev_addr;
                    self.ops += 1;
                    return Ok(Some(op));
                }
                Err(e) => self.record_failure(e, at)?,
            }
        }
    }

    /// Clears `out` and decodes up to `max` records into it, returning
    /// the count (`0` = end of stream). This is the batched fast path:
    /// the buffer is caller-owned and reused, refill and framing checks
    /// are hoisted out of the per-record loop, and the inner decode
    /// runs over a plain byte slice — so a replay loop does no per-op
    /// allocation, error-checking or buffer management.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](BinaryTraceReader::next_op). Records decoded
    /// before the error are left in `out`.
    pub fn read_chunk(
        &mut self,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        out.clear();
        out.reserve(max.min(1 << 20));
        while out.len() < max {
            let Some(guard) = self.prepare()? else { break };
            let limit = self.decode_limit();
            let mut cur = Cursor {
                buf: &self.buf[..limit],
                pos: self.pos,
            };
            let (mut prev_pc, mut prev_addr) = (self.prev_pc, self.prev_addr);
            let mut ops = self.ops;
            let mut failure = None;
            while out.len() < max && cur.pos < guard {
                let at = cur.pos;
                match decode_record(&mut cur, prev_pc, prev_addr) {
                    Ok((op, addr)) => {
                        prev_pc = op.pc;
                        prev_addr = addr;
                        ops += 1;
                        out.push(op);
                    }
                    Err(e) => {
                        failure = Some((e, at));
                        break;
                    }
                }
            }
            self.prev_pc = prev_pc;
            self.prev_addr = prev_addr;
            self.ops = ops;
            match failure {
                Some((e, at)) => {
                    self.pos = at;
                    self.record_failure(e, at)?;
                }
                None => self.pos = cur.pos,
            }
        }
        Ok(out.len())
    }
}

impl<R: Read> BinaryTraceReader<R> {
    /// Clears `out` and decodes records into it as bare [`MemRef`]s
    /// until `max` references are buffered or the stream ends, skipping
    /// non-memory records without materialising them. Returns the
    /// reference count (`0` = end of stream).
    ///
    /// This is the chunked sibling of
    /// [`for_each_ref`](BinaryTraceReader::for_each_ref), shaped for
    /// multi-model sweeps (`cac_sim::sweep`): the chunk is decoded
    /// **once** and then replayed against any number of cache models,
    /// so decode cost is amortised across the whole configuration
    /// matrix instead of being paid per configuration.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](BinaryTraceReader::next_op). References
    /// decoded before the error are left in `out`.
    pub fn read_ref_chunk(
        &mut self,
        out: &mut Vec<MemRef>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        out.clear();
        out.reserve(max.min(1 << 20));
        while out.len() < max {
            let Some(guard) = self.prepare()? else { break };
            let limit = self.decode_limit();
            let mut cur = Cursor {
                buf: &self.buf[..limit],
                pos: self.pos,
            };
            let (mut prev_pc, mut prev_addr) = (self.prev_pc, self.prev_addr);
            let mut ops = self.ops;
            let mut failure = None;
            while out.len() < max && cur.pos < guard {
                let at = cur.pos;
                match decode_ref(&mut cur, prev_pc, prev_addr) {
                    Ok((r, pc, addr)) => {
                        prev_pc = pc;
                        prev_addr = addr;
                        ops += 1;
                        if let Some(r) = r {
                            out.push(r);
                        }
                    }
                    Err(e) => {
                        failure = Some((e, at));
                        break;
                    }
                }
            }
            self.prev_pc = prev_pc;
            self.prev_addr = prev_addr;
            self.ops = ops;
            match failure {
                Some((e, at)) => {
                    self.pos = at;
                    self.record_failure(e, at)?;
                }
                None => self.pos = cur.pos,
            }
        }
        Ok(out.len())
    }

    /// Decodes the rest of the stream, invoking `f` on every memory
    /// reference, and returns the number of records consumed.
    ///
    /// Decode and consumer run fused in one loop with no intermediate
    /// buffer — the right shape when the consumer is a genuinely
    /// per-reference closure. Batched replay consumers should prefer
    /// [`read_ref_chunk`](BinaryTraceReader::read_ref_chunk) instead:
    /// `cac_sim::replay::run_cache_refs` decodes chunks through it so
    /// each chunk replays on the simulator's specialized probe kernels,
    /// which outruns the fused per-op loop.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](BinaryTraceReader::next_op). References
    /// already delivered to `f` before the error stand.
    pub fn for_each_ref<F: FnMut(MemRef)>(&mut self, mut f: F) -> Result<u64, BinaryTraceError> {
        let mut consumed = 0u64;
        loop {
            let Some(guard) = self.prepare()? else {
                return Ok(consumed);
            };
            let limit = self.decode_limit();
            let mut cur = Cursor {
                buf: &self.buf[..limit],
                pos: self.pos,
            };
            let (mut prev_pc, mut prev_addr) = (self.prev_pc, self.prev_addr);
            let mut ops = self.ops;
            let mut failure = None;
            while cur.pos < guard {
                let at = cur.pos;
                match decode_ref(&mut cur, prev_pc, prev_addr) {
                    Ok((r, pc, addr)) => {
                        prev_pc = pc;
                        prev_addr = addr;
                        ops += 1;
                        consumed += 1;
                        if let Some(r) = r {
                            f(r);
                        }
                    }
                    Err(e) => {
                        failure = Some((e, at));
                        break;
                    }
                }
            }
            self.prev_pc = prev_pc;
            self.prev_addr = prev_addr;
            self.ops = ops;
            match failure {
                Some((e, at)) => {
                    self.pos = at;
                    self.record_failure(e, at)?;
                }
                None => self.pos = cur.pos,
            }
        }
    }
}

/// Decodes one record, keeping only its memory-reference projection.
/// Returns the (optional) reference plus the new pc/addr state.
#[inline(always)]
fn decode_ref(
    cur: &mut Cursor<'_>,
    prev_pc: u64,
    prev_addr: u64,
) -> Result<(Option<MemRef>, u64, u64), DecodeError> {
    let tag = cur.byte()?;
    let pc = prev_pc.wrapping_add(zigzag_decode(cur.varint()?) as u64);
    match tag {
        TAG_LOAD | TAG_STORE => {
            let addr = prev_addr.wrapping_add(zigzag_decode(cur.varint()?) as u64);
            let a = cur.reg()?;
            cur.reg()?;
            if a.is_none() {
                return Err(DecodeError::Corrupt(
                    if tag == TAG_LOAD {
                        "load without destination"
                    } else {
                        "store without data register"
                    }
                    .into(),
                ));
            }
            let r = MemRef {
                pc,
                addr,
                is_write: tag == TAG_STORE,
            };
            Ok((Some(r), pc, addr))
        }
        TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => {
            cur.varint()?;
            cur.reg()?;
            Ok((None, pc, prev_addr))
        }
        t if (t as usize) < COMPUTE_CLASSES.len() => {
            cur.reg()?
                .ok_or_else(|| DecodeError::Corrupt("compute op without destination".into()))?;
            cur.reg()?;
            cur.reg()?;
            Ok((None, pc, prev_addr))
        }
        t => Err(DecodeError::Corrupt(format!("unknown tag byte {t:#x}"))),
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = Result<TraceOp, BinaryTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_op() {
            Ok(Some(op)) => Some(Ok(op)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

impl<R: Read> ChunkSource for BinaryTraceReader<R> {
    type Error = BinaryTraceError;

    fn read_chunk(
        &mut self,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        BinaryTraceReader::read_chunk(self, out, max)
    }
}

impl<R: Read> super::RefSource for BinaryTraceReader<R> {
    type Error = BinaryTraceError;

    fn read_ref_chunk(
        &mut self,
        out: &mut Vec<MemRef>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        BinaryTraceReader::read_ref_chunk(self, out, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::load(0x400, 0x1000, 5, Some(3)),
            TraceOp::load(0x404, 0x2000, 6, None),
            TraceOp::store(0x408, 0x3000, 7, Some(2)),
            TraceOp::branch(0x40c, true, 0x400, Some(1)),
            TraceOp::branch(0x410, false, 0, None),
            TraceOp::compute(0x414, OpClass::IntAlu, 1, [Some(2), Some(3)]),
            TraceOp::compute(0x418, OpClass::FpSqrt, 40, [Some(41), None]),
            TraceOp::compute(0x41c, OpClass::IntDiv, 9, [None, None]),
        ]
    }

    /// A big-enough op stream to span several v2 blocks.
    fn multi_block_ops(n: usize) -> Vec<TraceOp> {
        SpecBenchmark::Swim.generator(4).take(n).collect()
    }

    #[test]
    fn round_trip_every_op_kind() {
        let ops = sample_ops();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn round_trip_synthetic_benchmark_prefix() {
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(9).take(5000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn v1_streams_still_read() {
        let ops = multi_block_ops(20_000);
        let mut w = BinaryTraceWriter::new_v1(Vec::new()).unwrap();
        w.write_all(ops.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes[4], 1);
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.version(), 1);
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        assert_eq!(back, ops);
        assert_eq!(reader.blocks_decoded(), 0);
    }

    #[test]
    fn v2_streams_are_blocked() {
        let ops = multi_block_ops(60_000);
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        assert_eq!(bytes[4], 2);
        assert_eq!(bytes[HEADER_LEN..HEADER_LEN + 4], BLOCK_MAGIC);
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        assert_eq!(back, ops);
        assert!(reader.blocks_decoded() > 1, "{}", reader.blocks_decoded());
        assert!(!reader.skipped().any());
    }

    #[test]
    fn delta_encoding_is_compact() {
        // A sequential pc stream with local addresses: ~4 bytes per
        // memory op, ~4 per compute op.
        let ops: Vec<TraceOp> = (0..1000u64)
            .map(|i| TraceOp::load(0x1_0000 + i * 4, 0x8_0000 + i * 8, 5, Some(3)))
            .collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        // First record pays full-width deltas; every later one is
        // tag + 1-byte pc delta + 1-byte addr delta + 2 register bytes.
        // One block header covers the whole 5KB stream.
        assert!(
            bytes.len() <= HEADER_LEN + BLOCK_HEADER_LEN + MAX_RECORD_LEN + (ops.len() - 1) * 5,
            "{} bytes for {} ops",
            bytes.len(),
            ops.len()
        );
    }

    #[test]
    fn extreme_values_survive() {
        let ops = vec![
            TraceOp::load(u64::MAX, 0, 63, Some(0)),
            TraceOp::load(0, u64::MAX, 0, None),
            TraceOp::branch(u64::MAX / 2, true, u64::MAX, None),
        ];
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            BinaryTraceReader::new(&b"NOPE4567"[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        assert!(matches!(
            BinaryTraceReader::new(&b""[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        let mut bytes = write_trace_binary(Vec::new(), sample_ops()).unwrap();
        bytes[4] = 9;
        assert!(matches!(
            BinaryTraceReader::new(&bytes[..]),
            Err(BinaryTraceError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let ops = sample_ops();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        for cut in 0..bytes.len() {
            let r = BinaryTraceReader::new(&bytes[..cut]);
            match r {
                Err(BinaryTraceError::BadMagic) => assert!(cut < 4),
                Err(BinaryTraceError::Truncated { .. }) => assert!(cut < HEADER_LEN),
                Ok(reader) => {
                    assert!(cut >= HEADER_LEN);
                    let results: Vec<_> = reader.collect();
                    let decoded_ok = results.iter().filter(|r| r.is_ok()).count();
                    assert!(decoded_ok <= ops.len());
                    // A cut either lands on a block boundary (clean
                    // short stream) or yields exactly one final error.
                    if let Some(Err(e)) = results.last() {
                        assert!(matches!(e, BinaryTraceError::Truncated { .. }), "{e}");
                    }
                }
                Err(e) => panic!("unexpected header error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn v1_truncation_is_detected_at_every_cut() {
        let ops = sample_ops();
        let mut w = BinaryTraceWriter::new_v1(Vec::new()).unwrap();
        w.write_all(ops.iter().copied()).unwrap();
        let bytes = w.finish().unwrap();
        for cut in HEADER_LEN..bytes.len() {
            let results: Vec<_> = BinaryTraceReader::new(&bytes[..cut]).unwrap().collect();
            let decoded: Vec<TraceOp> = results
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .copied()
                .collect();
            assert_eq!(&decoded[..], &ops[..decoded.len()], "cut {cut}");
            if let Some(Err(e)) = results.last() {
                assert!(matches!(e, BinaryTraceError::Truncated { .. }), "{e}");
            }
        }
    }

    #[test]
    fn corrupt_records_are_rejected() {
        // Destroying the first block marker is structural corruption.
        let mut bytes = write_trace_binary(Vec::new(), sample_ops()).unwrap();
        bytes[HEADER_LEN] = 0x3F;
        let err = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .find_map(Result::err)
            .expect("error");
        assert!(
            matches!(err, BinaryTraceError::Corrupt { op: 0, .. }),
            "{err}"
        );

        // Payload damage is caught by the block checksum.
        let ops = vec![TraceOp::load(1, 1, 5, None)];
        let mut bytes = write_trace_binary(Vec::new(), ops).unwrap();
        let dst_off = bytes.len() - 2;
        bytes[dst_off] = 0x64;
        let err = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .find_map(Result::err)
            .expect("error");
        assert!(matches!(err, BinaryTraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn v1_corrupt_records_are_rejected() {
        // With no checksum, v1 damage is caught at the record decoder:
        // an out-of-range register byte.
        let ops = vec![TraceOp::load(1, 1, 5, None)];
        let mut w = BinaryTraceWriter::new_v1(Vec::new()).unwrap();
        w.write_all(ops).unwrap();
        let mut bytes = w.finish().unwrap();
        let dst_off = bytes.len() - 2;
        bytes[dst_off] = 0x64;
        let err = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .find_map(Result::err)
            .expect("error");
        assert!(
            matches!(err, BinaryTraceError::Corrupt { op: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn errors_carry_stream_offsets() {
        let ops = multi_block_ops(60_000);
        let mut bytes = write_trace_binary(Vec::new(), ops).unwrap();
        // Flip a byte in the *second* block's payload; the error should
        // point at the second block's checksum field, past the first
        // block entirely.
        let first_payload =
            u32::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 8].try_into().unwrap()) as usize;
        let second_block = HEADER_LEN + BLOCK_HEADER_LEN + first_payload;
        assert_eq!(&bytes[second_block..second_block + 4], &BLOCK_MAGIC);
        bytes[second_block + BLOCK_HEADER_LEN + 10] ^= 0xFF;
        let err = BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .find_map(Result::err)
            .expect("error");
        match err {
            BinaryTraceError::Corrupt { op, offset, .. } => {
                assert!(op > 0, "whole first block decoded first");
                assert_eq!(offset, (second_block + 12) as u64);
            }
            e => panic!("expected Corrupt, got {e}"),
        }
    }

    #[test]
    fn lenient_skips_damaged_blocks_and_resumes() {
        let ops = multi_block_ops(60_000);
        let mut bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        // Count blocks and record the second block's claimed records.
        let first_payload =
            u32::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 8].try_into().unwrap()) as usize;
        let second_block = HEADER_LEN + BLOCK_HEADER_LEN + first_payload;
        let second_records = u32::from_le_bytes(
            bytes[second_block + 8..second_block + 12]
                .try_into()
                .unwrap(),
        ) as u64;
        bytes[second_block + BLOCK_HEADER_LEN + 3] ^= 0x10;

        let mut reader = BinaryTraceReader::new_lenient(&bytes[..]).unwrap();
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        let skip = reader.skipped();
        assert_eq!(skip.blocks, 1);
        assert_eq!(skip.records, second_records);
        assert_eq!(back.len() as u64 + skip.records, ops.len() as u64);
        // Everything outside the damaged block decodes exactly.
        let first_count =
            u32::from_le_bytes(bytes[HEADER_LEN + 8..HEADER_LEN + 12].try_into().unwrap()) as usize;
        assert_eq!(&back[..first_count], &ops[..first_count]);
        assert_eq!(
            &back[first_count..],
            &ops[first_count + second_records as usize..]
        );
    }

    #[test]
    fn lenient_resyncs_over_shredded_headers() {
        let ops = multi_block_ops(60_000);
        let mut bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        // Shred the second block's *header* (marker included): the
        // reader must scan to the third block and continue.
        let first_payload =
            u32::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 8].try_into().unwrap()) as usize;
        let second_block = HEADER_LEN + BLOCK_HEADER_LEN + first_payload;
        for b in &mut bytes[second_block..second_block + BLOCK_HEADER_LEN] {
            *b = 0xAA;
        }
        let mut reader = BinaryTraceReader::new_lenient(&bytes[..]).unwrap();
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        assert!(reader.skipped().blocks >= 1);
        assert!(reader.skipped().bytes > 0);
        let first_count =
            u32::from_le_bytes(bytes[HEADER_LEN + 8..HEADER_LEN + 12].try_into().unwrap()) as usize;
        // The first block decodes cleanly, the tail blocks decode
        // cleanly, only the shredded block's records are missing.
        assert_eq!(&back[..first_count], &ops[..first_count]);
        assert!(back.len() < ops.len());
        assert_eq!(&ops[ops.len() - 100..], &back[back.len() - 100..]);
    }

    #[test]
    fn lenient_counts_truncated_tail() {
        let ops = multi_block_ops(60_000);
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let cut = bytes.len() - 1000;
        let mut reader = BinaryTraceReader::new_lenient(&bytes[..cut]).unwrap();
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        assert!(!back.is_empty() && back.len() < ops.len());
        assert_eq!(&back[..], &ops[..back.len()]);
        let skip = reader.skipped();
        assert_eq!(skip.blocks, 1);
        assert!(skip.bytes > 0);
    }

    #[test]
    fn lenient_v1_abandons_tail_on_damage() {
        let ops = sample_ops();
        let mut w = BinaryTraceWriter::new_v1(Vec::new()).unwrap();
        w.write_all(ops.iter().copied()).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[HEADER_LEN] = 0x3F; // unknown tag on record 0
        let mut reader = BinaryTraceReader::new_lenient(&bytes[..]).unwrap();
        let back: Vec<TraceOp> = (&mut reader).map(Result::unwrap).collect();
        assert!(back.is_empty());
        let skip = reader.skipped();
        assert_eq!(skip.bytes, (bytes.len() - HEADER_LEN) as u64);
    }

    #[test]
    fn lenient_matches_strict_on_clean_streams() {
        let ops = multi_block_ops(40_000);
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut strict = BinaryTraceReader::new(&bytes[..]).unwrap();
        let mut lenient = BinaryTraceReader::new_lenient(&bytes[..]).unwrap();
        let mut refs_strict = Vec::new();
        let mut refs_lenient = Vec::new();
        strict.for_each_ref(|r| refs_strict.push(r)).unwrap();
        lenient.for_each_ref(|r| refs_lenient.push(r)).unwrap();
        assert_eq!(refs_strict, refs_lenient);
        assert!(!lenient.skipped().any());
        assert_eq!(strict.ops_decoded(), lenient.ops_decoded());
    }

    #[test]
    fn chunked_reads_match_iteration() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(4).take(3000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while reader.read_chunk(&mut buf, 257).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, ops);
        assert_eq!(reader.ops_decoded(), ops.len() as u64);
    }

    #[test]
    fn ref_chunks_match_for_each_ref() {
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(6).take(4000).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut fused = Vec::new();
        BinaryTraceReader::new(&bytes[..])
            .unwrap()
            .for_each_ref(|r| fused.push(r))
            .unwrap();
        for chunk in [1usize, 61, 8192] {
            let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
            let mut buf = Vec::new();
            let mut all = Vec::new();
            while reader.read_ref_chunk(&mut buf, chunk).unwrap() > 0 {
                all.extend_from_slice(&buf);
            }
            assert_eq!(all, fused, "chunk {chunk}");
            assert_eq!(reader.ops_decoded(), ops.len() as u64);
        }
    }

    #[test]
    fn ref_chunks_skip_non_memory_tails() {
        // A stream ending in non-memory ops must still report 0 (not a
        // short non-empty chunk followed by a stuck loop).
        let ops = [
            TraceOp::load(0x400, 0x1000, 5, None),
            TraceOp::branch(0x404, true, 0x400, None),
            TraceOp::compute(0x408, OpClass::IntAlu, 1, [None, None]),
        ];
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let mut reader = BinaryTraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(reader.read_ref_chunk(&mut buf, 8).unwrap(), 1);
        assert_eq!(reader.read_ref_chunk(&mut buf, 8).unwrap(), 0);
    }

    #[test]
    fn small_refill_buffers_still_decode() {
        // Force many refills by feeding one byte at a time.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(4).take(50).collect();
        let bytes = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = BinaryTraceReader::new(OneByte(&bytes))
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn checksum_distinguishes_lengths_and_content() {
        assert_ne!(block_checksum(b""), block_checksum(b"\0"));
        assert_ne!(block_checksum(b"\0\0"), block_checksum(b"\0"));
        assert_ne!(block_checksum(b"abcdefgh"), block_checksum(b"abcdefgi"));
        assert_eq!(block_checksum(b"abcdefgh"), block_checksum(b"abcdefgh"));
    }
}

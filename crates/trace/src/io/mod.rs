//! Trace serialization: text interchange and compact binary streaming.
//!
//! The paper's evaluation ran captured SPEC95 traces through its
//! simulators; this workspace substitutes synthetic models, but the hook
//! for *real* traces should exist for downstream users. Two on-disk
//! formats are provided:
//!
//! * [`text`] — a line-oriented format (one dynamic instruction per
//!   line, `#` comments). Human-readable and trivial to emit from any
//!   tracing tool, but parsing it tops out far below the simulator's
//!   replay speed.
//! * [`binary`] — a compact streaming format: magic/version header,
//!   one op-kind tag byte per record, and varint **delta-encoded**
//!   addresses, so multi-gigabyte externally captured traces decode at
//!   batched-replay speed (see [`BinaryTraceReader::read_chunk`]).
//!   Version 2 frames records into checksummed blocks, enabling a
//!   lenient decode mode ([`DecodeMode::Lenient`]) that skips damaged
//!   blocks and tallies them in a [`SkipReport`] instead of failing.
//!
//! `cac trace convert` translates between the two; [`sniff_format`]
//! auto-detects which one a file holds.
//!
//! Replay consumers should not care where ops come from — an in-memory
//! vector, a text file, a binary stream. The [`ChunkSource`] trait is
//! that abstraction: it refills a caller-owned buffer with the next
//! batch of ops, which `cac_sim`'s streaming entry points feed straight
//! into the batched `run_trace`/`run_refs` replay loops without
//! per-op allocation.
//!
//! # Example
//!
//! ```
//! use cac_trace::io::{read_trace, write_trace, BinaryTraceReader, BinaryTraceWriter};
//! use cac_trace::spec::SpecBenchmark;
//!
//! let ops: Vec<_> = SpecBenchmark::Swim.generator(1).take(100).collect();
//!
//! // Text round-trip.
//! let mut text = Vec::new();
//! write_trace(&mut text, ops.iter().copied())?;
//! let back: Result<Vec<_>, _> = read_trace(&text[..]).collect();
//! assert_eq!(back?, ops);
//!
//! // Binary round-trip (considerably smaller and faster to decode).
//! let mut w = BinaryTraceWriter::new(Vec::new())?;
//! w.write_all(ops.iter().copied())?;
//! let bytes = w.finish()?;
//! let back: Result<Vec<_>, _> = BinaryTraceReader::new(&bytes[..])?.collect();
//! assert_eq!(back?, ops);
//! assert!(bytes.len() < text.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod binary;
pub mod columnar;
pub mod commitfs;
pub mod text;

pub use binary::{
    block_checksum, write_trace_binary, BinaryTraceError, BinaryTraceReader, BinaryTraceWriter,
    DecodeMode, FailureClass, SkipReport, BINARY_MAGIC, BINARY_VERSION, BLOCK_HEADER_LEN,
    BLOCK_MAGIC, BLOCK_TARGET, HEADER_LEN, MAX_BLOCK_LEN,
};
pub use columnar::{
    col_block_checksum, write_trace_columnar, ColIndexEntry, ColumnBytes, ColumnarFile,
    ColumnarTraceReader, ColumnarTraceWriter, COLUMNAR_VERSION, COL_BLOCK_HEADER_LEN,
    COL_BLOCK_MAGIC, COL_BLOCK_RECORDS, COL_FOOTER_LEN, COL_FOOTER_MAGIC, COL_INDEX_ENTRY_LEN,
    COL_INDEX_MAGIC,
};
pub use commitfs::{CommitFs, DiskFs, FaultFs, FaultPlan};
pub use text::{read_trace, write_trace, ParseTraceError, ReadTrace};

use crate::record::{MemRef, TraceOp};
use std::convert::Infallible;
use std::io::Read;

/// A stream of [`TraceOp`]s delivered in caller-buffered batches.
///
/// This is the glue between trace storage and the simulators' batched
/// replay loops: implementors refill a reusable buffer (no per-op
/// allocation, no per-op `Result`), and consumers like
/// `cac_sim::replay::run_cache` drain it through `Cache::run_trace`.
///
/// Implementations are provided for the binary reader
/// ([`BinaryTraceReader`]), the text reader ([`ReadTrace`]) and
/// in-memory slices ([`SliceSource`]).
pub trait ChunkSource {
    /// Error type produced by the underlying decoder.
    type Error;

    /// Clears `out` and refills it with up to `max` ops. Returns the
    /// number of ops delivered; `0` means the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates decode/read errors from the source.
    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, Self::Error>;
}

/// Default chunk length used by streaming replay loops: large enough to
/// amortise per-chunk overhead, small enough that the op buffer
/// (~48 bytes/op) stays resident in the host's L2 between the decode
/// pass and the replay pass.
pub const DEFAULT_CHUNK_OPS: usize = 1 << 13;

/// [`ChunkSource`] over an in-memory slice of ops (infallible).
///
/// # Example
///
/// ```
/// use cac_trace::io::{ChunkSource, SliceSource};
/// use cac_trace::TraceOp;
///
/// let ops = vec![TraceOp::load(0x400, 0x1000, 5, None); 10];
/// let mut src = SliceSource::new(&ops);
/// let mut buf = Vec::new();
/// assert_eq!(src.read_chunk(&mut buf, 7).unwrap(), 7);
/// assert_eq!(src.read_chunk(&mut buf, 7).unwrap(), 3);
/// assert_eq!(src.read_chunk(&mut buf, 7).unwrap(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    rest: &'a [TraceOp],
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of ops.
    pub fn new(ops: &'a [TraceOp]) -> Self {
        SliceSource { rest: ops }
    }
}

impl ChunkSource for SliceSource<'_> {
    type Error = Infallible;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, Infallible> {
        out.clear();
        let n = self.rest.len().min(max);
        out.extend_from_slice(&self.rest[..n]);
        self.rest = &self.rest[n..];
        Ok(n)
    }
}

impl<R: Read> ChunkSource for ReadTrace<R> {
    type Error = ParseTraceError;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, ParseTraceError> {
        out.clear();
        while out.len() < max {
            match self.next() {
                Some(Ok(op)) => out.push(op),
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(out.len())
    }
}

/// A stream of bare [`MemRef`]s delivered in caller-buffered batches —
/// the decode-once feed of multi-model sweeps.
///
/// [`ChunkSource`] delivers whole [`TraceOp`]s; cache-only consumers
/// (`cac_sim::sweep`, the replay fast paths) never look at the
/// instruction fields, so this trait delivers the memory-reference
/// projection directly. A sweep engine refills **one** reference buffer
/// from the source and fans it out to every model, so varint decode,
/// text parsing or synthetic-trace generation is paid once per sweep
/// instead of once per configuration.
///
/// Implementations are provided for the binary reader
/// ([`BinaryTraceReader::read_ref_chunk`] is the fused fast path), for
/// any [`ChunkSource`] via [`OpRefSource`], and for arbitrary reference
/// iterators (synthetic workloads) via [`IterRefSource`].
pub trait RefSource {
    /// Error type produced by the underlying decoder.
    type Error;

    /// Clears `out` and refills it with up to `max` references. Returns
    /// the number delivered; `0` means the stream is exhausted (sources
    /// skip over non-memory ops rather than delivering short chunks).
    ///
    /// # Errors
    ///
    /// Propagates decode/read errors from the source.
    fn read_ref_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> Result<usize, Self::Error>;
}

/// Mutable references forward, so a caller can stream a source through
/// a generic consumer while keeping ownership (to read skip accounting
/// or decode counters afterwards).
impl<S: RefSource + ?Sized> RefSource for &mut S {
    type Error = S::Error;

    fn read_ref_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> Result<usize, Self::Error> {
        (**self).read_ref_chunk(out, max)
    }
}

/// [`RefSource`] over any reference iterator (infallible) — the bridge
/// from synthetic workload generators to the sweep engine.
///
/// # Example
///
/// ```
/// use cac_trace::io::{IterRefSource, RefSource};
/// use cac_trace::stride::VectorStride;
///
/// let mut src = IterRefSource::new(VectorStride::paper_figure1(4, 1));
/// let mut buf = Vec::new();
/// assert_eq!(src.read_ref_chunk(&mut buf, 50).unwrap(), 50);
/// assert_eq!(src.read_ref_chunk(&mut buf, 50).unwrap(), 14);
/// assert_eq!(src.read_ref_chunk(&mut buf, 50).unwrap(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IterRefSource<I> {
    iter: I,
}

impl<I: Iterator<Item = MemRef>> IterRefSource<I> {
    /// Wraps a reference iterator.
    pub fn new(iter: I) -> Self {
        IterRefSource { iter }
    }
}

impl<I: Iterator<Item = MemRef>> RefSource for IterRefSource<I> {
    type Error = Infallible;

    fn read_ref_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> Result<usize, Infallible> {
        out.clear();
        out.extend(self.iter.by_ref().take(max));
        Ok(out.len())
    }
}

/// [`RefSource`] adapter over any [`ChunkSource`]: decodes op chunks
/// through an internal buffer and keeps only the memory references
/// (text traces, slices — the binary reader has its own fused path).
#[derive(Debug)]
pub struct OpRefSource<S> {
    source: S,
    ops: Vec<TraceOp>,
}

impl<S: ChunkSource> OpRefSource<S> {
    /// Wraps an op-chunk source.
    pub fn new(source: S) -> Self {
        OpRefSource {
            source,
            ops: Vec::new(),
        }
    }
}

impl<S: ChunkSource> RefSource for OpRefSource<S> {
    type Error = S::Error;

    fn read_ref_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> Result<usize, S::Error> {
        out.clear();
        // An op chunk may hold no memory references at all; keep
        // draining so only true exhaustion reports 0.
        while out.len() < max {
            let want = max - out.len();
            if self.source.read_chunk(&mut self.ops, want)? == 0 {
                break;
            }
            out.extend(self.ops.iter().filter_map(TraceOp::mem_ref));
        }
        Ok(out.len())
    }
}

/// On-disk trace format, as detected by [`sniff_format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The line-oriented [`text`] format.
    Text,
    /// The compact row-oriented [`binary`] format (versions 1–2).
    Binary,
    /// The block-compressed [`columnar`] format (version 3).
    Columnar,
}

/// Detects the format of a trace from its first bytes (at least
/// [`BINARY_MAGIC`]`.len() + 1` bytes should be supplied so the version
/// byte distinguishes the row and columnar layouts; fewer than the
/// magic is treated as text, which the text parser will then reject
/// with a line number if it is not).
pub fn sniff_format(prefix: &[u8]) -> TraceFormat {
    if prefix.len() >= BINARY_MAGIC.len() && prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC {
        if prefix.len() > BINARY_MAGIC.len() && prefix[BINARY_MAGIC.len()] == COLUMNAR_VERSION {
            TraceFormat::Columnar
        } else {
            TraceFormat::Binary
        }
    } else {
        TraceFormat::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    #[test]
    fn sniff_distinguishes_formats() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(3).take(10).collect();
        let mut text = Vec::new();
        write_trace(&mut text, ops.iter().copied()).unwrap();
        assert_eq!(sniff_format(&text), TraceFormat::Text);
        let bin = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        assert_eq!(sniff_format(&bin), TraceFormat::Binary);
        let col = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        assert_eq!(sniff_format(&col), TraceFormat::Columnar);
        assert_eq!(sniff_format(b""), TraceFormat::Text);
        assert_eq!(sniff_format(b"CA"), TraceFormat::Text);
        // A bare magic (no version byte) still reads as the row format.
        assert_eq!(sniff_format(b"CACT"), TraceFormat::Binary);
    }

    #[test]
    fn op_ref_source_matches_direct_projection() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(8).take(2000).collect();
        let expect: Vec<MemRef> = ops.iter().filter_map(TraceOp::mem_ref).collect();
        let mut src = OpRefSource::new(SliceSource::new(&ops));
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while src.read_ref_chunk(&mut buf, 97).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, expect);
        // Iterator-backed source delivers the same projection.
        let mut src = IterRefSource::new(expect.iter().copied());
        let mut all = Vec::new();
        while src.read_ref_chunk(&mut buf, 97).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, expect);
    }

    #[test]
    fn text_reader_chunks() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(3).take(100).collect();
        let mut text = Vec::new();
        write_trace(&mut text, ops.iter().copied()).unwrap();
        let mut r = read_trace(&text[..]);
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while r.read_chunk(&mut buf, 33).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, ops);
    }
}

//! Trace serialization: text interchange and compact binary streaming.
//!
//! The paper's evaluation ran captured SPEC95 traces through its
//! simulators; this workspace substitutes synthetic models, but the hook
//! for *real* traces should exist for downstream users. Two on-disk
//! formats are provided:
//!
//! * [`text`] — a line-oriented format (one dynamic instruction per
//!   line, `#` comments). Human-readable and trivial to emit from any
//!   tracing tool, but parsing it tops out far below the simulator's
//!   replay speed.
//! * [`binary`] — a compact streaming format: magic/version header,
//!   one op-kind tag byte per record, and varint **delta-encoded**
//!   addresses, so multi-gigabyte externally captured traces decode at
//!   batched-replay speed (see [`BinaryTraceReader::read_chunk`]).
//!
//! `cac trace convert` translates between the two; [`sniff_format`]
//! auto-detects which one a file holds.
//!
//! Replay consumers should not care where ops come from — an in-memory
//! vector, a text file, a binary stream. The [`ChunkSource`] trait is
//! that abstraction: it refills a caller-owned buffer with the next
//! batch of ops, which `cac_sim`'s streaming entry points feed straight
//! into the batched `run_trace`/`run_refs` replay loops without
//! per-op allocation.
//!
//! # Example
//!
//! ```
//! use cac_trace::io::{read_trace, write_trace, BinaryTraceReader, BinaryTraceWriter};
//! use cac_trace::spec::SpecBenchmark;
//!
//! let ops: Vec<_> = SpecBenchmark::Swim.generator(1).take(100).collect();
//!
//! // Text round-trip.
//! let mut text = Vec::new();
//! write_trace(&mut text, ops.iter().copied())?;
//! let back: Result<Vec<_>, _> = read_trace(&text[..]).collect();
//! assert_eq!(back?, ops);
//!
//! // Binary round-trip (considerably smaller and faster to decode).
//! let mut w = BinaryTraceWriter::new(Vec::new())?;
//! w.write_all(ops.iter().copied())?;
//! let bytes = w.finish()?;
//! let back: Result<Vec<_>, _> = BinaryTraceReader::new(&bytes[..])?.collect();
//! assert_eq!(back?, ops);
//! assert!(bytes.len() < text.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod binary;
pub mod text;

pub use binary::{
    write_trace_binary, BinaryTraceError, BinaryTraceReader, BinaryTraceWriter, BINARY_MAGIC,
    BINARY_VERSION, HEADER_LEN,
};
pub use text::{read_trace, write_trace, ParseTraceError, ReadTrace};

use crate::record::TraceOp;
use std::convert::Infallible;
use std::io::Read;

/// A stream of [`TraceOp`]s delivered in caller-buffered batches.
///
/// This is the glue between trace storage and the simulators' batched
/// replay loops: implementors refill a reusable buffer (no per-op
/// allocation, no per-op `Result`), and consumers like
/// `cac_sim::replay::run_cache` drain it through `Cache::run_trace`.
///
/// Implementations are provided for the binary reader
/// ([`BinaryTraceReader`]), the text reader ([`ReadTrace`]) and
/// in-memory slices ([`SliceSource`]).
pub trait ChunkSource {
    /// Error type produced by the underlying decoder.
    type Error;

    /// Clears `out` and refills it with up to `max` ops. Returns the
    /// number of ops delivered; `0` means the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates decode/read errors from the source.
    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, Self::Error>;
}

/// Default chunk length used by streaming replay loops: large enough to
/// amortise per-chunk overhead, small enough that the op buffer
/// (~48 bytes/op) stays resident in the host's L2 between the decode
/// pass and the replay pass.
pub const DEFAULT_CHUNK_OPS: usize = 1 << 13;

/// [`ChunkSource`] over an in-memory slice of ops (infallible).
///
/// # Example
///
/// ```
/// use cac_trace::io::{ChunkSource, SliceSource};
/// use cac_trace::TraceOp;
///
/// let ops = vec![TraceOp::load(0x400, 0x1000, 5, None); 10];
/// let mut src = SliceSource::new(&ops);
/// let mut buf = Vec::new();
/// assert_eq!(src.read_chunk(&mut buf, 7).unwrap(), 7);
/// assert_eq!(src.read_chunk(&mut buf, 7).unwrap(), 3);
/// assert_eq!(src.read_chunk(&mut buf, 7).unwrap(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    rest: &'a [TraceOp],
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of ops.
    pub fn new(ops: &'a [TraceOp]) -> Self {
        SliceSource { rest: ops }
    }
}

impl ChunkSource for SliceSource<'_> {
    type Error = Infallible;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, Infallible> {
        out.clear();
        let n = self.rest.len().min(max);
        out.extend_from_slice(&self.rest[..n]);
        self.rest = &self.rest[n..];
        Ok(n)
    }
}

impl<R: Read> ChunkSource for ReadTrace<R> {
    type Error = ParseTraceError;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, ParseTraceError> {
        out.clear();
        while out.len() < max {
            match self.next() {
                Some(Ok(op)) => out.push(op),
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(out.len())
    }
}

/// On-disk trace format, as detected by [`sniff_format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The line-oriented [`text`] format.
    Text,
    /// The compact [`binary`] format.
    Binary,
}

/// Detects the format of a trace from its first bytes (at least
/// [`BINARY_MAGIC`]`.len()` bytes should be supplied; fewer is treated
/// as text, which the text parser will then reject with a line number
/// if it is not).
pub fn sniff_format(prefix: &[u8]) -> TraceFormat {
    if prefix.len() >= BINARY_MAGIC.len() && prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC {
        TraceFormat::Binary
    } else {
        TraceFormat::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    #[test]
    fn sniff_distinguishes_formats() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(3).take(10).collect();
        let mut text = Vec::new();
        write_trace(&mut text, ops.iter().copied()).unwrap();
        assert_eq!(sniff_format(&text), TraceFormat::Text);
        let bin = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        assert_eq!(sniff_format(&bin), TraceFormat::Binary);
        assert_eq!(sniff_format(b""), TraceFormat::Text);
        assert_eq!(sniff_format(b"CA"), TraceFormat::Text);
    }

    #[test]
    fn text_reader_chunks() {
        let ops: Vec<TraceOp> = SpecBenchmark::Swim.generator(3).take(100).collect();
        let mut text = Vec::new();
        write_trace(&mut text, ops.iter().copied()).unwrap();
        let mut r = read_trace(&text[..]);
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while r.read_chunk(&mut buf, 33).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, ops);
    }
}

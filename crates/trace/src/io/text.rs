//! Plain-text trace serialization.
//!
//! This is the *interchange* format: one dynamic instruction per line,
//! `#` comments, whitespace-separated fields — easy to produce from any
//! external tool (a Pin/DynamoRIO client, a QEMU plugin, another
//! simulator) and easy to inspect with standard text tools. For replay
//! at simulator speed use the [compact binary format](super::binary)
//! instead; `cac trace convert` translates between the two.
//!
//! Format, by op kind (registers are architectural numbers, `-` = none;
//! numbers may be decimal or `0x`-prefixed hex):
//!
//! ```text
//! # kind pc      fields...
//! L      0x400   0x10000  5  3      # load  addr dst base
//! S      0x404   0x10008  7  -      # store addr src base
//! B      0x408   1  0x400  2        # branch taken target src
//! C      0x40c   fmul 33 32 34      # compute class dst src1 src2
//! ```
//!
//! # Example
//!
//! ```
//! use cac_trace::io::{read_trace, write_trace};
//! use cac_trace::spec::SpecBenchmark;
//!
//! let ops: Vec<_> = SpecBenchmark::Swim.generator(1).take(100).collect();
//! let mut text = Vec::new();
//! write_trace(&mut text, ops.iter().copied())?;
//! let back: Result<Vec<_>, _> = read_trace(&text[..]).collect();
//! assert_eq!(back?, ops);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::record::{OpClass, TraceOp};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error produced while parsing a trace line.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number and an explanation.
    Malformed {
        /// 1-based line number.
        line: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace read failed: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

fn class_name(class: OpClass) -> &'static str {
    match class {
        OpClass::IntAlu => "int",
        OpClass::IntMul => "imul",
        OpClass::IntDiv => "idiv",
        OpClass::FpAdd => "fadd",
        OpClass::FpMul => "fmul",
        OpClass::FpDiv => "fdiv",
        OpClass::FpSqrt => "fsqrt",
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::Branch => "br",
    }
}

fn class_from_name(name: &str) -> Option<OpClass> {
    Some(match name {
        "int" => OpClass::IntAlu,
        "imul" => OpClass::IntMul,
        "idiv" => OpClass::IntDiv,
        "fadd" => OpClass::FpAdd,
        "fmul" => OpClass::FpMul,
        "fdiv" => OpClass::FpDiv,
        "fsqrt" => OpClass::FpSqrt,
        _ => return None,
    })
}

fn reg(r: Option<u8>) -> String {
    match r {
        Some(r) => r.to_string(),
        None => "-".to_owned(),
    }
}

/// Writes a trace in the module's text format. A `&mut Vec<u8>` or any
/// other `Write` implementor can be passed by mutable reference.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, I: IntoIterator<Item = TraceOp>>(mut w: W, ops: I) -> io::Result<()> {
    for op in ops {
        match op.class {
            OpClass::Load => writeln!(
                w,
                "L {:#x} {:#x} {} {}",
                op.pc,
                op.addr.unwrap_or(0),
                reg(op.dst),
                reg(op.srcs[0]),
            )?,
            OpClass::Store => writeln!(
                w,
                "S {:#x} {:#x} {} {}",
                op.pc,
                op.addr.unwrap_or(0),
                reg(op.srcs[0]),
                reg(op.srcs[1]),
            )?,
            OpClass::Branch => writeln!(
                w,
                "B {:#x} {} {:#x} {}",
                op.pc,
                u8::from(op.taken),
                op.target,
                reg(op.srcs[0]),
            )?,
            class => writeln!(
                w,
                "C {:#x} {} {} {} {}",
                op.pc,
                class_name(class),
                reg(op.dst),
                reg(op.srcs[0]),
                reg(op.srcs[1]),
            )?,
        }
    }
    Ok(())
}

/// Streaming reader over the module's text format: yields one
/// [`TraceOp`] per non-comment, non-empty line.
///
/// Reading stops at the first error; the iterator yields it and then
/// `None`.
pub fn read_trace<R: Read>(reader: R) -> ReadTrace<R> {
    ReadTrace {
        lines: BufReader::new(reader),
        line_no: 0,
        failed: false,
    }
}

/// Iterator returned by [`read_trace`].
#[derive(Debug)]
pub struct ReadTrace<R: Read> {
    lines: BufReader<R>,
    line_no: u64,
    failed: bool,
}

impl<R: Read> ReadTrace<R> {
    fn bad(&self, reason: impl Into<String>) -> ParseTraceError {
        ParseTraceError::Malformed {
            line: self.line_no,
            reason: reason.into(),
        }
    }

    fn parse_u64(&self, field: &str) -> Result<u64, ParseTraceError> {
        let parsed = if let Some(hex) = field.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            field.parse()
        };
        parsed.map_err(|_| self.bad(format!("bad number {field:?}")))
    }

    fn parse_reg(&self, field: &str) -> Result<Option<u8>, ParseTraceError> {
        if field == "-" {
            return Ok(None);
        }
        field
            .parse::<u8>()
            .ok()
            .filter(|&r| r < 64)
            .map(Some)
            .ok_or_else(|| self.bad(format!("bad register {field:?} (0..=63 or '-')")))
    }

    fn parse_line(&self, line: &str) -> Result<Option<TraceOp>, ParseTraceError> {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            return Ok(None);
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        let expect = |n: usize| -> Result<(), ParseTraceError> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(self.bad(format!("expected {n} fields, found {}", fields.len())))
            }
        };
        let op = match fields[0] {
            "L" => {
                expect(5)?;
                TraceOp::load(
                    self.parse_u64(fields[1])?,
                    self.parse_u64(fields[2])?,
                    self.parse_reg(fields[3])?
                        .ok_or_else(|| self.bad("load needs a destination register"))?,
                    self.parse_reg(fields[4])?,
                )
            }
            "S" => {
                expect(5)?;
                TraceOp::store(
                    self.parse_u64(fields[1])?,
                    self.parse_u64(fields[2])?,
                    self.parse_reg(fields[3])?
                        .ok_or_else(|| self.bad("store needs a data register"))?,
                    self.parse_reg(fields[4])?,
                )
            }
            "B" => {
                expect(5)?;
                let taken = match fields[2] {
                    "0" => false,
                    "1" => true,
                    other => return Err(self.bad(format!("bad taken flag {other:?}"))),
                };
                TraceOp::branch(
                    self.parse_u64(fields[1])?,
                    taken,
                    self.parse_u64(fields[3])?,
                    self.parse_reg(fields[4])?,
                )
            }
            "C" => {
                expect(6)?;
                let class = class_from_name(fields[2])
                    .ok_or_else(|| self.bad(format!("unknown op class {:?}", fields[2])))?;
                TraceOp::compute(
                    self.parse_u64(fields[1])?,
                    class,
                    self.parse_reg(fields[3])?
                        .ok_or_else(|| self.bad("compute needs a destination register"))?,
                    [self.parse_reg(fields[4])?, self.parse_reg(fields[5])?],
                )
            }
            other => return Err(self.bad(format!("unknown record kind {other:?}"))),
        };
        Ok(Some(op))
    }
}

impl<R: Read> Iterator for ReadTrace<R> {
    type Item = Result<TraceOp, ParseTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            let mut line = String::new();
            self.line_no += 1;
            match self.lines.read_line(&mut line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            }
            match self.parse_line(&line) {
                Ok(None) => continue,
                Ok(Some(op)) => return Some(Ok(op)),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    #[test]
    fn round_trip_every_op_kind() {
        let ops = vec![
            TraceOp::load(0x400, 0x1000, 5, Some(3)),
            TraceOp::load(0x404, 0x2000, 6, None),
            TraceOp::store(0x408, 0x3000, 7, Some(2)),
            TraceOp::branch(0x40c, true, 0x400, Some(1)),
            TraceOp::branch(0x410, false, 0, None),
            TraceOp::compute(0x414, OpClass::IntAlu, 1, [Some(2), Some(3)]),
            TraceOp::compute(0x418, OpClass::FpSqrt, 40, [Some(41), None]),
            TraceOp::compute(0x41c, OpClass::IntDiv, 9, [None, None]),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = read_trace(&buf[..]).map(Result::unwrap).collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn round_trip_synthetic_benchmark_prefix() {
        let ops: Vec<TraceOp> = SpecBenchmark::Tomcatv.generator(9).take(5000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = read_trace(&buf[..]).map(Result::unwrap).collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n# header comment\nL 0x400 0x1000 5 -  # inline comment\n\n";
        let ops: Vec<TraceOp> = read_trace(text.as_bytes()).map(Result::unwrap).collect();
        assert_eq!(ops, vec![TraceOp::load(0x400, 0x1000, 5, None)]);
    }

    #[test]
    fn decimal_and_hex_numbers_both_parse() {
        let text = "L 1024 4096 5 -\nL 0x400 0x1000 5 -\n";
        let ops: Vec<TraceOp> = read_trace(text.as_bytes()).map(Result::unwrap).collect();
        assert_eq!(ops[0], ops[1]);
    }

    #[test]
    fn errors_carry_line_numbers_and_stop_iteration() {
        let text = "L 0x400 0x1000 5 -\nX what is this\nL 0x400 0x1000 5 -\n";
        let results: Vec<_> = read_trace(text.as_bytes()).collect();
        assert_eq!(results.len(), 2, "iteration stops at the first error");
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 2, .. }));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn malformed_fields_are_rejected() {
        for bad in [
            "L 0x400 0x1000 - -",   // load without destination
            "L 0x400 0x1000 64 -",  // register out of range
            "L 0x400 zzz 5 -",      // bad number
            "B 0x400 2 0x400 -",    // bad taken flag
            "C 0x400 nosuch 1 - -", // unknown class
            "S 0x400 0x1000 1",     // missing field
        ] {
            let mut it = read_trace(bad.as_bytes());
            assert!(matches!(it.next(), Some(Err(_))), "{bad:?} should fail");
        }
    }
}

//! Block-compressed columnar trace storage (format version 3).
//!
//! The row-oriented v2 format ([`super::binary`]) interleaves every
//! record's fields, so the decoder pays a branchy tag dispatch per
//! record and the compressor sees pc deltas, address deltas and register
//! bytes shuffled together. Version 3 — the corpus storage tier —
//! splits each block into **columns**:
//!
//! * a 4-bit packed **tag** column (two records per byte);
//! * the **pc delta** column: zigzag deltas against the previous
//!   record's pc, bit-packed in miniblocks of 64 values (one width byte
//!   then `ceil(64·w/8)` payload bytes; width 0 encodes an all-zero run,
//!   the RLE fast path for tight loops);
//! * the **address delta** column (one entry per load/store), same
//!   miniblock bit-packing;
//! * the **branch target delta** column (one entry per branch, relative
//!   to the branch's own pc);
//! * the raw **register** column (compute ops contribute 3 bytes,
//!   loads/stores 2, branches 1, in record order).
//!
//! Each block is framed by a 20-byte header — the [`COL_BLOCK_MAGIC`]
//! marker `CCOL`, payload length, record count, memory-reference count
//! and a checksum binding the payload *and* both counts — so damage to
//! any header field or payload byte is detected before a single column
//! is interpreted. Delta state resets at every block, exactly like v2,
//! so blocks decode independently.
//!
//! After the last block the writer emits a **block index** (`CIDX`): one
//! 20-byte entry per block (absolute file offset, record count,
//! reference count, block checksum) plus its own checksum, and a
//! 16-byte `CEND` footer holding the index offset. [`ColumnarFile`]
//! reads the footer and index in two seeks and then serves any block in
//! O(1) — the seam the corpus tier (`cac corpus`) builds on. The
//! streaming reader ([`ColumnarTraceReader`]) works over any
//! [`Read`] — including a fault-injecting wrapper — and validates the
//! index when it reaches it, so a truncated tail (even one cut exactly
//! at a block boundary) is always detected.
//!
//! # Example
//!
//! ```
//! use cac_trace::io::{ColumnarTraceReader, ColumnarTraceWriter};
//! use cac_trace::TraceOp;
//!
//! let ops = vec![
//!     TraceOp::load(0x400, 0x1_0000, 5, Some(3)),
//!     TraceOp::store(0x404, 0x1_0008, 7, None),
//!     TraceOp::branch(0x408, true, 0x400, Some(2)),
//! ];
//! let mut w = ColumnarTraceWriter::new(Vec::new())?;
//! w.write_all(ops.iter().copied())?;
//! let bytes = w.finish()?;
//! let back: Result<Vec<_>, _> = ColumnarTraceReader::new(&bytes[..])?.collect();
//! assert_eq!(back?, ops);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use super::binary::{block_checksum, BinaryTraceError, DecodeMode, SkipReport};
use super::{ChunkSource, BINARY_MAGIC, HEADER_LEN, MAX_BLOCK_LEN};
use crate::record::{MemRef, OpClass, TraceOp};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};

/// Header version byte identifying the columnar format.
pub const COLUMNAR_VERSION: u8 = 3;

/// Marker bytes opening every columnar block.
pub const COL_BLOCK_MAGIC: [u8; 4] = *b"CCOL";

/// Marker bytes opening the trailing block index.
pub const COL_INDEX_MAGIC: [u8; 4] = *b"CIDX";

/// Marker bytes closing the 16-byte footer (and the file).
pub const COL_FOOTER_MAGIC: [u8; 4] = *b"CEND";

/// Columnar block header length: marker, payload length (u32 LE),
/// record count (u32 LE), memory-reference count (u32 LE), checksum
/// (u32 LE).
pub const COL_BLOCK_HEADER_LEN: usize = 20;

/// Records per block written by [`ColumnarTraceWriter`].
pub const COL_BLOCK_RECORDS: usize = 4096;

/// Size of one index entry: offset (u64 LE), record count (u32 LE),
/// reference count (u32 LE), block checksum (u32 LE).
pub const COL_INDEX_ENTRY_LEN: usize = 20;

/// Footer length: index offset (u64 LE), entry count (u32 LE), the
/// [`COL_FOOTER_MAGIC`] bytes.
pub const COL_FOOTER_LEN: usize = 16;

/// Miniblock width used by the delta columns.
const MINIBLOCK: usize = 64;

/// Upper bound on the record count a block header may claim; anything
/// above is treated as damage before any allocation happens.
const MAX_BLOCK_RECORDS: u32 = 1 << 20;

/// Register-operand byte meaning "absent" (shared with v1/v2).
const REG_NONE: u8 = 0xFF;

// Tag nibbles: identical numbering to the v2 tag byte, so 0..=6 are the
// compute classes in `OpClass` order. A nibble above TAG_BRANCH_TAKEN
// is structurally invalid.
const TAG_LOAD: u8 = 7;
const TAG_STORE: u8 = 8;
const TAG_BRANCH_NOT_TAKEN: u8 = 9;
const TAG_BRANCH_TAKEN: u8 = 10;

const COMPUTE_CLASSES: [OpClass; 7] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::FpSqrt,
];

fn compute_tag(class: OpClass) -> u8 {
    COMPUTE_CLASSES
        .iter()
        .position(|&c| c == class)
        .expect("compute class") as u8
}

/// Register bytes a record of `tag` contributes to the register column.
fn regs_for_tag(tag: u8) -> usize {
    match tag {
        TAG_LOAD | TAG_STORE => 2,
        TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => 1,
        _ => 3,
    }
}

/// Checksum stored in a columnar block header: the payload checksum
/// XOR-mixed with both header counts, so a flipped count field fails
/// verification exactly like a flipped payload byte.
pub fn col_block_checksum(payload: &[u8], records: u32, refs: u32) -> u32 {
    block_checksum(payload) ^ records.rotate_left(16) ^ refs.wrapping_mul(0x9E37_79B9)
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn reg_byte(r: Option<u8>) -> u8 {
    r.unwrap_or(REG_NONE)
}

/// Bit-packs `vals` as miniblocks of [`MINIBLOCK`] values: one width
/// byte (0..=64) then the values in little-endian bit order. Width 0
/// carries no payload — the all-zero run.
fn pack_deltas(out: &mut Vec<u8>, vals: &[u64]) {
    for chunk in vals.chunks(MINIBLOCK) {
        let width = chunk
            .iter()
            .map(|&v| 64 - v.leading_zeros())
            .max()
            .unwrap_or(0) as u8;
        out.push(width);
        if width == 0 {
            continue;
        }
        let mut acc: u128 = 0;
        let mut nbits = 0u32;
        for &v in chunk {
            acc |= u128::from(v) << nbits;
            nbits += u32::from(width);
            while nbits >= 8 {
                out.push(acc as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push(acc as u8);
        }
    }
}

/// Inverse of [`pack_deltas`]: reads exactly `count` values from
/// `bytes`, which must contain the miniblock stream and nothing else.
fn unpack_deltas(bytes: &[u8], count: usize, out: &mut Vec<u64>) -> Result<(), String> {
    out.clear();
    out.reserve(count);
    let mut pos = 0usize;
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(MINIBLOCK);
        let width = *bytes
            .get(pos)
            .ok_or_else(|| "delta column ends inside a miniblock header".to_string())?;
        pos += 1;
        if width > 64 {
            return Err(format!("miniblock width {width} exceeds 64 bits"));
        }
        if width == 0 {
            out.extend(std::iter::repeat_n(0u64, take));
            remaining -= take;
            continue;
        }
        let nbytes = (take * width as usize).div_ceil(8);
        let packed = bytes
            .get(pos..pos + nbytes)
            .ok_or_else(|| "delta column ends inside a miniblock payload".to_string())?;
        pos += nbytes;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        // Fast path: while a full 8-byte window fits inside the
        // miniblock, each value is one unaligned little-endian load
        // plus a shift — widths up to 56 keep the value inside the
        // window regardless of bit offset.
        let mut done = 0usize;
        let mut bit = 0usize;
        if width <= 56 {
            while done < take {
                let byte = bit >> 3;
                if byte + 8 > packed.len() {
                    break;
                }
                let word = u64::from_le_bytes(packed[byte..byte + 8].try_into().expect("8 bytes"));
                out.push((word >> (bit & 7)) & mask);
                bit += width as usize;
                done += 1;
            }
        }
        // Tail (and the rare >56-bit widths): accumulator decode over
        // the remaining bytes, starting mid-byte if the fast path
        // stopped on an unaligned boundary.
        let mut bytes_it = packed[bit >> 3..].iter();
        let mut acc: u128 = 0;
        let mut nbits = 0u32;
        if bit & 7 != 0 {
            acc = u128::from(*bytes_it.next().expect("sized above")) >> (bit & 7);
            nbits = 8 - (bit & 7) as u32;
        }
        for _ in done..take {
            while nbits < u32::from(width) {
                acc |= u128::from(*bytes_it.next().expect("sized above")) << nbits;
                nbits += 8;
            }
            out.push((acc as u64) & mask);
            acc >>= width;
            nbits -= u32::from(width);
        }
        remaining -= take;
    }
    if pos != bytes.len() {
        return Err(format!(
            "delta column carries {} trailing bytes",
            bytes.len() - pos
        ));
    }
    Ok(())
}

/// One entry of the trailing block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColIndexEntry {
    /// Absolute file offset of the block's `CCOL` marker.
    pub offset: u64,
    /// Records the block holds.
    pub records: u32,
    /// Memory references (loads + stores) among those records.
    pub refs: u32,
    /// The block's stored checksum (see [`col_block_checksum`]).
    pub checksum: u32,
}

impl ColIndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.refs.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> ColIndexEntry {
        ColIndexEntry {
            offset: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            records: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            refs: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
            checksum: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
        }
    }
}

/// Streaming writer for the columnar format.
///
/// Accumulates [`COL_BLOCK_RECORDS`] records of column state, flushes
/// them as one checksummed `CCOL` block, and appends the `CIDX` block
/// index plus `CEND` footer on [`finish`](ColumnarTraceWriter::finish).
#[derive(Debug)]
pub struct ColumnarTraceWriter<W: Write> {
    out: BufWriter<W>,
    tags: Vec<u8>,
    pc_deltas: Vec<u64>,
    mem_deltas: Vec<u64>,
    target_deltas: Vec<u64>,
    regs: Vec<u8>,
    prev_pc: u64,
    prev_addr: u64,
    ops: u64,
    offset: u64,
    index: Vec<ColIndexEntry>,
    payload: Vec<u8>,
}

impl<W: Write> ColumnarTraceWriter<W> {
    /// Starts a columnar trace on `w`, writing the 8-byte `CACT`
    /// version-3 header immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(w: W) -> io::Result<Self> {
        let mut out = BufWriter::with_capacity(1 << 16, w);
        out.write_all(&BINARY_MAGIC)?;
        out.write_all(&[COLUMNAR_VERSION, 0, 0, 0])?;
        Ok(ColumnarTraceWriter {
            out,
            tags: Vec::with_capacity(COL_BLOCK_RECORDS),
            pc_deltas: Vec::with_capacity(COL_BLOCK_RECORDS),
            mem_deltas: Vec::with_capacity(COL_BLOCK_RECORDS),
            target_deltas: Vec::with_capacity(COL_BLOCK_RECORDS),
            regs: Vec::with_capacity(COL_BLOCK_RECORDS * 3),
            prev_pc: 0,
            prev_addr: 0,
            ops: 0,
            offset: HEADER_LEN as u64,
            index: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// Number of records written so far.
    pub fn ops_written(&self) -> u64 {
        self.ops
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_op(&mut self, op: TraceOp) -> io::Result<()> {
        self.pc_deltas
            .push(zigzag_encode(op.pc.wrapping_sub(self.prev_pc) as i64));
        match op.class {
            OpClass::Load => {
                let addr = op.addr.unwrap_or(0);
                self.tags.push(TAG_LOAD);
                self.mem_deltas
                    .push(zigzag_encode(addr.wrapping_sub(self.prev_addr) as i64));
                self.regs.push(reg_byte(op.dst));
                self.regs.push(reg_byte(op.srcs[0]));
                self.prev_addr = addr;
            }
            OpClass::Store => {
                let addr = op.addr.unwrap_or(0);
                self.tags.push(TAG_STORE);
                self.mem_deltas
                    .push(zigzag_encode(addr.wrapping_sub(self.prev_addr) as i64));
                self.regs.push(reg_byte(op.srcs[0]));
                self.regs.push(reg_byte(op.srcs[1]));
                self.prev_addr = addr;
            }
            OpClass::Branch => {
                self.tags.push(if op.taken {
                    TAG_BRANCH_TAKEN
                } else {
                    TAG_BRANCH_NOT_TAKEN
                });
                self.target_deltas
                    .push(zigzag_encode(op.target.wrapping_sub(op.pc) as i64));
                self.regs.push(reg_byte(op.srcs[0]));
            }
            class => {
                self.tags.push(compute_tag(class));
                self.regs.push(reg_byte(op.dst));
                self.regs.push(reg_byte(op.srcs[0]));
                self.regs.push(reg_byte(op.srcs[1]));
            }
        }
        self.prev_pc = op.pc;
        self.ops += 1;
        if self.tags.len() >= COL_BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Writes the accumulated block and resets the per-block delta
    /// state, matching the reader's per-block reset.
    fn flush_block(&mut self) -> io::Result<()> {
        if self.tags.is_empty() {
            return Ok(());
        }
        let records = self.tags.len() as u32;
        let refs = self.mem_deltas.len() as u32;
        let payload = &mut self.payload;
        payload.clear();

        let section = |payload: &mut Vec<u8>, fill: &mut dyn FnMut(&mut Vec<u8>)| {
            let len_at = payload.len();
            payload.extend_from_slice(&[0; 4]);
            fill(payload);
            let len = (payload.len() - len_at - 4) as u32;
            payload[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
        };
        let tags = &self.tags;
        section(payload, &mut |p| {
            for pair in tags.chunks(2) {
                p.push(pair[0] | (pair.get(1).copied().unwrap_or(0) << 4));
            }
        });
        let pc_deltas = &self.pc_deltas;
        section(payload, &mut |p| pack_deltas(p, pc_deltas));
        let mem_deltas = &self.mem_deltas;
        section(payload, &mut |p| pack_deltas(p, mem_deltas));
        let target_deltas = &self.target_deltas;
        section(payload, &mut |p| pack_deltas(p, target_deltas));
        let regs = &self.regs;
        section(payload, &mut |p| p.extend_from_slice(regs));

        let checksum = col_block_checksum(payload, records, refs);
        let mut header = [0u8; COL_BLOCK_HEADER_LEN];
        header[..4].copy_from_slice(&COL_BLOCK_MAGIC);
        header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[8..12].copy_from_slice(&records.to_le_bytes());
        header[12..16].copy_from_slice(&refs.to_le_bytes());
        header[16..20].copy_from_slice(&checksum.to_le_bytes());
        self.out.write_all(&header)?;
        self.out.write_all(payload)?;
        self.index.push(ColIndexEntry {
            offset: self.offset,
            records,
            refs,
            checksum,
        });
        self.offset += (COL_BLOCK_HEADER_LEN + payload.len()) as u64;
        self.tags.clear();
        self.pc_deltas.clear();
        self.mem_deltas.clear();
        self.target_deltas.clear();
        self.regs.clear();
        self.prev_pc = 0;
        self.prev_addr = 0;
        Ok(())
    }

    /// Appends every op of an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_all<I: IntoIterator<Item = TraceOp>>(&mut self, ops: I) -> io::Result<()> {
        for op in ops {
            self.write_op(op)?;
        }
        Ok(())
    }

    /// Flushes the final block, writes the block index and footer, and
    /// returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_block()?;
        let index_offset = self.offset;
        let mut entries = Vec::with_capacity(self.index.len() * COL_INDEX_ENTRY_LEN);
        for e in &self.index {
            e.encode(&mut entries);
        }
        self.out.write_all(&COL_INDEX_MAGIC)?;
        self.out
            .write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.out.write_all(&entries)?;
        self.out
            .write_all(&block_checksum(&entries).to_le_bytes())?;
        self.out.write_all(&index_offset.to_le_bytes())?;
        self.out
            .write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.out.write_all(&COL_FOOTER_MAGIC)?;
        self.out
            .into_inner()
            .map_err(io::IntoInnerError::into_error)
    }
}

/// One-call convenience: writes header, blocks, index and footer to `w`
/// and returns the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_columnar<W: Write, I: IntoIterator<Item = TraceOp>>(
    w: W,
    ops: I,
) -> io::Result<W> {
    let mut writer = ColumnarTraceWriter::new(w)?;
    writer.write_all(ops)?;
    writer.finish()
}

/// Streaming miniblock unpacker: decodes one [`MINIBLOCK`] group at a
/// time into a stack buffer, so ref-mode decode never materializes a
/// whole delta column in memory. Structural validation (and error
/// wording) matches [`unpack_deltas`]. Errors are deferred: a damaged
/// miniblock yields zeros from [`next`](DeltaCursor::next) and the
/// first error surfaces from [`finish`](DeltaCursor::finish) — callers
/// must pull exactly the declared count, then `finish`, and discard
/// every value on error (per-value `Result`s would put a 32-byte enum
/// on the hot path).
struct DeltaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Values not yet moved into `buf`.
    remaining: usize,
    buf: [u64; MINIBLOCK],
    buf_len: usize,
    buf_pos: usize,
    err: Option<String>,
}

impl<'a> DeltaCursor<'a> {
    fn new(bytes: &'a [u8], count: usize) -> Self {
        DeltaCursor {
            bytes,
            pos: 0,
            remaining: count,
            buf: [0; MINIBLOCK],
            buf_len: 0,
            buf_pos: 0,
            err: None,
        }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        if self.buf_pos == self.buf_len {
            self.refill();
        }
        let v = self.buf[self.buf_pos];
        self.buf_pos += 1;
        v
    }

    /// Returns the rest of the current miniblock (refilling first if it
    /// is drained), advancing the cursor past every returned value.
    /// Empty once `count` values have been yielded.
    #[inline]
    fn next_group(&mut self) -> &[u64] {
        if self.buf_pos == self.buf_len {
            if self.remaining == 0 {
                return &[];
            }
            self.refill();
        }
        let start = self.buf_pos;
        self.buf_pos = self.buf_len;
        &self.buf[start..self.buf_len]
    }

    #[cold]
    fn fail(&mut self, take: usize, reason: String) {
        if self.err.is_none() {
            self.err = Some(reason);
        }
        self.buf[..take].fill(0);
        self.remaining -= take;
        self.buf_len = take;
        self.buf_pos = 0;
    }

    fn refill(&mut self) {
        debug_assert!(self.remaining > 0, "caller pulls exactly `count` values");
        let take = self.remaining.min(MINIBLOCK);
        let width = match self.bytes.get(self.pos) {
            Some(&w) => w,
            None => {
                return self.fail(take, "delta column ends inside a miniblock header".into());
            }
        };
        self.pos += 1;
        if width > 64 {
            return self.fail(take, format!("miniblock width {width} exceeds 64 bits"));
        }
        if width == 0 {
            self.buf[..take].fill(0);
        } else {
            let nbytes = (take * width as usize).div_ceil(8);
            let packed = match self.bytes.get(self.pos..self.pos + nbytes) {
                Some(p) => p,
                None => {
                    return self.fail(take, "delta column ends inside a miniblock payload".into());
                }
            };
            self.pos += nbytes;
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            // Same two-phase decode as `unpack_deltas`: unaligned
            // 64-bit window loads while a full window fits, then an
            // accumulator for the tail bytes.
            let mut done = 0usize;
            let mut bit = 0usize;
            if width <= 56 {
                while done < take {
                    let byte = bit >> 3;
                    if byte + 8 > packed.len() {
                        break;
                    }
                    let word =
                        u64::from_le_bytes(packed[byte..byte + 8].try_into().expect("8 bytes"));
                    self.buf[done] = (word >> (bit & 7)) & mask;
                    bit += width as usize;
                    done += 1;
                }
            }
            let mut bytes_it = packed[bit >> 3..].iter();
            let mut acc: u128 = 0;
            let mut nbits = 0u32;
            if bit & 7 != 0 {
                acc = u128::from(*bytes_it.next().expect("sized above")) >> (bit & 7);
                nbits = 8 - (bit & 7) as u32;
            }
            for slot in done..take {
                while nbits < u32::from(width) {
                    acc |= u128::from(*bytes_it.next().expect("sized above")) << nbits;
                    nbits += 8;
                }
                self.buf[slot] = (acc as u64) & mask;
                acc >>= width;
                nbits -= u32::from(width);
            }
        }
        self.remaining -= take;
        self.buf_len = take;
        self.buf_pos = 0;
    }

    /// Surfaces any deferred decode error, then validates that the
    /// column body was consumed exactly.
    fn finish(self) -> Result<(), String> {
        debug_assert_eq!(self.remaining, 0, "caller pulls exactly `count` values");
        if let Some(e) = self.err {
            return Err(e);
        }
        if self.pos != self.bytes.len() {
            return Err(format!(
                "delta column carries {} trailing bytes",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Fully decoded, validated columns of one block, drained record by
/// record by the reader's chunk loops.
///
/// A block decodes in one of two modes. Op mode (`decode`)
/// materializes every column for `take_op`. Ref mode (`decode_refs`)
/// is the replay fast path: one fused pass produces bare [`MemRef`]s
/// without building the pc/target/register columns at all. The raw
/// payload is retained so a consumer that switches from refs back to
/// ops mid-block re-decodes the full columns and resumes at the same
/// record.
#[derive(Debug, Default)]
struct BlockScratch {
    tags: Vec<u8>,
    /// Absolute pc per record.
    pcs: Vec<u64>,
    /// Absolute address per load/store, in record order.
    addrs: Vec<u64>,
    /// Absolute target per branch, in record order.
    targets: Vec<u64>,
    regs: Vec<u8>,
    /// Drain cursors into the four streams above.
    rec: usize,
    mem: usize,
    br: usize,
    reg: usize,
    /// Scratch for the delta unpacker.
    deltas: Vec<u64>,
    /// Ref mode: `true` while the current block holds `refs_buf`
    /// instead of full columns.
    ref_mode: bool,
    /// Ref mode: the block's references, in record order.
    refs_buf: Vec<MemRef>,
    /// Ref mode: record count consumed once the matching reference is
    /// drained (parallel to `refs_buf`), keeping the reader's record
    /// tally exact across partial drains.
    rec_after: Vec<u32>,
    /// Ref mode: drain cursor into `refs_buf`.
    ref_pos: usize,
    /// Ref mode: the block's record count (`rec` advances toward it).
    block_records: usize,
    /// Ref mode: the block's reference count, kept for re-decode.
    block_refs: u32,
    /// Ref mode: the block's framed length (header + payload). The
    /// reader uses it to re-borrow the payload from its stream buffer
    /// — which cannot have been refilled while the block is undrained
    /// — on a mid-block switch to op mode.
    block_framed: usize,
}

impl BlockScratch {
    fn clear(&mut self) {
        self.tags.clear();
        self.pcs.clear();
        self.addrs.clear();
        self.targets.clear();
        self.regs.clear();
        self.rec = 0;
        self.mem = 0;
        self.br = 0;
        self.reg = 0;
        self.ref_mode = false;
        self.refs_buf.clear();
        self.rec_after.clear();
        self.ref_pos = 0;
        self.block_records = 0;
        self.block_refs = 0;
        self.block_framed = 0;
    }

    fn exhausted(&self) -> bool {
        if self.ref_mode {
            self.rec == self.block_records
        } else {
            self.rec == self.tags.len()
        }
    }

    /// Splits a payload into its five length-prefixed sections.
    fn split_sections(payload: &[u8]) -> Result<[&[u8]; 5], String> {
        let mut pos = 0usize;
        let mut sections: [&[u8]; 5] = [&[]; 5];
        for s in sections.iter_mut() {
            let len_bytes = payload
                .get(pos..pos + 4)
                .ok_or_else(|| "payload ends inside a section length".to_string())?;
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            pos += 4;
            *s = payload
                .get(pos..pos + len)
                .ok_or_else(|| "payload ends inside a section".to_string())?;
            pos += len;
        }
        if pos != payload.len() {
            return Err(format!(
                "payload carries {} bytes past its sections",
                payload.len() - pos
            ));
        }
        Ok(sections)
    }

    /// Decodes and validates one block payload into absolute columns.
    /// `prev_pc`/`prev_addr` are always 0 at a block start (the writer
    /// resets them), so decode needs no carried state.
    fn decode(&mut self, payload: &[u8], records: u32, refs: u32) -> Result<(), String> {
        self.clear();
        let records = records as usize;
        let refs = refs as usize;
        let sections = Self::split_sections(payload)?;

        // Tags: two nibbles per byte, padding nibble must be zero.
        if sections[0].len() != records.div_ceil(2) {
            return Err(format!(
                "tag column holds {} bytes for {records} records",
                sections[0].len()
            ));
        }
        self.tags.reserve(records);
        let mut mems = 0usize;
        let mut branches = 0usize;
        let mut reg_bytes = 0usize;
        let mut tally = |t: u8| -> Result<(), String> {
            if t > TAG_BRANCH_TAKEN {
                return Err(format!("unknown tag nibble {t:#x}"));
            }
            match t {
                TAG_LOAD | TAG_STORE => mems += 1,
                TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => branches += 1,
                _ => {}
            }
            reg_bytes += regs_for_tag(t);
            Ok(())
        };
        for (i, &b) in sections[0].iter().enumerate() {
            tally(b & 0x0F)?;
            self.tags.push(b & 0x0F);
            if 2 * i + 1 < records {
                tally(b >> 4)?;
                self.tags.push(b >> 4);
            } else if b >> 4 != 0 {
                return Err("nonzero padding nibble in tag column".into());
            }
        }
        if mems != refs {
            return Err(format!(
                "tag column holds {mems} memory records, header claims {refs}"
            ));
        }

        // Delta columns, exact-length.
        unpack_deltas(sections[1], records, &mut self.deltas)?;
        let mut prev_pc = 0u64;
        self.pcs.reserve(records);
        for &d in &self.deltas {
            prev_pc = prev_pc.wrapping_add(zigzag_decode(d) as u64);
            self.pcs.push(prev_pc);
        }
        unpack_deltas(sections[2], refs, &mut self.deltas)?;
        let mut prev_addr = 0u64;
        self.addrs.reserve(refs);
        for &d in &self.deltas {
            prev_addr = prev_addr.wrapping_add(zigzag_decode(d) as u64);
            self.addrs.push(prev_addr);
        }
        unpack_deltas(sections[3], branches, &mut self.deltas)?;
        self.targets.reserve(branches);
        // Targets are relative to the branch's own pc.
        let mut br = 0usize;
        for (i, &t) in self.tags.iter().enumerate() {
            if t == TAG_BRANCH_NOT_TAKEN || t == TAG_BRANCH_TAKEN {
                self.targets
                    .push(self.pcs[i].wrapping_add(zigzag_decode(self.deltas[br]) as u64));
                br += 1;
            }
        }

        // Register column: exact length, every byte in range, required
        // operands present.
        if sections[4].len() != reg_bytes {
            return Err(format!(
                "register column holds {} bytes, tags require {reg_bytes}",
                sections[4].len()
            ));
        }
        let mut at = 0usize;
        for &t in &self.tags {
            let n = regs_for_tag(t);
            for &r in &sections[4][at..at + n] {
                if r != REG_NONE && r >= 64 {
                    return Err(format!("register byte {r:#x} out of range"));
                }
            }
            let first = sections[4][at];
            match t {
                TAG_LOAD if first == REG_NONE => return Err("load without destination".into()),
                TAG_STORE if first == REG_NONE => return Err("store without data register".into()),
                t if (t as usize) < COMPUTE_CLASSES.len() && first == REG_NONE => {
                    return Err("compute op without destination".into())
                }
                _ => {}
            }
            at += n;
        }
        self.regs.extend_from_slice(sections[4]);
        Ok(())
    }

    /// Validates the miniblock framing of a delta column without
    /// unpacking its values: same structural checks (and messages) as
    /// [`unpack_deltas`], minus the value decode.
    fn check_delta_framing(bytes: &[u8], count: usize) -> Result<(), String> {
        let mut pos = 0usize;
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(MINIBLOCK);
            let width = *bytes
                .get(pos)
                .ok_or_else(|| "delta column ends inside a miniblock header".to_string())?;
            pos += 1;
            if width > 64 {
                return Err(format!("miniblock width {width} exceeds 64 bits"));
            }
            if width > 0 {
                pos += (take * width as usize).div_ceil(8);
                if pos > bytes.len() {
                    return Err("delta column ends inside a miniblock payload".to_string());
                }
            }
            remaining -= take;
        }
        if pos != bytes.len() {
            return Err(format!(
                "delta column carries {} trailing bytes",
                bytes.len() - pos
            ));
        }
        Ok(())
    }

    /// Ref-mode decode: validates the block's structure and produces
    /// its [`MemRef`]s in one fused pass over the tag column, without
    /// materializing the pc/target/register columns.
    ///
    /// Branch targets are framing-checked but never decoded, and the
    /// register column is not examined at all — a block whose register
    /// column is malformed (wrong length, out-of-range byte, a load
    /// without a destination) passes here and only errors under
    /// op-mode decode (`cac corpus verify` and every record-level
    /// consumer take that path). The block checksum has already
    /// vouched for integrity by the time either decode runs.
    fn decode_refs(&mut self, payload: &[u8], records: u32, refs: u32) -> Result<(), String> {
        self.clear();
        self.ref_mode = true;
        let records = records as usize;
        let refs = refs as usize;
        let sections = Self::split_sections(payload)?;

        if sections[0].len() != records.div_ceil(2) {
            return Err(format!(
                "tag column holds {} bytes for {records} records",
                sections[0].len()
            ));
        }
        if records % 2 == 1 && sections[0][records >> 1] >> 4 != 0 {
            return Err("nonzero padding nibble in tag column".into());
        }

        let mut pc_cur = DeltaCursor::new(sections[1], records);
        let mut addr_cur = DeltaCursor::new(sections[2], refs);
        self.refs_buf.reserve(refs);
        self.rec_after.reserve(refs);
        let tag_bytes = sections[0];
        let mut mems = 0usize;
        let mut branches = 0usize;
        let mut pc = 0u64;
        let mut addr = 0u64;
        // Shared record body for the unrolled walk below; `$i` is the
        // absolute record index.
        macro_rules! step {
            ($t:expr, $d:expr, $i:expr) => {{
                let t = $t;
                if t > TAG_BRANCH_TAKEN {
                    return Err(format!("unknown tag nibble {t:#x}"));
                }
                pc = pc.wrapping_add(zigzag_decode($d) as u64);
                match t {
                    TAG_LOAD | TAG_STORE => {
                        // Past `refs`, keep counting (the mismatch
                        // check below needs the true total) without
                        // touching the exhausted addr-delta column.
                        if mems < refs {
                            addr = addr.wrapping_add(zigzag_decode(addr_cur.next()) as u64);
                            self.refs_buf.push(MemRef {
                                pc,
                                addr,
                                is_write: t == TAG_STORE,
                            });
                            self.rec_after.push(($i + 1) as u32);
                        }
                        mems += 1;
                    }
                    TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => branches += 1,
                    _ => {}
                }
            }};
        }
        // Hot loop: one pc miniblock per outer iteration, two records
        // (one tag byte) per inner iteration. Miniblocks hold an even
        // number of records, so every group starts byte-aligned in the
        // tag column.
        let mut i = 0usize;
        while i < records {
            let pcs = pc_cur.next_group();
            let glen = pcs.len().min(records - i);
            debug_assert_eq!(glen, pcs.len(), "cursor yields exactly `records` values");
            let mut k = 0usize;
            while k + 1 < glen {
                let b = tag_bytes[(i + k) >> 1];
                step!(b & 0x0F, pcs[k], i + k);
                step!(b >> 4, pcs[k + 1], i + k + 1);
                k += 2;
            }
            if k < glen {
                step!(tag_bytes[(i + k) >> 1] & 0x0F, pcs[k], i + k);
            }
            i += glen;
        }
        if mems != refs {
            return Err(format!(
                "tag column holds {mems} memory records, header claims {refs}"
            ));
        }
        pc_cur.finish()?;
        addr_cur.finish()?;
        Self::check_delta_framing(sections[3], branches)?;

        // Only now — with every check passed — does the block become
        // drainable; a failed decode leaves the scratch exhausted.
        self.block_records = records;
        self.block_refs = refs as u32;
        Ok(())
    }

    /// Drains ref-mode references into `out` until the block is
    /// exhausted or `out` reaches `max`, with the same record-consum-
    /// ption semantics as the op-mode drain: trailing non-memory
    /// records are consumed only once every reference fit.
    fn drain_refs_fast(&mut self, out: &mut Vec<MemRef>, max: usize) {
        let take = (max - out.len()).min(self.refs_buf.len() - self.ref_pos);
        out.extend_from_slice(&self.refs_buf[self.ref_pos..self.ref_pos + take]);
        self.ref_pos += take;
        if take > 0 {
            self.rec = self.rec_after[self.ref_pos - 1] as usize;
        }
        if self.ref_pos == self.refs_buf.len() && out.len() < max {
            self.rec = self.block_records;
        }
    }

    /// Re-decodes a partially drained ref-mode block into full op-mode
    /// columns (from the payload still sitting in the reader's stream
    /// buffer) and fast-forwards the drain cursors to the same record,
    /// so op- and ref-mode reads can interleave mid-block.
    fn reopen_as_ops(&mut self, payload: &[u8]) -> Result<(), String> {
        let (rec, records, refs) = (self.rec, self.block_records as u32, self.block_refs);
        self.decode(payload, records, refs)?;
        while self.rec < rec {
            let _ = self.take_op();
        }
        Ok(())
    }

    /// Materializes the record at the drain cursor and advances it.
    fn take_op(&mut self) -> TraceOp {
        let i = self.rec;
        let tag = self.tags[i];
        let pc = self.pcs[i];
        let opt = |r: u8| if r == REG_NONE { None } else { Some(r) };
        let op = match tag {
            TAG_LOAD => {
                let addr = self.addrs[self.mem];
                self.mem += 1;
                let dst = self.regs[self.reg];
                let base = opt(self.regs[self.reg + 1]);
                self.reg += 2;
                TraceOp::load(pc, addr, dst, base)
            }
            TAG_STORE => {
                let addr = self.addrs[self.mem];
                self.mem += 1;
                let src = self.regs[self.reg];
                let base = opt(self.regs[self.reg + 1]);
                self.reg += 2;
                TraceOp::store(pc, addr, src, base)
            }
            TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => {
                let target = self.targets[self.br];
                self.br += 1;
                let src = opt(self.regs[self.reg]);
                self.reg += 1;
                TraceOp::branch(pc, tag == TAG_BRANCH_TAKEN, target, src)
            }
            t => {
                let dst = self.regs[self.reg];
                let s1 = opt(self.regs[self.reg + 1]);
                let s2 = opt(self.regs[self.reg + 2]);
                self.reg += 3;
                TraceOp::compute(pc, COMPUTE_CLASSES[t as usize], dst, [s1, s2])
            }
        };
        self.rec += 1;
        op
    }

    /// Drains memory references into `out` until the block is exhausted
    /// or `out` reaches `max`, advancing all cursors as if each record
    /// had gone through [`take_ref`](BlockScratch::take_ref).
    fn drain_refs(&mut self, out: &mut Vec<MemRef>, max: usize) {
        let mut rec = self.rec;
        let mut mem = self.mem;
        let mut br = self.br;
        let mut reg = self.reg;
        let tags = &self.tags[..];
        while rec < tags.len() && out.len() < max {
            let tag = tags[rec];
            let pc = self.pcs[rec];
            rec += 1;
            reg += regs_for_tag(tag);
            match tag {
                TAG_LOAD | TAG_STORE => {
                    out.push(MemRef {
                        pc,
                        addr: self.addrs[mem],
                        is_write: tag == TAG_STORE,
                    });
                    mem += 1;
                }
                TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => br += 1,
                _ => {}
            }
        }
        self.rec = rec;
        self.mem = mem;
        self.br = br;
        self.reg = reg;
    }

    /// Advances the drain cursor to the next memory record and returns
    /// its reference, or `None` if the block has no more references.
    fn take_ref(&mut self) -> Option<MemRef> {
        while self.rec < self.tags.len() {
            let tag = self.tags[self.rec];
            let pc = self.pcs[self.rec];
            self.rec += 1;
            self.reg += regs_for_tag(tag);
            match tag {
                TAG_LOAD | TAG_STORE => {
                    let addr = self.addrs[self.mem];
                    self.mem += 1;
                    return Some(MemRef {
                        pc,
                        addr,
                        is_write: tag == TAG_STORE,
                    });
                }
                TAG_BRANCH_NOT_TAKEN | TAG_BRANCH_TAKEN => self.br += 1,
                _ => {}
            }
        }
        None
    }
}

/// Per-column encoded byte totals, tallied by the streaming reader for
/// `cac trace info --verify`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnBytes {
    /// Packed tag column bytes.
    pub tags: u64,
    /// Pc delta column bytes.
    pub pc: u64,
    /// Address delta column bytes.
    pub addr: u64,
    /// Branch target delta column bytes.
    pub target: u64,
    /// Raw register column bytes.
    pub regs: u64,
}

/// Streaming reader for the columnar format, over any [`Read`].
///
/// Decodes one whole block of columns at a time (a verified block's
/// payload is validated end to end before a single record is
/// delivered), then drains it through the same [`ChunkSource`] /
/// [`RefSource`](super::RefSource) / [`Iterator`] surface as
/// [`BinaryTraceReader`](super::BinaryTraceReader). Errors reuse
/// [`BinaryTraceError`] — same strict/lenient [`DecodeMode`] semantics,
/// same [`SkipReport`] tally — so every replay consumer treats v2 and
/// v3 uniformly.
///
/// Unlike v2, a truncated tail is *always* detected: a well-formed file
/// ends in an index and footer, so hitting end-of-stream without them
/// is damage even when the cut lands exactly on a block boundary.
#[derive(Debug)]
pub struct ColumnarTraceReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    hit_eof: bool,
    failed: bool,
    mode: DecodeMode,
    /// Absolute stream offset of `buf[0]`.
    stream_base: u64,
    blocks: u64,
    skip: SkipReport,
    ops: u64,
    refs: u64,
    /// Set once the trailing index has been consumed (clean end).
    saw_index: bool,
    index_entries: u64,
    scratch: BlockScratch,
    col_bytes: ColumnBytes,
    payload_bytes: u64,
}

impl<R: Read> ColumnarTraceReader<R> {
    /// Opens a columnar trace in strict mode, validating the header.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::BadMagic`] /
    /// [`BinaryTraceError::UnsupportedVersion`] on a foreign stream (a
    /// v1/v2 file reports its version), [`BinaryTraceError::Truncated`]
    /// if the stream ends inside the header, or an I/O error.
    pub fn new(inner: R) -> Result<Self, BinaryTraceError> {
        ColumnarTraceReader::with_mode(inner, DecodeMode::Strict)
    }

    /// Opens a columnar trace in lenient mode: damaged blocks are
    /// skipped and tallied instead of failing the stream.
    ///
    /// # Errors
    ///
    /// As for [`new`](ColumnarTraceReader::new) — the file header must
    /// still be intact.
    pub fn new_lenient(inner: R) -> Result<Self, BinaryTraceError> {
        ColumnarTraceReader::with_mode(inner, DecodeMode::Lenient)
    }

    /// Opens a columnar trace with an explicit [`DecodeMode`].
    ///
    /// # Errors
    ///
    /// As for [`new`](ColumnarTraceReader::new).
    pub fn with_mode(inner: R, mode: DecodeMode) -> Result<Self, BinaryTraceError> {
        let mut r = ColumnarTraceReader {
            inner,
            buf: vec![0; 1 << 16],
            pos: 0,
            len: 0,
            hit_eof: false,
            failed: false,
            mode,
            stream_base: 0,
            blocks: 0,
            skip: SkipReport::default(),
            ops: 0,
            refs: 0,
            saw_index: false,
            index_entries: 0,
            scratch: BlockScratch::default(),
            col_bytes: ColumnBytes::default(),
            payload_bytes: 0,
        };
        r.refill(0)?;
        if r.len < HEADER_LEN {
            let have = r.len.min(BINARY_MAGIC.len());
            if r.len == 0 || r.buf[..have] != BINARY_MAGIC[..have] {
                return Err(BinaryTraceError::BadMagic);
            }
            return Err(BinaryTraceError::Truncated {
                ops_decoded: 0,
                offset: r.len as u64,
            });
        }
        if r.buf[..4] != BINARY_MAGIC {
            return Err(BinaryTraceError::BadMagic);
        }
        if r.buf[4] != COLUMNAR_VERSION {
            return Err(BinaryTraceError::UnsupportedVersion(r.buf[4]));
        }
        r.pos = HEADER_LEN;
        Ok(r)
    }

    /// Number of records decoded so far.
    pub fn ops_decoded(&self) -> u64 {
        self.ops
    }

    /// Number of memory references among the decoded records.
    pub fn refs_decoded(&self) -> u64 {
        self.refs
    }

    /// The stream's format version (always 3).
    pub fn version(&self) -> u8 {
        COLUMNAR_VERSION
    }

    /// The reader's error-handling mode.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// Verified blocks decoded so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks
    }

    /// What lenient decode has skipped so far (all zeros in strict mode
    /// and on clean streams).
    pub fn skipped(&self) -> SkipReport {
        self.skip
    }

    /// Entries the trailing index claimed (0 until the index is
    /// reached).
    pub fn index_entries(&self) -> u64 {
        self.index_entries
    }

    /// Encoded bytes per column across the verified blocks so far.
    pub fn column_bytes(&self) -> ColumnBytes {
        self.col_bytes
    }

    /// Total verified block payload bytes so far (section prefixes
    /// included).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    fn offset_at(&self, pos: usize) -> u64 {
        self.stream_base + pos as u64
    }

    fn refill(&mut self, needed: usize) -> Result<(), BinaryTraceError> {
        self.stream_base += self.pos as u64;
        self.buf.copy_within(self.pos..self.len, 0);
        self.len -= self.pos;
        self.pos = 0;
        if self.buf.len() < needed {
            self.buf.resize(needed, 0);
        }
        while self.len < self.buf.len() && !self.hit_eof {
            match self.inner.read(&mut self.buf[self.len..]) {
                Ok(0) => self.hit_eof = true,
                Ok(n) => self.len += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn truncated(&self) -> BinaryTraceError {
        BinaryTraceError::Truncated {
            ops_decoded: self.ops,
            offset: self.offset_at(self.len),
        }
    }

    fn corrupt_at(&self, pos: usize, reason: impl Into<String>) -> BinaryTraceError {
        BinaryTraceError::Corrupt {
            op: self.ops,
            offset: self.offset_at(pos),
            reason: reason.into(),
        }
    }

    /// Lenient-mode resynchronization: scan forward for the next
    /// `CCOL` or `CIDX` marker.
    fn resync(&mut self) -> Result<(), BinaryTraceError> {
        self.skip.blocks += 1;
        self.pos += 1;
        self.skip.bytes += 1;
        loop {
            while self.len - self.pos >= 4 {
                let m = &self.buf[self.pos..self.pos + 4];
                if m == COL_BLOCK_MAGIC || m == COL_INDEX_MAGIC {
                    return Ok(());
                }
                self.pos += 1;
                self.skip.bytes += 1;
            }
            if self.hit_eof {
                self.skip.bytes += (self.len - self.pos) as u64;
                self.pos = self.len;
                return Ok(());
            }
            self.refill(0)?;
        }
    }

    /// Consumes and validates the trailing index + footer. On success
    /// the stream is cleanly finished; structural damage is an error in
    /// strict mode and a tallied skip in lenient mode.
    fn consume_index(&mut self) -> Result<(), BinaryTraceError> {
        let index_offset = self.offset_at(self.pos);
        // Buffer the whole tail: index sizes are bounded by block count
        // (20 bytes per ~4096 records), far below any problematic size.
        loop {
            if self.hit_eof {
                break;
            }
            let want = (self.len - self.pos).max(1 << 16) * 2;
            self.refill(want)?;
        }
        let tail = &self.buf[self.pos..self.len];
        let damage: Option<String> = 'v: {
            if tail.len() < 8 + COL_FOOTER_LEN {
                break 'v Some("stream ends inside the block index".into());
            }
            let count = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes")) as usize;
            let entries_len = count * COL_INDEX_ENTRY_LEN;
            let expect = 8 + entries_len + 4 + COL_FOOTER_LEN;
            if tail.len() != expect {
                break 'v Some(format!(
                    "index section is {} bytes, {count} entries require {expect}",
                    tail.len()
                ));
            }
            let entries = &tail[8..8 + entries_len];
            let stored = u32::from_le_bytes(
                tail[8 + entries_len..12 + entries_len]
                    .try_into()
                    .expect("4"),
            );
            if block_checksum(entries) != stored {
                break 'v Some("index checksum mismatch".into());
            }
            let footer = &tail[12 + entries_len..];
            if footer[12..16] != COL_FOOTER_MAGIC {
                break 'v Some("bad footer magic".into());
            }
            let footer_offset = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
            let footer_count =
                u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
            if footer_offset != index_offset || footer_count != count {
                break 'v Some("footer disagrees with the index".into());
            }
            // In a strict (undamaged) walk the index must describe
            // exactly the blocks seen; a lenient walk may have skipped
            // some, so the counts legitimately differ.
            if self.mode == DecodeMode::Strict && count as u64 != self.blocks {
                break 'v Some(format!(
                    "index lists {count} blocks, stream held {}",
                    self.blocks
                ));
            }
            self.index_entries = count as u64;
            None
        };
        match damage {
            None => {
                self.saw_index = true;
                self.pos = self.len;
                Ok(())
            }
            Some(reason) => {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(self.pos, reason));
                }
                self.skip.blocks += 1;
                self.skip.bytes += (self.len - self.pos) as u64;
                self.pos = self.len;
                self.saw_index = true;
                Ok(())
            }
        }
    }

    /// Ensures the scratch holds undrained records, decoding the next
    /// verified block if needed. `Ok(false)` means clean end of stream.
    fn prepare(&mut self) -> Result<bool, BinaryTraceError> {
        self.prepare_mode(false)
    }

    /// [`prepare`](ColumnarTraceReader::prepare), choosing the block
    /// decode mode: `want_refs` selects the fused ref-only decode for
    /// fresh blocks. A partially drained block keeps its current mode
    /// (switching refs→ops re-decodes the retained payload).
    fn prepare_mode(&mut self, want_refs: bool) -> Result<bool, BinaryTraceError> {
        loop {
            if !self.scratch.exhausted() {
                if !want_refs && self.scratch.ref_mode {
                    // No refill can have happened since this block was
                    // decoded (refills only run once the scratch is
                    // exhausted), so its payload still sits in the
                    // stream buffer just behind the cursor.
                    let start = self.pos - self.scratch.block_framed + COL_BLOCK_HEADER_LEN;
                    let payload = &self.buf[start..self.pos];
                    match self.scratch.reopen_as_ops(payload) {
                        Ok(()) => {}
                        Err(reason) => return Err(self.corrupt_at(start, reason)),
                    }
                }
                return Ok(true);
            }
            if self.saw_index {
                return Ok(false);
            }
            if self.len - self.pos < COL_BLOCK_HEADER_LEN && !self.hit_eof {
                self.refill(0)?;
            }
            if self.pos == self.len {
                // End of stream without an index: always damage.
                if self.mode == DecodeMode::Strict {
                    return Err(self.truncated());
                }
                self.skip.blocks += 1;
                self.saw_index = true;
                return Ok(false);
            }
            let avail = self.len - self.pos;
            if avail >= 4 && self.buf[self.pos..self.pos + 4] == COL_INDEX_MAGIC {
                self.consume_index()?;
                continue;
            }
            if avail < COL_BLOCK_HEADER_LEN {
                // EOF inside a block header (or trailing garbage).
                if self.mode == DecodeMode::Strict {
                    return Err(self.truncated());
                }
                self.skip.blocks += 1;
                self.skip.bytes += avail as u64;
                self.pos = self.len;
                continue;
            }
            if self.buf[self.pos..self.pos + 4] != COL_BLOCK_MAGIC {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(self.pos, "bad block marker"));
                }
                self.resync()?;
                continue;
            }
            let header = &self.buf[self.pos..self.pos + COL_BLOCK_HEADER_LEN];
            let payload_len =
                u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
            let records = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
            let refs = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
            let stored_sum = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
            if payload_len > MAX_BLOCK_LEN || records > MAX_BLOCK_RECORDS || refs > records {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(self.pos + 4, "implausible block header"));
                }
                self.resync()?;
                continue;
            }
            let framed = COL_BLOCK_HEADER_LEN + payload_len;
            if self.len - self.pos < framed {
                self.refill(framed)?;
                if self.len - self.pos < framed {
                    // EOF inside the payload.
                    if self.mode == DecodeMode::Strict {
                        return Err(self.truncated());
                    }
                    self.skip.blocks += 1;
                    self.skip.records += u64::from(records);
                    self.skip.bytes += (self.len - self.pos) as u64;
                    self.pos = self.len;
                    continue;
                }
            }
            let payload = &self.buf[self.pos + COL_BLOCK_HEADER_LEN..self.pos + framed];
            if col_block_checksum(payload, records, refs) != stored_sum {
                if self.mode == DecodeMode::Strict {
                    return Err(self.corrupt_at(self.pos + 16, "block checksum mismatch"));
                }
                self.skip.blocks += 1;
                self.skip.records += u64::from(records);
                self.skip.bytes += framed as u64;
                self.pos += framed;
                continue;
            }
            let decoded = if want_refs {
                self.scratch.decode_refs(payload, records, refs)
            } else {
                self.scratch.decode(payload, records, refs)
            };
            match decoded {
                Ok(()) => {
                    // Column stats, from the verified section prefixes.
                    let mut at = 0usize;
                    let mut lens = [0u64; 5];
                    for l in lens.iter_mut() {
                        let len =
                            u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"))
                                as u64;
                        *l = len;
                        at += 4 + len as usize;
                    }
                    self.col_bytes.tags += lens[0];
                    self.col_bytes.pc += lens[1];
                    self.col_bytes.addr += lens[2];
                    self.col_bytes.target += lens[3];
                    self.col_bytes.regs += lens[4];
                    self.payload_bytes += payload_len as u64;
                    self.blocks += 1;
                    self.scratch.block_framed = framed;
                    self.pos += framed;
                }
                Err(reason) => {
                    if self.mode == DecodeMode::Strict {
                        return Err(self.corrupt_at(self.pos, reason));
                    }
                    self.skip.blocks += 1;
                    self.skip.records += u64::from(records);
                    self.skip.bytes += framed as u64;
                    self.pos += framed;
                }
            }
        }
    }

    /// Decodes the next record, or `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::Truncated`] if the stream stops mid-block or
    /// before the index, [`BinaryTraceError::Corrupt`] on invalid
    /// blocks, or an I/O error. Lenient mode reports only header and
    /// I/O errors; structural damage is skipped and tallied instead.
    pub fn next_op(&mut self) -> Result<Option<TraceOp>, BinaryTraceError> {
        if !self.prepare()? {
            return Ok(None);
        }
        let op = self.scratch.take_op();
        self.ops += 1;
        if op.addr.is_some() {
            self.refs += 1;
        }
        Ok(Some(op))
    }

    /// Clears `out` and decodes up to `max` records into it, returning
    /// the count (`0` = end of stream).
    ///
    /// # Errors
    ///
    /// As for [`next_op`](ColumnarTraceReader::next_op). Records
    /// decoded before the error are left in `out`.
    pub fn read_chunk(
        &mut self,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        out.clear();
        out.reserve(max.min(1 << 20));
        while out.len() < max {
            if !self.prepare()? {
                break;
            }
            while out.len() < max && !self.scratch.exhausted() {
                let op = self.scratch.take_op();
                self.ops += 1;
                if op.addr.is_some() {
                    self.refs += 1;
                }
                out.push(op);
            }
        }
        Ok(out.len())
    }

    /// Clears `out` and decodes records into it as bare [`MemRef`]s
    /// until `max` references are buffered or the stream ends. Returns
    /// the reference count (`0` = end of stream).
    ///
    /// This is the corpus fast path: tags, pcs and addresses stream out
    /// of their decoded columns directly — non-memory records never
    /// materialize a [`TraceOp`] at all.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](ColumnarTraceReader::next_op). References
    /// decoded before the error are left in `out`.
    pub fn read_ref_chunk(
        &mut self,
        out: &mut Vec<MemRef>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        out.clear();
        out.reserve(max.min(1 << 20));
        while out.len() < max {
            if !self.prepare_mode(true)? {
                break;
            }
            let before = self.scratch.rec;
            if self.scratch.ref_mode {
                let n = self.scratch.refs_buf.len();
                if out.is_empty() && self.scratch.ref_pos == 0 && n > 0 && n <= max {
                    // Whole-block fast path: hand the first block's
                    // refs to the caller by swap — no copy — then keep
                    // looping so later blocks top the chunk up to
                    // `max` through the ordinary copying drain.
                    std::mem::swap(out, &mut self.scratch.refs_buf);
                    self.scratch.ref_pos = 0;
                    self.scratch.rec = self.scratch.block_records;
                    self.ops += (self.scratch.rec - before) as u64;
                    continue;
                }
                self.scratch.drain_refs_fast(out, max);
            } else {
                // Leftover of a block opened in op mode: drain through
                // the column walk so the cursors stay consistent.
                self.scratch.drain_refs(out, max);
            }
            self.ops += (self.scratch.rec - before) as u64;
        }
        self.refs += out.len() as u64;
        Ok(out.len())
    }

    /// Decodes the rest of the stream, invoking `f` on every memory
    /// reference, and returns the number of records consumed.
    ///
    /// # Errors
    ///
    /// As for [`next_op`](ColumnarTraceReader::next_op). References
    /// already delivered to `f` before the error stand.
    pub fn for_each_ref<F: FnMut(MemRef)>(&mut self, mut f: F) -> Result<u64, BinaryTraceError> {
        let start = self.ops;
        loop {
            if !self.prepare_mode(true)? {
                return Ok(self.ops - start);
            }
            let before = self.scratch.rec;
            if self.scratch.ref_mode {
                while self.scratch.ref_pos < self.scratch.refs_buf.len() {
                    f(self.scratch.refs_buf[self.scratch.ref_pos]);
                    self.scratch.ref_pos += 1;
                    self.refs += 1;
                }
                self.scratch.rec = self.scratch.block_records;
            } else {
                while let Some(r) = self.scratch.take_ref() {
                    self.refs += 1;
                    f(r);
                }
            }
            self.ops += (self.scratch.rec - before) as u64;
        }
    }
}

impl<R: Read> Iterator for ColumnarTraceReader<R> {
    type Item = Result<TraceOp, BinaryTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_op() {
            Ok(Some(op)) => Some(Ok(op)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

impl<R: Read> ChunkSource for ColumnarTraceReader<R> {
    type Error = BinaryTraceError;

    fn read_chunk(
        &mut self,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        ColumnarTraceReader::read_chunk(self, out, max)
    }
}

impl<R: Read> super::RefSource for ColumnarTraceReader<R> {
    type Error = BinaryTraceError;

    fn read_ref_chunk(
        &mut self,
        out: &mut Vec<MemRef>,
        max: usize,
    ) -> Result<usize, BinaryTraceError> {
        ColumnarTraceReader::read_ref_chunk(self, out, max)
    }
}

/// A columnar trace opened through its block index: footer and index
/// are read in two seeks, then any block is served in O(1).
///
/// Blocks decode independently (delta state resets at every block), so
/// random access needs no context from preceding blocks.
#[derive(Debug)]
pub struct ColumnarFile<R: Read + Seek> {
    inner: R,
    index: Vec<ColIndexEntry>,
    scratch: BlockScratch,
    payload: Vec<u8>,
}

impl ColumnarFile<std::fs::File> {
    /// Opens the columnar trace at `path`.
    ///
    /// # Errors
    ///
    /// As for [`open`](ColumnarFile::open), plus file-open errors.
    pub fn open_path(path: &std::path::Path) -> Result<Self, BinaryTraceError> {
        ColumnarFile::open(std::fs::File::open(path)?)
    }
}

impl<R: Read + Seek> ColumnarFile<R> {
    /// Validates the header, footer and index of `inner` and returns an
    /// indexed handle.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::BadMagic`] /
    /// [`BinaryTraceError::UnsupportedVersion`] on a foreign stream,
    /// [`BinaryTraceError::Corrupt`] if footer or index do not verify,
    /// [`BinaryTraceError::Truncated`] if the file is too short to hold
    /// them, or an I/O error.
    pub fn open(mut inner: R) -> Result<Self, BinaryTraceError> {
        let total = inner.seek(SeekFrom::End(0))?;
        let min = (HEADER_LEN + 8 + 4 + COL_FOOTER_LEN) as u64;
        let mut head = [0u8; HEADER_LEN];
        if total < min {
            inner.seek(SeekFrom::Start(0))?;
            let n = inner.read(&mut head)?;
            if n < 4 || head[..4] != BINARY_MAGIC {
                return Err(BinaryTraceError::BadMagic);
            }
            if n >= 5 && head[4] != COLUMNAR_VERSION {
                return Err(BinaryTraceError::UnsupportedVersion(head[4]));
            }
            return Err(BinaryTraceError::Truncated {
                ops_decoded: 0,
                offset: total,
            });
        }
        inner.seek(SeekFrom::Start(0))?;
        inner.read_exact(&mut head)?;
        if head[..4] != BINARY_MAGIC {
            return Err(BinaryTraceError::BadMagic);
        }
        if head[4] != COLUMNAR_VERSION {
            return Err(BinaryTraceError::UnsupportedVersion(head[4]));
        }
        let corrupt = |offset: u64, reason: &str| BinaryTraceError::Corrupt {
            op: 0,
            offset,
            reason: reason.into(),
        };
        let mut footer = [0u8; COL_FOOTER_LEN];
        inner.seek(SeekFrom::End(-(COL_FOOTER_LEN as i64)))?;
        inner.read_exact(&mut footer)?;
        if footer[12..16] != COL_FOOTER_MAGIC {
            return Err(corrupt(total - 4, "bad footer magic"));
        }
        let index_offset = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
        let expect_index = 8 + count * COL_INDEX_ENTRY_LEN + 4;
        if index_offset < HEADER_LEN as u64
            || index_offset + expect_index as u64 + COL_FOOTER_LEN as u64 != total
        {
            return Err(corrupt(total - COL_FOOTER_LEN as u64, "implausible footer"));
        }
        inner.seek(SeekFrom::Start(index_offset))?;
        let mut index_bytes = vec![0u8; expect_index];
        inner.read_exact(&mut index_bytes)?;
        if index_bytes[..4] != COL_INDEX_MAGIC {
            return Err(corrupt(index_offset, "bad index marker"));
        }
        let listed = u32::from_le_bytes(index_bytes[4..8].try_into().expect("4 bytes")) as usize;
        if listed != count {
            return Err(corrupt(index_offset + 4, "footer disagrees with the index"));
        }
        let entries = &index_bytes[8..8 + count * COL_INDEX_ENTRY_LEN];
        let stored = u32::from_le_bytes(
            index_bytes[8 + count * COL_INDEX_ENTRY_LEN..]
                .try_into()
                .expect("4 bytes"),
        );
        if block_checksum(entries) != stored {
            return Err(corrupt(index_offset + 8, "index checksum mismatch"));
        }
        let index: Vec<ColIndexEntry> = entries
            .chunks_exact(COL_INDEX_ENTRY_LEN)
            .map(ColIndexEntry::decode)
            .collect();
        for (i, e) in index.iter().enumerate() {
            if e.offset < HEADER_LEN as u64 || e.offset >= index_offset {
                return Err(corrupt(index_offset, "index entry offset out of range"));
            }
            if i > 0 && e.offset <= index[i - 1].offset {
                return Err(corrupt(index_offset, "index entry offsets not increasing"));
            }
        }
        Ok(ColumnarFile {
            inner,
            index,
            scratch: BlockScratch::default(),
            payload: Vec::new(),
        })
    }

    /// The block index.
    pub fn entries(&self) -> &[ColIndexEntry] {
        &self.index
    }

    /// Number of blocks in the file.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Total records across all blocks, per the index.
    pub fn records(&self) -> u64 {
        self.index.iter().map(|e| u64::from(e.records)).sum()
    }

    /// Total memory references across all blocks, per the index.
    pub fn refs(&self) -> u64 {
        self.index.iter().map(|e| u64::from(e.refs)).sum()
    }

    /// Decodes block `i` in one seek, verifying its header against the
    /// index entry and its checksum before interpreting any column.
    ///
    /// # Errors
    ///
    /// [`BinaryTraceError::Corrupt`] if the block does not match its
    /// index entry or fails verification, or an I/O error.
    pub fn read_block(&mut self, i: usize) -> Result<Vec<TraceOp>, BinaryTraceError> {
        let e = *self.index.get(i).ok_or_else(|| BinaryTraceError::Corrupt {
            op: 0,
            offset: 0,
            reason: format!("block {i} out of range ({} blocks)", self.index.len()),
        })?;
        let corrupt = |reason: &str| BinaryTraceError::Corrupt {
            op: 0,
            offset: e.offset,
            reason: reason.into(),
        };
        self.inner.seek(SeekFrom::Start(e.offset))?;
        let mut header = [0u8; COL_BLOCK_HEADER_LEN];
        self.inner.read_exact(&mut header)?;
        if header[..4] != COL_BLOCK_MAGIC {
            return Err(corrupt("bad block marker"));
        }
        let payload_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let records = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        let refs = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        let stored = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
        if payload_len > MAX_BLOCK_LEN
            || records != e.records
            || refs != e.refs
            || stored != e.checksum
        {
            return Err(corrupt("block header disagrees with the index"));
        }
        self.payload.resize(payload_len, 0);
        self.inner.read_exact(&mut self.payload)?;
        if col_block_checksum(&self.payload, records, refs) != stored {
            return Err(corrupt("block checksum mismatch"));
        }
        self.scratch
            .decode(&self.payload, records, refs)
            .map_err(|reason| BinaryTraceError::Corrupt {
                op: 0,
                offset: e.offset,
                reason,
            })?;
        let mut ops = Vec::with_capacity(records as usize);
        while !self.scratch.exhausted() {
            ops.push(self.scratch.take_op());
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{write_trace_binary, BinaryTraceReader, RefSource, BLOCK_TARGET};
    use super::*;
    use crate::spec::SpecBenchmark;
    use std::io::Cursor;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp::load(0x400, 0x1000, 5, Some(3)),
            TraceOp::load(0x404, 0x2000, 6, None),
            TraceOp::store(0x408, 0x3000, 7, Some(2)),
            TraceOp::branch(0x40c, true, 0x400, Some(1)),
            TraceOp::branch(0x410, false, 0, None),
            TraceOp::compute(0x414, OpClass::IntAlu, 1, [Some(2), Some(3)]),
            TraceOp::compute(0x418, OpClass::FpSqrt, 40, [Some(41), None]),
            TraceOp::compute(0x41c, OpClass::IntDiv, 9, [None, None]),
        ]
    }

    fn multi_block_ops(n: usize) -> Vec<TraceOp> {
        SpecBenchmark::Swim.generator(4).take(n).collect()
    }

    #[test]
    fn round_trip_every_op_kind() {
        let ops = sample_ops();
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = ColumnarTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn round_trip_multi_block() {
        let ops = multi_block_ops(3 * COL_BLOCK_RECORDS + 17);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let mut r = ColumnarTraceReader::new(&bytes[..]).unwrap();
        let mut back = Vec::new();
        let mut buf = Vec::new();
        while r.read_chunk(&mut buf, 1000).unwrap() > 0 {
            back.extend_from_slice(&buf);
        }
        assert_eq!(back, ops);
        assert_eq!(r.blocks_decoded(), 4);
        assert_eq!(r.index_entries(), 4);
        assert!(!r.skipped().any());
    }

    #[test]
    fn mixed_ref_and_op_reads_stay_consistent() {
        // A ref-mode block reopened for op-mode reads mid-block must
        // resume at the exact record the ref drain stopped at.
        let ops = multi_block_ops(2 * COL_BLOCK_RECORDS);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let mut r = ColumnarTraceReader::new(&bytes[..]).unwrap();
        let mut refs = Vec::new();
        // Stop mid-block: fewer refs than the first block holds.
        let got = r.read_ref_chunk(&mut refs, 100).unwrap();
        assert_eq!(got, 100);
        let consumed = r.ops_decoded() as usize;
        let expect_refs: Vec<MemRef> = ops[..consumed]
            .iter()
            .filter_map(|op| {
                op.addr.map(|addr| MemRef {
                    pc: op.pc,
                    addr,
                    is_write: op.class == OpClass::Store,
                })
            })
            .collect();
        assert_eq!(refs, expect_refs);
        // Every remaining record must now come out op-identical.
        let rest: Vec<TraceOp> = r.map(Result::unwrap).collect();
        assert_eq!(rest, ops[consumed..]);
    }

    #[test]
    fn round_trip_extreme_values() {
        let ops = vec![
            TraceOp::load(u64::MAX, 0, 0, Some(63)),
            TraceOp::store(0, u64::MAX, 63, None),
            TraceOp::branch(u64::MAX / 2, true, 0, None),
            TraceOp::load(1, u64::MAX / 2 + 7, 1, None),
        ];
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let back: Vec<TraceOp> = ColumnarTraceReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(back, ops);
    }

    #[test]
    fn ref_chunks_match_op_projection() {
        let ops = multi_block_ops(2 * COL_BLOCK_RECORDS + 100);
        let expect: Vec<MemRef> = ops.iter().filter_map(TraceOp::mem_ref).collect();
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let mut r = ColumnarTraceReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while r.read_ref_chunk(&mut buf, 777).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, expect);
        assert_eq!(r.refs_decoded(), expect.len() as u64);
        assert_eq!(r.ops_decoded(), ops.len() as u64);

        // for_each_ref agrees.
        let mut r = ColumnarTraceReader::new(&bytes[..]).unwrap();
        let mut seen = Vec::new();
        let consumed = r.for_each_ref(|m| seen.push(m)).unwrap();
        assert_eq!(consumed, ops.len() as u64);
        assert_eq!(seen, expect);
    }

    #[test]
    fn matches_v2_record_stream() {
        let ops = multi_block_ops(COL_BLOCK_RECORDS + 333);
        let v2 = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let v3 = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let from_v2: Vec<TraceOp> = BinaryTraceReader::new(&v2[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        let from_v3: Vec<TraceOp> = ColumnarTraceReader::new(&v3[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(from_v2, from_v3);
    }

    #[test]
    fn columnar_is_smaller_than_v2_on_regular_streams() {
        let ops = multi_block_ops(4 * COL_BLOCK_RECORDS);
        let v2 = write_trace_binary(Vec::new(), ops.iter().copied()).unwrap();
        let v3 = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        assert!(
            v3.len() < v2.len(),
            "columnar {} bytes vs row {} bytes",
            v3.len(),
            v2.len()
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = write_trace_columnar(Vec::new(), std::iter::empty()).unwrap();
        let mut r = ColumnarTraceReader::new(&bytes[..]).unwrap();
        assert!(r.next_op().unwrap().is_none());
        assert_eq!(r.index_entries(), 0);
        let mut f = ColumnarFile::open(Cursor::new(bytes)).unwrap();
        assert_eq!(f.block_count(), 0);
        assert_eq!(f.records(), 0);
        assert!(f.read_block(0).is_err());
    }

    #[test]
    fn rejects_v2_stream() {
        let bytes = write_trace_binary(Vec::new(), sample_ops()).unwrap();
        match ColumnarTraceReader::new(&bytes[..]) {
            Err(BinaryTraceError::UnsupportedVersion(2)) => {}
            other => panic!("expected UnsupportedVersion(2), got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_always_detected() {
        let ops = multi_block_ops(2 * COL_BLOCK_RECORDS);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        // Every cut — including ones landing exactly on block
        // boundaries — must fail strict decode (the index is missing)
        // and leave a skip tally in lenient mode.
        let step = (bytes.len() / 61).max(1);
        for cut in (HEADER_LEN..bytes.len() - 1).step_by(step) {
            let cut_bytes = &bytes[..cut];
            let r = ColumnarTraceReader::new(cut_bytes).unwrap();
            let res: Result<Vec<TraceOp>, _> = r.collect();
            assert!(res.is_err(), "cut at {cut} decoded strictly");
            let mut r = ColumnarTraceReader::new_lenient(cut_bytes).unwrap();
            let decoded: Vec<TraceOp> = (&mut r).map(Result::unwrap).collect();
            assert!(r.skipped().any(), "cut at {cut} left no lenient tally");
            // Whatever decoded must be a prefix of the real stream.
            assert_eq!(decoded[..], ops[..decoded.len()], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_never_misdecode() {
        let ops = multi_block_ops(COL_BLOCK_RECORDS + 500);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let step = (bytes.len() / 97).max(1);
        for at in (HEADER_LEN..bytes.len()).step_by(step) {
            for bit in [0u8, 3, 7] {
                let mut damaged = bytes.clone();
                damaged[at] ^= 1 << bit;
                if damaged[at] == bytes[at] {
                    continue;
                }
                let mut r = ColumnarTraceReader::new_lenient(&damaged[..]).unwrap();
                let decoded: Vec<TraceOp> = (&mut r).map(Result::unwrap).collect();
                // Lenient decode may drop blocks but never invent or
                // alter records: every decoded op must appear at its
                // stream position in some undamaged block.
                let mut at_op = 0usize;
                for block in decoded.chunks(COL_BLOCK_RECORDS.min(decoded.len().max(1))) {
                    // Find the block's position in the original stream.
                    let found = ops
                        .chunks(COL_BLOCK_RECORDS)
                        .any(|orig| orig.len() >= block.len() && orig[..block.len()] == *block);
                    assert!(
                        found,
                        "flip at byte {at} bit {bit} invented records (block at {at_op})"
                    );
                    at_op += block.len();
                }
            }
        }
    }

    #[test]
    fn lenient_skip_counts_are_exact_for_payload_damage() {
        let ops = multi_block_ops(3 * COL_BLOCK_RECORDS);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        // Damage one payload byte in the middle block.
        let mut damaged = bytes.clone();
        let target = HEADER_LEN
            + COL_BLOCK_HEADER_LEN
            + (find_block_len(&bytes, HEADER_LEN))
            + COL_BLOCK_HEADER_LEN
            + 10;
        damaged[target] ^= 0x40;
        let mut r = ColumnarTraceReader::new_lenient(&damaged[..]).unwrap();
        let decoded: Vec<TraceOp> = (&mut r).map(Result::unwrap).collect();
        let skip = r.skipped();
        assert_eq!(skip.blocks, 1);
        assert_eq!(skip.records, COL_BLOCK_RECORDS as u64);
        assert_eq!(decoded.len(), ops.len() - COL_BLOCK_RECORDS);
        // The surviving records are blocks 0 and 2, intact.
        assert_eq!(decoded[..COL_BLOCK_RECORDS], ops[..COL_BLOCK_RECORDS]);
        assert_eq!(decoded[COL_BLOCK_RECORDS..], ops[2 * COL_BLOCK_RECORDS..]);
    }

    /// Payload length of the block whose header starts at `at`.
    fn find_block_len(bytes: &[u8], at: usize) -> usize {
        assert_eq!(&bytes[at..at + 4], &COL_BLOCK_MAGIC);
        u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap()) as usize
    }

    #[test]
    fn indexed_file_serves_blocks_in_any_order() {
        let ops = multi_block_ops(3 * COL_BLOCK_RECORDS + 55);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        let mut f = ColumnarFile::open(Cursor::new(bytes)).unwrap();
        assert_eq!(f.block_count(), 4);
        assert_eq!(f.records(), ops.len() as u64);
        let expect_refs = ops.iter().filter(|o| o.addr.is_some()).count() as u64;
        assert_eq!(f.refs(), expect_refs);
        for i in [3usize, 0, 2, 1] {
            let block = f.read_block(i).unwrap();
            let lo = i * COL_BLOCK_RECORDS;
            let hi = (lo + COL_BLOCK_RECORDS).min(ops.len());
            assert_eq!(block, &ops[lo..hi], "block {i}");
        }
    }

    #[test]
    fn indexed_open_rejects_damaged_footer_and_index() {
        let ops = multi_block_ops(COL_BLOCK_RECORDS);
        let bytes = write_trace_columnar(Vec::new(), ops.iter().copied()).unwrap();
        // Footer magic.
        let mut d = bytes.clone();
        let n = d.len();
        d[n - 1] ^= 0xFF;
        assert!(ColumnarFile::open(Cursor::new(d)).is_err());
        // Index entry byte.
        let mut d = bytes.clone();
        let idx_off = {
            let f = &bytes[n - COL_FOOTER_LEN..];
            u64::from_le_bytes(f[..8].try_into().unwrap()) as usize
        };
        d[idx_off + 10] ^= 0x01;
        assert!(ColumnarFile::open(Cursor::new(d)).is_err());
        // Truncated tail.
        let d = bytes[..n - 3].to_vec();
        assert!(ColumnarFile::open(Cursor::new(d)).is_err());
    }

    #[test]
    fn ref_source_trait_objectless_usage_compiles() {
        // The reader plugs into generic RefSource consumers.
        fn drain<S: RefSource>(mut s: S) -> usize
        where
            S::Error: std::fmt::Debug,
        {
            let mut buf = Vec::new();
            let mut n = 0;
            while s.read_ref_chunk(&mut buf, 128).unwrap() > 0 {
                n += buf.len();
            }
            n
        }
        let ops = multi_block_ops(1000);
        let refs = ops.iter().filter(|o| o.addr.is_some()).count();
        let bytes = write_trace_columnar(Vec::new(), ops).unwrap();
        assert_eq!(drain(ColumnarTraceReader::new(&bytes[..]).unwrap()), refs);
    }

    #[test]
    fn pack_unpack_deltas_round_trip() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0; 200],
            vec![1, 2, 3, u64::MAX, 0, 1 << 63],
            (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
        ];
        for vals in cases {
            let mut packed = Vec::new();
            pack_deltas(&mut packed, &vals);
            let mut back = Vec::new();
            unpack_deltas(&packed, vals.len(), &mut back).unwrap();
            assert_eq!(back, vals);
        }
        // All-zero runs cost one byte per miniblock.
        let mut packed = Vec::new();
        pack_deltas(&mut packed, &[0u64; 640]);
        assert_eq!(packed.len(), 10);
    }

    #[test]
    fn block_target_is_v2_comparable() {
        // Keep v3 blocks in the same ballpark as v2's BLOCK_TARGET so
        // streaming buffer sizing assumptions carry over.
        let ops = multi_block_ops(COL_BLOCK_RECORDS);
        let bytes = write_trace_columnar(Vec::new(), ops).unwrap();
        let payload = find_block_len(&bytes, HEADER_LEN);
        assert!(payload < BLOCK_TARGET, "block payload {payload}");
    }
}

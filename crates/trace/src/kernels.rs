//! Composable loop-nest trace generator.
//!
//! A [`LoopKernel`] describes one steady-state loop body: a set of array
//! walks (loads and stores), optional random/pointer-chasing references,
//! a compute mix (integer and floating point), and branch behaviour. The
//! [`KernelGen`] iterator expands it into an unbounded dynamic instruction
//! stream with stable PCs per static slot, synthetic register dependences
//! (loads feed compute feeds stores) and realistic branch patterns — the
//! inputs the out-of-order CPU model and the predictors need.

use crate::record::{MemRef, OpClass, TraceOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A strided walk over an array, optionally column-structured.
///
/// Access `i` touches
/// `base + lap(i) * advance_bytes + (i mod wrap) * stride_elems * elem_size`
/// where `lap(i) = (i / wrap) mod laps`. With `wrap = rows`,
/// `stride_elems * elem_size = pitch` and `advance_bytes = elem_size`,
/// this is a column-major walk over a `rows × laps` 2D array — the access
/// pattern whose power-of-two pitch devastates conventionally-indexed
/// caches (tomcatv/swim/wave5 in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayWalk {
    /// Base byte address of the array.
    pub base: u64,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Per-access stride in elements.
    pub stride_elems: u64,
    /// Accesses before wrapping back (column length).
    pub wrap: u64,
    /// Bytes added to the base on each wrap (column advance).
    pub advance_bytes: u64,
    /// Number of wraps before the advance resets (column count).
    pub laps: u64,
    /// The walk is accessed only on iterations where
    /// `iteration % every == 0` (1 = every iteration). Lets a kernel mix
    /// in a low-intensity access stream without changing its PC layout.
    pub every: u64,
}

impl ArrayWalk {
    /// A plain sequential walk: `len_elems` elements of `elem_size` bytes,
    /// revisited cyclically.
    pub fn sequential(base: u64, len_elems: u64, elem_size: u64) -> Self {
        ArrayWalk {
            base,
            elem_size,
            stride_elems: 1,
            wrap: len_elems,
            advance_bytes: 0,
            laps: 1,
            every: 1,
        }
    }

    /// A strided walk: every `stride_elems`-th element of a `len_elems`
    /// window, cyclic.
    pub fn strided(base: u64, len_elems: u64, elem_size: u64, stride_elems: u64) -> Self {
        ArrayWalk {
            base,
            elem_size,
            stride_elems,
            wrap: len_elems,
            advance_bytes: 0,
            laps: 1,
            every: 1,
        }
    }

    /// A column-major walk over a `rows × cols` array with the given row
    /// pitch in bytes.
    pub fn column_walk(base: u64, rows: u64, cols: u64, pitch_bytes: u64, elem_size: u64) -> Self {
        ArrayWalk {
            base,
            elem_size: 1,
            stride_elems: pitch_bytes,
            wrap: rows,
            advance_bytes: elem_size,
            laps: cols,
            every: 1,
        }
    }

    /// Returns the same walk gated to fire every `every`-th iteration.
    pub fn with_every(mut self, every: u64) -> Self {
        self.every = every.max(1);
        self
    }

    /// The address of the `i`-th access of this walk.
    pub fn addr(&self, i: u64) -> u64 {
        let k = i % self.wrap.max(1);
        let lap = (i / self.wrap.max(1)) % self.laps.max(1);
        self.base + lap * self.advance_bytes + k * self.stride_elems * self.elem_size
    }
}

/// A parameterised loop body.
#[derive(Debug, Clone)]
pub struct LoopKernel {
    /// Human-readable kernel name.
    pub name: String,
    /// Arrays read each iteration (one load per walk per iteration).
    pub loads: Vec<ArrayWalk>,
    /// Arrays written each iteration (one store per walk per iteration).
    pub stores: Vec<ArrayWalk>,
    /// Random loads emitted on iterations where
    /// `iteration % random_every == 0`.
    pub random_loads: u32,
    /// Period of the random-load burst (>= 1).
    pub random_every: u64,
    /// Byte span of the random-load region.
    pub random_footprint: u64,
    /// Base address of the random-load region.
    pub random_base: u64,
    /// Serialize random loads as a pointer chase (each one's address
    /// register depends on the previous one's result).
    pub chase: bool,
    /// Simple integer ops per iteration.
    pub int_ops: u32,
    /// FP adds per iteration.
    pub fp_adds: u32,
    /// FP multiplies per iteration.
    pub fp_muls: u32,
    /// One FP divide every this many iterations (0 = never).
    pub fp_div_every: u64,
    /// One integer multiply every this many iterations (0 = never).
    pub int_mul_every: u64,
    /// Probability that the data-dependent branch is taken (0 disables
    /// the branch entirely; values near 0.5 are hard to predict).
    pub data_branch_prob: f64,
    /// Alternate FP ops between chained and independent (models the
    /// higher ILP of codes like fpppp; `false` gives one serial chain).
    pub fp_independent: bool,
    /// Load destinations are FP registers (FP benchmark) or integer.
    pub fp_data: bool,
    /// Base code address (PCs of the loop body).
    pub code_base: u64,
}

impl LoopKernel {
    /// A minimal integer kernel template; customise fields as needed.
    pub fn template(name: &str) -> Self {
        LoopKernel {
            name: name.to_owned(),
            loads: Vec::new(),
            stores: Vec::new(),
            random_loads: 0,
            random_every: 1,
            random_footprint: 0,
            random_base: 0x4000_0000,
            chase: false,
            int_ops: 2,
            fp_adds: 0,
            fp_muls: 0,
            fp_div_every: 0,
            int_mul_every: 0,
            data_branch_prob: 0.0,
            fp_independent: false,
            fp_data: false,
            code_base: 0x0040_0000,
        }
    }

    /// Instantiates the generator with a deterministic seed.
    pub fn generator(&self, seed: u64) -> KernelGen {
        KernelGen::new(self.clone(), seed)
    }

    /// Static instructions per loop iteration (upper bound; divide/mul
    /// slots count even on iterations that skip them).
    pub fn ops_per_iteration(&self) -> usize {
        self.loads.len()
            + self.stores.len()
            + self.random_loads as usize
            + self.int_ops as usize
            + self.fp_adds as usize
            + self.fp_muls as usize
            + usize::from(self.fp_div_every > 0)
            + usize::from(self.int_mul_every > 0)
            + usize::from(self.data_branch_prob > 0.0)
            + 2 // induction update + loop-back branch
    }
}

/// Iterator expanding a [`LoopKernel`] into dynamic instructions.
#[derive(Debug)]
pub struct KernelGen {
    kernel: LoopKernel,
    iter: u64,
    queue: VecDeque<TraceOp>,
    rng: StdRng,
}

/// Integer register pool for generated code (r0 is the zero register;
/// r1 is reserved as the induction variable).
const INT_POOL: std::ops::Range<u8> = 2..28;
/// FP register pool (architectural 32..=63).
const FP_POOL: std::ops::Range<u8> = 34..62;

impl KernelGen {
    /// Creates the generator.
    pub fn new(kernel: LoopKernel, seed: u64) -> Self {
        KernelGen {
            kernel,
            iter: 0,
            queue: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The kernel being expanded.
    pub fn kernel(&self) -> &LoopKernel {
        &self.kernel
    }

    fn int_reg(&self, slot: u64) -> u8 {
        let span = u64::from(INT_POOL.end - INT_POOL.start);
        INT_POOL.start + ((self.iter.wrapping_mul(7).wrapping_add(slot)) % span) as u8
    }

    fn fp_reg(&self, slot: u64) -> u8 {
        let span = u64::from(FP_POOL.end - FP_POOL.start);
        FP_POOL.start + ((self.iter.wrapping_mul(5).wrapping_add(slot)) % span) as u8
    }

    fn refill(&mut self) {
        let k = self.kernel.clone();
        let i = self.iter;
        let mut pc = k.code_base;
        let next_pc = |n: &mut u64| {
            let p = *n;
            *n += 4;
            p
        };
        let mut load_dsts: Vec<u8> = Vec::new();
        let mut slot = 0u64;

        // Induction variable update.
        self.queue.push_back(TraceOp::compute(
            next_pc(&mut pc),
            OpClass::IntAlu,
            1,
            [Some(1), None],
        ));

        // Array loads.
        for walk in &k.loads {
            if !i.is_multiple_of(walk.every) {
                pc += 4; // keep PCs stable for skipped slots
                slot += 1;
                continue;
            }
            let dst = if k.fp_data {
                self.fp_reg(slot)
            } else {
                self.int_reg(slot)
            };
            self.queue.push_back(TraceOp::load(
                next_pc(&mut pc),
                walk.addr(i / walk.every),
                dst,
                Some(1),
            ));
            load_dsts.push(dst);
            slot += 1;
        }

        // Random / pointer-chase loads.
        if k.random_loads > 0 && i.is_multiple_of(k.random_every.max(1)) && k.random_footprint > 0 {
            let mut prev: Option<u8> = None;
            for _ in 0..k.random_loads {
                let off = self.rng.gen_range(0..k.random_footprint / 8) * 8;
                let dst = self.int_reg(slot);
                let base = if k.chase { prev.or(Some(1)) } else { Some(1) };
                self.queue.push_back(TraceOp::load(
                    next_pc(&mut pc),
                    k.random_base + off,
                    dst,
                    base,
                ));
                load_dsts.push(dst);
                prev = Some(dst);
                slot += 1;
            }
        } else {
            // Keep PCs stable across iterations: reserve the slots.
            pc += 4 * u64::from(k.random_loads);
        }

        // Integer compute, consuming load results where available.
        let mut last_int = 1u8;
        for n in 0..k.int_ops {
            let dst = self.int_reg(slot);
            let src1 = load_dsts
                .iter()
                .rev()
                .find(|&&r| r < 32)
                .copied()
                .unwrap_or(last_int);
            let src2 = if n % 2 == 0 { Some(last_int) } else { Some(1) };
            self.queue.push_back(TraceOp::compute(
                next_pc(&mut pc),
                OpClass::IntAlu,
                dst,
                [Some(src1), src2],
            ));
            last_int = dst;
            slot += 1;
        }
        if k.int_mul_every > 0 {
            if i.is_multiple_of(k.int_mul_every) {
                let dst = self.int_reg(slot);
                self.queue.push_back(TraceOp::compute(
                    next_pc(&mut pc),
                    OpClass::IntMul,
                    dst,
                    [Some(last_int), Some(1)],
                ));
                last_int = dst;
            } else {
                pc += 4;
            }
            slot += 1;
        }

        // FP compute: a dependency chain seeded by the FP loads.
        let mut last_fp: Option<u8> = load_dsts.iter().rev().find(|&&r| r >= 32).copied();
        for n in 0..(k.fp_adds + k.fp_muls) {
            let class = if n < k.fp_adds {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            };
            let dst = self.fp_reg(slot + 13);
            let src1 = if k.fp_independent && n % 2 == 1 {
                load_dsts.iter().find(|&&r| r >= 32).copied().unwrap_or(32)
            } else {
                last_fp.unwrap_or(33)
            };
            let src2 = load_dsts.iter().find(|&&r| r >= 32).copied().unwrap_or(32);
            self.queue.push_back(TraceOp::compute(
                next_pc(&mut pc),
                class,
                dst,
                [Some(src1), Some(src2)],
            ));
            last_fp = Some(dst);
            slot += 1;
        }
        if k.fp_div_every > 0 {
            if i.is_multiple_of(k.fp_div_every) {
                let dst = self.fp_reg(slot + 13);
                self.queue.push_back(TraceOp::compute(
                    next_pc(&mut pc),
                    OpClass::FpDiv,
                    dst,
                    [Some(last_fp.unwrap_or(33)), Some(32)],
                ));
                last_fp = Some(dst);
            } else {
                pc += 4;
            }
        }

        // Stores of computed results.
        for walk in &k.stores {
            if !i.is_multiple_of(walk.every) {
                pc += 4;
                continue;
            }
            let src = if k.fp_data {
                last_fp.unwrap_or(33)
            } else {
                last_int
            };
            self.queue.push_back(TraceOp::store(
                next_pc(&mut pc),
                walk.addr(i / walk.every),
                src,
                Some(1),
            ));
        }

        // Data-dependent branch (hard to predict when prob ≈ 0.5).
        if k.data_branch_prob > 0.0 {
            let taken = self.rng.gen_bool(k.data_branch_prob);
            let bpc = next_pc(&mut pc);
            self.queue
                .push_back(TraceOp::branch(bpc, taken, bpc + 16, Some(last_int)));
        }

        // Loop-back branch (taken; highly predictable).
        let bpc = next_pc(&mut pc);
        self.queue
            .push_back(TraceOp::branch(bpc, true, k.code_base, Some(1)));

        self.iter += 1;
    }
}

impl Iterator for KernelGen {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        if self.queue.is_empty() {
            self.refill();
        }
        self.queue.pop_front()
    }
}

/// Adapter extracting the memory references of an op stream.
pub fn mem_refs<I: Iterator<Item = TraceOp>>(ops: I) -> impl Iterator<Item = MemRef> {
    ops.filter_map(|op| op.mem_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_kernel() -> LoopKernel {
        let mut k = LoopKernel::template("demo");
        k.loads = vec![
            ArrayWalk::sequential(0x1_0000, 256, 8),
            ArrayWalk::strided(0x2_0000, 128, 8, 4),
        ];
        k.stores = vec![ArrayWalk::sequential(0x3_0000, 256, 8)];
        k.fp_adds = 2;
        k.fp_muls = 1;
        k.fp_data = true;
        k.int_ops = 2;
        k.data_branch_prob = 0.3;
        k
    }

    #[test]
    fn array_walk_addressing() {
        let w = ArrayWalk::sequential(100, 4, 8);
        assert_eq!(
            (0..6).map(|i| w.addr(i)).collect::<Vec<_>>(),
            vec![100, 108, 116, 124, 100, 108]
        );
        let s = ArrayWalk::strided(0, 4, 8, 16);
        assert_eq!(s.addr(1), 128);
        // Column walk over a 3-row x 2-col array with 4KB pitch.
        let c = ArrayWalk::column_walk(0, 3, 2, 4096, 8);
        assert_eq!(c.addr(0), 0);
        assert_eq!(c.addr(1), 4096);
        assert_eq!(c.addr(2), 8192);
        assert_eq!(c.addr(3), 8); // next column
        assert_eq!(c.addr(6), 0); // wrapped around both
    }

    #[test]
    fn generator_is_deterministic() {
        let k = demo_kernel();
        let a: Vec<_> = k.generator(7).take(500).collect();
        let b: Vec<_> = k.generator(7).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<_> = k.generator(8).take(500).collect();
        assert_ne!(a, c); // branch pattern differs
    }

    #[test]
    fn pcs_are_stable_across_iterations() {
        let k = demo_kernel();
        let ops: Vec<_> = k.generator(1).take(1000).collect();
        use std::collections::HashMap;
        let mut class_by_pc: HashMap<u64, OpClass> = HashMap::new();
        for op in &ops {
            let prev = class_by_pc.insert(op.pc, op.class);
            if let Some(prev) = prev {
                assert_eq!(prev, op.class, "pc {:#x} changed class", op.pc);
            }
        }
    }

    #[test]
    fn loads_match_walk_addresses() {
        let k = demo_kernel();
        let ops: Vec<_> = k.generator(1).take(200).collect();
        let loads: Vec<&TraceOp> = ops.iter().filter(|o| o.is_load()).collect();
        // First two loads of iteration 0 follow the walks.
        assert_eq!(loads[0].addr, Some(k.loads[0].addr(0)));
        assert_eq!(loads[1].addr, Some(k.loads[1].addr(0)));
    }

    #[test]
    fn loop_branch_closes_every_iteration() {
        let k = demo_kernel();
        let ops: Vec<_> = k.generator(1).take(300).collect();
        let backs: Vec<&TraceOp> = ops
            .iter()
            .filter(|o| o.is_branch() && o.target == k.code_base)
            .collect();
        assert!(backs.len() >= 2);
        assert!(backs.iter().all(|b| b.taken));
    }

    #[test]
    fn fp_chain_has_dependences() {
        let k = demo_kernel();
        // Inspect only the first iteration's FP ops (3 of them).
        let ops: Vec<_> = k.generator(1).take(k.ops_per_iteration()).collect();
        let fp_ops: Vec<&TraceOp> = ops.iter().filter(|o| o.class.is_fp()).collect();
        assert_eq!(fp_ops.len(), 3);
        // The chain: op n+1 reads op n's destination.
        assert_eq!(fp_ops[1].srcs[0], fp_ops[0].dst);
        assert_eq!(fp_ops[2].srcs[0], fp_ops[1].dst);
    }

    #[test]
    fn chase_serializes_random_loads() {
        let mut k = LoopKernel::template("chase");
        k.random_loads = 3;
        k.random_footprint = 1 << 16;
        k.chase = true;
        let ops: Vec<_> = k.generator(1).take(20).collect();
        let loads: Vec<&TraceOp> = ops.iter().filter(|o| o.is_load()).collect();
        assert_eq!(loads[1].srcs[0], loads[0].dst);
        assert_eq!(loads[2].srcs[0], loads[1].dst);
    }

    #[test]
    fn mem_refs_extracts_loads_and_stores() {
        let k = demo_kernel();
        let n_ops = 500;
        let refs: Vec<_> = mem_refs(k.generator(1).take(n_ops)).collect();
        let ops: Vec<_> = k.generator(1).take(n_ops).collect();
        let expected = ops.iter().filter(|o| o.class.is_memory()).count();
        assert_eq!(refs.len(), expected);
        assert!(refs.iter().any(|r| r.is_write));
    }

    #[test]
    fn ops_per_iteration_matches_stream() {
        let mut k = demo_kernel();
        k.data_branch_prob = 0.5; // branch always present
        k.random_loads = 0;
        let per_iter = k.ops_per_iteration();
        let ops: Vec<_> = k.generator(1).take(3 * per_iter).collect();
        // Count loop-back branches: one per iteration.
        let backs = ops
            .iter()
            .filter(|o| o.is_branch() && o.target == k.code_base)
            .count();
        assert_eq!(backs, 3);
    }

    #[test]
    fn random_every_gates_bursts() {
        let mut k = LoopKernel::template("bursty");
        k.random_loads = 2;
        k.random_every = 4;
        k.random_footprint = 1 << 12;
        let ops: Vec<_> = k.generator(3).take(200).collect();
        let loads = ops.iter().filter(|o| o.is_load()).count();
        // 2 loads every 4th iteration; ~each iteration has 4 ops
        // (induction + branch + maybe ints). Just check sparsity.
        assert!(loads > 0);
        assert!(loads < ops.len() / 4);
    }
}

//! Classic scientific-computing address patterns.
//!
//! The paper's conclusion argues that I-Poly placement matters most where
//! regular codes meet power-of-two layouts: FFTs, stencils, and — its
//! closing example — *tiled* linear algebra, where "tiling often
//! introduces additional conflict misses which depend on array dimensions
//! as well as stride" and an I-Poly cache "would eliminate the need to
//! compute conflict-free tile dimensions". This module generates those
//! access streams so the claim can be measured (bench binary
//! `tiling_conflicts`, example `fft_butterfly`).
//!
//! All generators are deterministic and produce [`MemRef`] streams
//! directly usable by the cache simulators.

use crate::record::MemRef;

/// Radix-2 in-place FFT access pattern over `2^log2_n` complex elements.
///
/// Every stage `s` performs `n/2` butterflies on pairs `(i, i + 2^s)` —
/// an access stream that is *nothing but* power-of-two strides, the
/// workload class the paper's Figure 1 guarantees are conflict-free under
/// I-Poly placement.
///
/// # Example
///
/// ```
/// use cac_trace::patterns::FftButterfly;
///
/// let fft = FftButterfly::new(0x1000, 10, 16); // 1K points, 16B elements
/// let refs: Vec<_> = fft.stage(3).collect();
/// assert_eq!(refs.len(), 2 * 512 * 2); // 512 butterflies, 2 loads + 2 stores
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FftButterfly {
    base: u64,
    log2_n: u32,
    elem_size: u64,
}

impl FftButterfly {
    /// Creates the pattern: `2^log2_n` elements of `elem_size` bytes at
    /// `base`.
    pub fn new(base: u64, log2_n: u32, elem_size: u64) -> Self {
        FftButterfly {
            base,
            log2_n,
            elem_size,
        }
    }

    /// Number of points.
    pub fn n(&self) -> u64 {
        1 << self.log2_n
    }

    /// Number of butterfly stages (`log2 n`).
    pub fn stages(&self) -> u32 {
        self.log2_n
    }

    /// The access stream of one butterfly stage: for each butterfly, load
    /// both inputs then store both outputs.
    pub fn stage(&self, s: u32) -> impl Iterator<Item = MemRef> + '_ {
        assert!(s < self.log2_n, "stage {s} out of range");
        let half = 1u64 << s;
        let n = self.n();
        let base = self.base;
        let elem = self.elem_size;
        (0..n / 2).flat_map(move |b| {
            // Butterfly `b` pairs index i with i + half, where i skips the
            // high partner bits: i = (b & !(half-1)) << 1 | (b & (half-1)).
            let lo = ((b & !(half - 1)) << 1) | (b & (half - 1));
            let hi = lo + half;
            let a0 = base + lo * elem;
            let a1 = base + hi * elem;
            [
                MemRef {
                    pc: 0x100,
                    addr: a0,
                    is_write: false,
                },
                MemRef {
                    pc: 0x104,
                    addr: a1,
                    is_write: false,
                },
                MemRef {
                    pc: 0x108,
                    addr: a0,
                    is_write: true,
                },
                MemRef {
                    pc: 0x10c,
                    addr: a1,
                    is_write: true,
                },
            ]
        })
    }

    /// The bit-reversal permutation pass that precedes the butterflies:
    /// for each `i < rev(i)`, load both elements and store both swapped.
    pub fn bit_reversal(&self) -> impl Iterator<Item = MemRef> + '_ {
        let n = self.n();
        let bits = self.log2_n;
        let base = self.base;
        let elem = self.elem_size;
        (0..n).flat_map(move |i| {
            let j = i.reverse_bits() >> (64 - bits);
            if i < j {
                let a0 = base + i * elem;
                let a1 = base + j * elem;
                vec![
                    MemRef {
                        pc: 0x200,
                        addr: a0,
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x204,
                        addr: a1,
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x208,
                        addr: a0,
                        is_write: true,
                    },
                    MemRef {
                        pc: 0x20c,
                        addr: a1,
                        is_write: true,
                    },
                ]
            } else {
                Vec::new()
            }
        })
    }

    /// The whole transform: bit reversal followed by every stage.
    pub fn full_transform(&self) -> impl Iterator<Item = MemRef> + '_ {
        self.bit_reversal()
            .chain((0..self.log2_n).flat_map(move |s| self.stage(s)))
    }
}

/// A 5-point stencil sweep over a `rows × cols` grid with an explicit row
/// pitch — the pitch, not the logical width, is what collides in a cache,
/// and power-of-two pitches are the common (and pathological) choice.
#[derive(Debug, Clone, Copy)]
pub struct Stencil5 {
    base: u64,
    rows: u64,
    cols: u64,
    pitch: u64,
    elem_size: u64,
}

impl Stencil5 {
    /// Creates the stencil pattern. `pitch` is the byte distance between
    /// vertically adjacent elements.
    pub fn new(base: u64, rows: u64, cols: u64, pitch: u64, elem_size: u64) -> Self {
        Stencil5 {
            base,
            rows,
            cols,
            pitch,
            elem_size,
        }
    }

    fn addr(&self, r: u64, c: u64) -> u64 {
        self.base + r * self.pitch + c * self.elem_size
    }

    /// One full sweep: for each interior point, load its four neighbours
    /// and itself, then store the result to a second grid placed directly
    /// after the first.
    pub fn sweep(&self) -> impl Iterator<Item = MemRef> + '_ {
        let out_base = self.base + self.rows * self.pitch;
        (1..self.rows - 1).flat_map(move |r| {
            (1..self.cols - 1).flat_map(move |c| {
                [
                    MemRef {
                        pc: 0x300,
                        addr: self.addr(r, c),
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x304,
                        addr: self.addr(r - 1, c),
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x308,
                        addr: self.addr(r + 1, c),
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x30c,
                        addr: self.addr(r, c - 1),
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x310,
                        addr: self.addr(r, c + 1),
                        is_write: false,
                    },
                    MemRef {
                        pc: 0x314,
                        addr: out_base + r * self.pitch + c * self.elem_size,
                        is_write: true,
                    },
                ]
            })
        })
    }
}

/// Sparse matrix–vector product (`y = A·x`) in CSR form, with a
/// deterministic pseudo-random sparsity pattern.
///
/// Per row: a `row_ptr` load, then for each of `nnz_per_row` non-zeros a
/// `col_idx` load, a value load, and a gather from `x[col]`; finally a
/// store to `y[row]`. The gathers are the interesting part: their
/// addresses are as close to random as real codes get, so *no* placement
/// function helps or hurts much — a useful control workload.
#[derive(Debug, Clone, Copy)]
pub struct CsrSpmv {
    rows: u64,
    x_len: u64,
    nnz_per_row: u64,
    /// Layout bases.
    row_ptr_base: u64,
    col_val_base: u64,
    x_base: u64,
    y_base: u64,
    seed: u64,
}

impl CsrSpmv {
    /// Creates the pattern: `rows` matrix rows, `nnz_per_row` non-zeros
    /// per row, gathering from an `x` vector of `x_len` 8-byte elements.
    pub fn new(rows: u64, nnz_per_row: u64, x_len: u64, seed: u64) -> Self {
        CsrSpmv {
            rows,
            x_len,
            nnz_per_row,
            row_ptr_base: 0x1000_0000,
            col_val_base: 0x2000_0000,
            x_base: 0x3000_0000,
            y_base: 0x4000_0000,
            seed,
        }
    }

    /// One full product.
    pub fn product(&self) -> impl Iterator<Item = MemRef> + '_ {
        let s = *self;
        (0..s.rows).flat_map(move |r| {
            let mut refs = Vec::with_capacity(2 + 3 * s.nnz_per_row as usize);
            refs.push(MemRef {
                pc: 0x400,
                addr: s.row_ptr_base + r * 4,
                is_write: false,
            });
            for k in 0..s.nnz_per_row {
                let nz = r * s.nnz_per_row + k;
                // SplitMix-style hash for the column index.
                let mut z = s.seed.wrapping_add(nz.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let col = (z ^ (z >> 31)) % s.x_len;
                refs.push(MemRef {
                    pc: 0x404,
                    addr: s.col_val_base + nz * 4,
                    is_write: false,
                });
                refs.push(MemRef {
                    pc: 0x408,
                    addr: s.col_val_base + (s.rows * s.nnz_per_row) * 4 + nz * 8,
                    is_write: false,
                });
                refs.push(MemRef {
                    pc: 0x40c,
                    addr: s.x_base + col * 8,
                    is_write: false,
                });
            }
            refs.push(MemRef {
                pc: 0x410,
                addr: s.y_base + r * 8,
                is_write: true,
            });
            refs
        })
    }
}

/// Tiled matrix multiply `C = A·B` over `n × n` matrices of 8-byte
/// elements with an explicit storage pitch, processed in `tile × tile`
/// blocks — the paper's closing example of a workload whose conflict
/// behaviour "depends on array dimensions as well as stride".
///
/// The generator emits the inner-kernel access stream
/// (`A[i][k]`, `B[k][j]`, `C[i][j]` per multiply-accumulate) for one
/// block-row of tiles, which is enough to expose tile-vs-pitch conflicts
/// without generating the full `O(n^3)` trace.
#[derive(Debug, Clone, Copy)]
pub struct TiledMatMul {
    n: u64,
    tile: u64,
    pitch: u64,
    a_base: u64,
    b_base: u64,
    c_base: u64,
}

impl TiledMatMul {
    /// Element size: double precision.
    pub const ELEM: u64 = 8;

    /// Creates the pattern for `n × n` matrices in `tile × tile` blocks
    /// with rows `pitch` bytes apart. The three matrices are laid out
    /// back-to-back (pitch-aligned), mirroring a Fortran `DIMENSION
    /// A(LDA,N)` declaration.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero, `tile > n`, or the pitch cannot hold a
    /// row (`pitch < n * 8`).
    pub fn new(n: u64, tile: u64, pitch: u64) -> Self {
        assert!(tile > 0 && tile <= n, "tile must be in 1..=n");
        assert!(pitch >= n * Self::ELEM, "pitch too small for a row");
        let matrix_bytes = n * pitch;
        TiledMatMul {
            n,
            tile,
            pitch,
            a_base: 0,
            b_base: matrix_bytes,
            c_base: 2 * matrix_bytes,
        }
    }

    fn a(&self, i: u64, k: u64) -> u64 {
        self.a_base + i * self.pitch + k * Self::ELEM
    }

    fn b(&self, k: u64, j: u64) -> u64 {
        self.b_base + k * self.pitch + j * Self::ELEM
    }

    fn c(&self, i: u64, j: u64) -> u64 {
        self.c_base + i * self.pitch + j * Self::ELEM
    }

    /// The access stream of one block-row of the tiled product: tiles
    /// `C[0..tile, J..J+tile] += A[0..tile, K..K+tile] · B[K.., J..]` for
    /// all tile coordinates `(J, K)`.
    pub fn block_row(&self) -> impl Iterator<Item = MemRef> + '_ {
        let s = *self;
        let tiles = s.n / s.tile;
        (0..tiles).flat_map(move |jt| {
            (0..tiles).flat_map(move |kt| {
                let (j0, k0) = (jt * s.tile, kt * s.tile);
                (0..s.tile).flat_map(move |i| {
                    (0..s.tile).flat_map(move |jj| {
                        let j = j0 + jj;
                        (0..s.tile).flat_map(move |kk| {
                            let k = k0 + kk;
                            [
                                MemRef {
                                    pc: 0x500,
                                    addr: s.a(i, k),
                                    is_write: false,
                                },
                                MemRef {
                                    pc: 0x504,
                                    addr: s.b(k, j),
                                    is_write: false,
                                },
                                MemRef {
                                    pc: 0x508,
                                    addr: s.c(i, j),
                                    is_write: false,
                                },
                                MemRef {
                                    pc: 0x50c,
                                    addr: s.c(i, j),
                                    is_write: true,
                                },
                            ]
                        })
                    })
                })
            })
        })
    }

    /// Bytes touched by one tile triple (`3 · tile² · 8`) — the quantity
    /// tile-size selection tries to fit in cache.
    pub fn tile_footprint(&self) -> u64 {
        3 * self.tile * self.tile * Self::ELEM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_stage_pairs_are_power_of_two_apart() {
        let fft = FftButterfly::new(0, 6, 16);
        for s in 0..6 {
            let refs: Vec<_> = fft.stage(s).collect();
            assert_eq!(refs.len(), 4 * 32); // 32 butterflies × 4 refs
            for quad in refs.chunks(4) {
                let lo = quad[0].addr;
                let hi = quad[1].addr;
                assert_eq!(hi - lo, 16 << s, "stage {s} partner distance");
                assert!(!quad[0].is_write && !quad[1].is_write);
                assert!(quad[2].is_write && quad[3].is_write);
            }
        }
    }

    #[test]
    fn fft_stage_touches_every_element_once_per_role() {
        let fft = FftButterfly::new(0, 8, 16);
        for s in [0, 3, 7] {
            let mut seen = std::collections::HashSet::new();
            for r in fft.stage(s).filter(|r| !r.is_write) {
                assert!(seen.insert(r.addr), "element loaded twice in a stage");
            }
            assert_eq!(seen.len(), 256);
        }
    }

    #[test]
    fn fft_bit_reversal_swaps_each_pair_once() {
        let fft = FftButterfly::new(0, 4, 16);
        let loads: Vec<_> = fft.bit_reversal().filter(|r| !r.is_write).collect();
        // n = 16: fixed points are 0,6,9,15 (palindromic 4-bit indices);
        // 6 swapped pairs × 2 loads.
        assert_eq!(loads.len(), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fft_stage_bounds() {
        let fft = FftButterfly::new(0, 4, 16);
        let _ = fft.stage(4);
    }

    #[test]
    fn stencil_touches_neighbours() {
        let st = Stencil5::new(0, 8, 8, 1024, 8);
        let refs: Vec<_> = st.sweep().collect();
        assert_eq!(refs.len(), 6 * 6 * 6); // 36 interior points × 6 refs
        let first = &refs[..6];
        assert_eq!(first[0].addr, 1024 + 8); // (1,1)
        assert_eq!(first[1].addr, 8); // (0,1)
        assert_eq!(first[2].addr, 2 * 1024 + 8); // (2,1)
        assert_eq!(first[3].addr, 1024); // (1,0)
        assert_eq!(first[4].addr, 1024 + 16); // (1,2)
        assert!(first[5].is_write);
    }

    #[test]
    fn spmv_shape_and_determinism() {
        let spmv = CsrSpmv::new(16, 4, 1024, 7);
        let a: Vec<_> = spmv.product().collect();
        let b: Vec<_> = spmv.product().collect();
        assert_eq!(a, b);
        // Per row: 1 row_ptr + 4 × (col + val + gather) + 1 store.
        assert_eq!(a.len(), 16 * (1 + 4 * 3 + 1));
        assert_eq!(a.iter().filter(|r| r.is_write).count(), 16);
        // Gathers stay inside x.
        for r in a
            .iter()
            .filter(|r| r.addr >= 0x3000_0000 && r.addr < 0x4000_0000)
        {
            assert!(r.addr < 0x3000_0000 + 1024 * 8);
        }
    }

    #[test]
    fn matmul_validation_and_footprint() {
        let mm = TiledMatMul::new(64, 16, 64 * 8);
        assert_eq!(mm.tile_footprint(), 3 * 16 * 16 * 8);
        let refs: Vec<_> = mm.block_row().collect();
        // tiles=4: 4*4 tile pairs × 16^3 MACs × 4 refs.
        assert_eq!(refs.len(), 16 * 4096 * 4);
    }

    #[test]
    #[should_panic(expected = "tile must be")]
    fn matmul_rejects_oversized_tile() {
        let _ = TiledMatMul::new(16, 32, 16 * 8);
    }

    #[test]
    #[should_panic(expected = "pitch too small")]
    fn matmul_rejects_small_pitch() {
        let _ = TiledMatMul::new(64, 8, 64);
    }

    #[test]
    fn matmul_addresses_respect_pitch() {
        let mm = TiledMatMul::new(8, 8, 4096);
        let refs: Vec<_> = mm.block_row().collect();
        // A addresses: row i at i*4096.
        let a_rows: std::collections::HashSet<u64> = refs
            .iter()
            .filter(|r| r.addr < 8 * 4096)
            .map(|r| r.addr / 4096)
            .collect();
        assert_eq!(a_rows.len(), 8);
    }
}

//! Synthetic SPEC95 workload models.
//!
//! One model per benchmark of the paper's Tables 2–3. Each model is a
//! [`LoopKernel`] whose components are chosen to reproduce the *mechanism*
//! behind that benchmark's published miss ratio on an 8KB 2-way cache:
//!
//! * **hot arrays** — small cyclic working sets that fit (hits);
//! * **sequential streams** — long arrays walked once (a compulsory miss
//!   every `block/elem` accesses, ≈25% for 8-byte elements and 32-byte
//!   blocks);
//! * **wide-strided streams** — one new block per access (≈100% misses,
//!   insensitive to placement: capacity/compulsory);
//! * **conflict arrays** — equal-sized arrays whose bases are congruent
//!   modulo the cache-way size, so all of them compete for the *same* set
//!   under conventional indexing (the paper's `b0[i]`/`b1[j]` case) while
//!   I-Poly spreads them;
//! * **random/pointer-chase regions** — capacity-type misses over a
//!   footprint larger than the cache.
//!
//! The absolute values are calibrated against column 6 of Table 2 (see
//! `EXPERIMENTS.md`); the mechanism mix is what makes tomcatv/swim/wave5
//! collapse under conventional indexing and recover under I-Poly, which is
//! the effect the paper's headline results measure.

use crate::kernels::{ArrayWalk, KernelGen, LoopKernel};

/// Paper-reported values for one benchmark (Table 2 of the paper).
///
/// Miss ratios are load miss ratios in percent; IPC columns follow the
/// table's layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// 16KB conventional: IPC.
    pub conv16_ipc: f64,
    /// 16KB conventional: load miss ratio (%).
    pub conv16_miss: f64,
    /// 8KB conventional: IPC without address prediction.
    pub conv8_ipc: f64,
    /// 8KB conventional: IPC with address prediction.
    pub conv8_ipc_pred: f64,
    /// 8KB conventional: load miss ratio (%).
    pub conv8_miss: f64,
    /// 8KB I-Poly, XOR not in critical path: IPC (no prediction).
    pub ipoly_ipc: f64,
    /// 8KB I-Poly: load miss ratio (%).
    pub ipoly_miss: f64,
    /// 8KB I-Poly, XOR in critical path: IPC without prediction.
    pub ipoly_cp_ipc: f64,
    /// 8KB I-Poly, XOR in critical path: IPC with prediction.
    pub ipoly_cp_ipc_pred: f64,
}

/// The 18 SPEC95 benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Go,
    M88ksim,
    Gcc,
    Compress,
    Li,
    Ijpeg,
    Perl,
    Vortex,
    Tomcatv,
    Swim,
    Su2cor,
    Hydro2d,
    Applu,
    Mgrid,
    Turb3d,
    Apsi,
    Fpppp,
    Wave5,
}

/// Region bases for generated address spaces.
const HOT_BASE: u64 = 0x0010_0000;
const CONFLICT_BASE: u64 = 0x0100_0000;
const LONG_CONFLICT_BASE: u64 = 0x0200_0000;
const STREAM_BASE: u64 = 0x1000_0000;
const STORE_BASE: u64 = 0x2000_0000;

/// `n` hot arrays of 256B each: tiny cyclic working sets that stay
/// resident even with streams flowing through the cache.
fn hot_arrays(n: usize) -> Vec<ArrayWalk> {
    (0..n as u64)
        .map(|k| ArrayWalk::sequential(HOT_BASE + k * 0x100, 32, 8))
        .collect()
}

/// `n` short conflict arrays accessed once every `every` iterations — a
/// diluted conflict stream for benchmarks with mild conflict behaviour.
fn short_conflict_arrays_every(n: usize, every: u64) -> Vec<ArrayWalk> {
    short_conflict_arrays(n)
        .into_iter()
        .map(|w| w.with_every(every))
        .collect()
}

/// `n` sequential streams over huge arrays (≈25% miss, placement-neutral).
fn seq_streams(n: usize) -> Vec<ArrayWalk> {
    // Bases staggered by a non-power-of-two offset so concurrent streams
    // do not march through the same sets in lockstep.
    (0..n as u64)
        .map(|k| ArrayWalk::sequential(STREAM_BASE + k * 0x0100_0000 + (k + 1) * 0x860, 1 << 21, 8))
        .collect()
}

/// `n` wide-strided streams: one new block per access (≈100% miss,
/// placement-neutral).
fn wide_streams(n: usize) -> Vec<ArrayWalk> {
    (0..n as u64)
        .map(|k| {
            ArrayWalk::strided(
                STREAM_BASE + 0x0800_0000 + k * 0x0100_0000 + (2 * k + 1) * 0x4E0,
                1 << 21,
                8,
                4,
            )
        })
        .collect()
}

/// `n` *short* conflict arrays: 128B each (4 blocks), bases 4KB apart, so
/// every array's current block maps to the same set of an 8KB 2-way
/// cache. Under I-Poly they are small and frequently revisited enough to
/// stay resident.
fn short_conflict_arrays(n: usize) -> Vec<ArrayWalk> {
    (0..n as u64)
        .map(|k| ArrayWalk::sequential(CONFLICT_BASE + k * 0x1000, 16, 8))
        .collect()
}

/// `n` *long* conflict arrays: 16KB each, bases 20KB apart (still
/// congruent mod 4KB). Conventional indexing thrashes one set; I-Poly
/// converts them into ≈25%-miss streams (they exceed capacity).
fn long_conflict_arrays(n: usize) -> Vec<ArrayWalk> {
    (0..n as u64)
        .map(|k| ArrayWalk::sequential(LONG_CONFLICT_BASE + k * 0x5000, 2048, 8))
        .collect()
}

/// One store stream (write-through/no-allocate: does not disturb cache
/// contents, but exercises ports and the store buffer).
fn store_stream() -> Vec<ArrayWalk> {
    vec![ArrayWalk::sequential(STORE_BASE, 1 << 21, 8)]
}

impl SpecBenchmark {
    /// All 18 benchmarks in the paper's table order.
    pub fn all() -> [SpecBenchmark; 18] {
        use SpecBenchmark::*;
        [
            Go, M88ksim, Gcc, Compress, Li, Ijpeg, Perl, Vortex, Tomcatv, Swim, Su2cor, Hydro2d,
            Applu, Mgrid, Turb3d, Apsi, Fpppp, Wave5,
        ]
    }

    /// Lowercase benchmark name as the paper prints it.
    pub fn name(&self) -> &'static str {
        self.paper_row().name
    }

    /// `true` for the SPECfp95 programs.
    pub fn is_fp(&self) -> bool {
        use SpecBenchmark::*;
        matches!(
            self,
            Tomcatv | Swim | Su2cor | Hydro2d | Applu | Mgrid | Turb3d | Apsi | Fpppp | Wave5
        )
    }

    /// The three high-conflict programs of Table 3 (tomcatv, swim, wave5).
    pub fn is_high_conflict(&self) -> bool {
        matches!(
            self,
            SpecBenchmark::Tomcatv | SpecBenchmark::Swim | SpecBenchmark::Wave5
        )
    }

    /// The synthetic workload model.
    pub fn kernel(&self) -> LoopKernel {
        use SpecBenchmark::*;
        let mut k = LoopKernel::template(self.name());
        match self {
            Go => {
                k.loads = [hot_arrays(6), seq_streams(1)].concat();
                k.random_loads = 1;
                k.random_footprint = 16 << 10;
                k.int_ops = 5;
                k.data_branch_prob = 0.42;
            }
            M88ksim => {
                k.loads = hot_arrays(7);
                k.random_loads = 1;
                k.random_every = 2;
                k.random_footprint = 10 << 10;
                k.int_ops = 5;
                k.data_branch_prob = 0.12;
            }
            Gcc => {
                k.loads = [hot_arrays(6), seq_streams(1)].concat();
                k.random_loads = 1;
                k.random_footprint = 16 << 10;
                k.int_ops = 5;
                k.data_branch_prob = 0.3;
            }
            Compress => {
                k.loads = [hot_arrays(6), seq_streams(1)].concat();
                k.random_loads = 1;
                k.random_footprint = 32 << 10;
                k.int_ops = 5;
                k.stores = store_stream();
                k.data_branch_prob = 0.2;
            }
            Li => {
                k.loads = [hot_arrays(6), seq_streams(1)].concat();
                k.random_loads = 1;
                k.random_footprint = 10 << 10;
                k.chase = true;
                k.int_ops = 4;
                k.data_branch_prob = 0.18;
            }
            Ijpeg => {
                k.loads = [
                    hot_arrays(7),
                    seq_streams(1),
                    short_conflict_arrays_every(3, 32),
                ]
                .concat();
                k.int_ops = 6;
                k.int_mul_every = 4;
                k.stores = store_stream();
                k.data_branch_prob = 0.06;
            }
            Perl => {
                k.loads = [hot_arrays(6), seq_streams(1)].concat();
                k.random_loads = 1;
                k.random_footprint = 12 << 10;
                k.chase = true;
                k.int_ops = 4;
                k.data_branch_prob = 0.22;
            }
            Vortex => {
                k.loads = [hot_arrays(6), seq_streams(1)].concat();
                k.random_loads = 1;
                k.random_footprint = 10 << 10;
                k.int_ops = 4;
                k.stores = store_stream();
                k.data_branch_prob = 0.15;
            }
            Tomcatv => {
                k.fp_data = true;
                k.loads = [long_conflict_arrays(5), seq_streams(2), hot_arrays(2)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.data_branch_prob = 0.03;
            }
            Swim => {
                k.fp_data = true;
                k.loads = [short_conflict_arrays(5), seq_streams(2), hot_arrays(2)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.data_branch_prob = 0.02;
            }
            Su2cor => {
                k.fp_data = true;
                k.loads = [hot_arrays(6), seq_streams(1), wide_streams(1)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.data_branch_prob = 0.05;
            }
            Hydro2d => {
                k.fp_data = true;
                k.loads = [hot_arrays(5), seq_streams(2), wide_streams(1)].concat();
                k.stores = store_stream();
                k.fp_adds = 3;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.data_branch_prob = 0.05;
            }
            Applu => {
                k.fp_data = true;
                k.fp_independent = true;
                k.loads = [hot_arrays(6), seq_streams(2)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 2;
                k.int_ops = 2;
                k.data_branch_prob = 0.02;
            }
            Mgrid => {
                k.fp_data = true;
                k.fp_independent = true;
                k.loads = [hot_arrays(8), seq_streams(2)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.data_branch_prob = 0.02;
            }
            Turb3d => {
                k.fp_data = true;
                k.fp_independent = true;
                k.loads = [hot_arrays(6), seq_streams(2)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 2;
                k.int_ops = 3;
                k.fp_div_every = 64;
                k.data_branch_prob = 0.02;
            }
            Apsi => {
                k.fp_data = true;
                k.loads = [hot_arrays(6), seq_streams(1), wide_streams(1)].concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.fp_div_every = 48;
                k.data_branch_prob = 0.08;
            }
            Fpppp => {
                k.fp_data = true;
                k.fp_independent = true;
                k.fp_adds = 4;
                k.loads = [hot_arrays(9), seq_streams(1)].concat();
                k.stores = store_stream();
                k.fp_adds = 3;
                k.fp_muls = 3;
                k.int_ops = 2;
                k.data_branch_prob = 0.01;
            }
            Wave5 => {
                k.fp_data = true;
                k.loads = [
                    long_conflict_arrays(3),
                    short_conflict_arrays(1),
                    seq_streams(2),
                    hot_arrays(4),
                ]
                .concat();
                k.stores = store_stream();
                k.fp_adds = 2;
                k.fp_muls = 1;
                k.int_ops = 2;
                k.data_branch_prob = 0.03;
            }
        }
        k
    }

    /// Instantiates the workload generator with a seed.
    pub fn generator(&self, seed: u64) -> KernelGen {
        self.kernel().generator(seed)
    }

    /// The paper's Table 2 row for this benchmark (reference values for
    /// shape comparison).
    pub fn paper_row(&self) -> PaperRow {
        use SpecBenchmark::*;
        // name, conv16 (IPC, miss), conv8 (IPC, IPC+pred, miss),
        // ipoly (IPC, miss), ipoly-in-CP (IPC, IPC+pred)
        let r = |name, a, b, c, d, e, f, g, h, i| PaperRow {
            name,
            conv16_ipc: a,
            conv16_miss: b,
            conv8_ipc: c,
            conv8_ipc_pred: d,
            conv8_miss: e,
            ipoly_ipc: f,
            ipoly_miss: g,
            ipoly_cp_ipc: h,
            ipoly_cp_ipc_pred: i,
        };
        match self {
            Go => r("go", 1.00, 5.45, 0.87, 0.88, 10.87, 0.87, 10.60, 0.83, 0.84),
            M88ksim => r(
                "m88ksim", 1.56, 1.41, 1.53, 1.53, 2.62, 1.52, 2.89, 1.49, 1.51,
            ),
            Gcc => r(
                "gcc", 1.16, 5.63, 1.04, 1.05, 10.01, 1.03, 10.77, 0.98, 0.99,
            ),
            Compress => r(
                "compress", 1.13, 12.96, 1.12, 1.13, 13.63, 1.11, 14.17, 1.07, 1.10,
            ),
            Li => r("li", 1.40, 4.72, 1.30, 1.32, 8.01, 1.33, 7.10, 1.26, 1.31),
            Ijpeg => r(
                "ijpeg", 1.31, 0.94, 1.28, 1.28, 3.72, 1.29, 2.17, 1.28, 1.30,
            ),
            Perl => r(
                "perl", 1.45, 4.52, 1.26, 1.27, 9.47, 1.24, 10.26, 1.19, 1.21,
            ),
            Vortex => r(
                "vortex", 1.39, 4.97, 1.27, 1.28, 8.37, 1.30, 7.87, 1.25, 1.27,
            ),
            Tomcatv => r(
                "tomcatv", 1.18, 35.14, 1.03, 1.04, 54.45, 1.33, 19.67, 1.30, 1.36,
            ),
            Swim => r(
                "swim", 1.30, 29.56, 1.06, 1.08, 66.62, 1.53, 8.85, 1.49, 1.57,
            ),
            Su2cor => r(
                "su2cor", 1.28, 13.74, 1.24, 1.26, 14.69, 1.24, 14.66, 1.21, 1.25,
            ),
            Hydro2d => r(
                "hydro2d", 1.14, 15.40, 1.13, 1.15, 17.23, 1.13, 17.22, 1.11, 1.15,
            ),
            Applu => r(
                "applu", 1.63, 5.54, 1.61, 1.63, 6.16, 1.57, 6.84, 1.55, 1.59,
            ),
            Mgrid => r(
                "mgrid", 1.51, 4.91, 1.50, 1.53, 5.05, 1.50, 5.31, 1.46, 1.52,
            ),
            Turb3d => r(
                "turb3d", 1.85, 4.67, 1.80, 1.82, 6.05, 1.81, 5.38, 1.78, 1.82,
            ),
            Apsi => r(
                "apsi", 1.13, 10.03, 1.08, 1.09, 15.19, 1.08, 13.36, 1.07, 1.09,
            ),
            Fpppp => r(
                "fpppp", 2.14, 1.09, 2.00, 2.00, 2.66, 1.98, 2.47, 1.93, 1.94,
            ),
            Wave5 => r(
                "wave5", 1.37, 27.72, 1.26, 1.28, 42.76, 1.51, 14.67, 1.48, 1.54,
            ),
        }
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::mem_refs;
    use std::collections::HashSet;

    #[test]
    fn all_benchmarks_named_and_distinct() {
        let names: HashSet<&str> = SpecBenchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 18);
        assert!(names.contains("tomcatv"));
        assert!(names.contains("fpppp"));
    }

    #[test]
    fn categories_match_the_paper() {
        let fp = SpecBenchmark::all().iter().filter(|b| b.is_fp()).count();
        assert_eq!(fp, 10); // SPECfp95 subset used in the paper
        let bad: Vec<_> = SpecBenchmark::all()
            .into_iter()
            .filter(|b| b.is_high_conflict())
            .collect();
        assert_eq!(bad.len(), 3);
        assert!(bad.iter().all(|b| b.is_fp()));
    }

    #[test]
    fn every_kernel_generates() {
        for b in SpecBenchmark::all() {
            let ops: Vec<_> = b.generator(1).take(2000).collect();
            assert_eq!(ops.len(), 2000, "{b}");
            assert!(ops.iter().any(|o| o.is_load()), "{b} has no loads");
            assert!(ops.iter().any(|o| o.is_branch()), "{b} has no branches");
        }
    }

    #[test]
    fn fp_benchmarks_emit_fp_ops() {
        for b in SpecBenchmark::all() {
            let has_fp = b.generator(1).take(2000).any(|o| o.class.is_fp());
            assert_eq!(has_fp, b.is_fp(), "{b}");
        }
    }

    #[test]
    fn conflict_benchmarks_touch_congruent_bases() {
        // tomcatv's conflict arrays must be congruent mod 4KB (the 8KB
        // 2-way way size) for the conventional-indexing pathology.
        let k = SpecBenchmark::Tomcatv.kernel();
        let conflict_bases: Vec<u64> = k
            .loads
            .iter()
            .map(|w| w.base)
            .filter(|&b| (LONG_CONFLICT_BASE..STREAM_BASE).contains(&b))
            .collect();
        assert!(conflict_bases.len() >= 2);
        for w in &conflict_bases {
            assert_eq!(w % 0x1000, conflict_bases[0] % 0x1000);
        }
    }

    #[test]
    fn memory_fraction_is_plausible() {
        for b in SpecBenchmark::all() {
            let ops: Vec<_> = b.generator(1).take(5000).collect();
            let mem = ops.iter().filter(|o| o.class.is_memory()).count();
            let frac = mem as f64 / ops.len() as f64;
            assert!(
                (0.15..0.75).contains(&frac),
                "{b}: memory fraction {frac:.2}"
            );
        }
    }

    #[test]
    fn deterministic_traces() {
        for b in [SpecBenchmark::Go, SpecBenchmark::Swim] {
            let a: Vec<_> = mem_refs(b.generator(9).take(3000)).collect();
            let c: Vec<_> = mem_refs(b.generator(9).take(3000)).collect();
            assert_eq!(a, c);
        }
    }

    #[test]
    fn paper_rows_match_table_totals() {
        // Spot checks against the published table.
        assert_eq!(SpecBenchmark::Swim.paper_row().conv8_miss, 66.62);
        assert_eq!(SpecBenchmark::Fpppp.paper_row().conv16_ipc, 2.14);
        assert_eq!(SpecBenchmark::Tomcatv.paper_row().ipoly_miss, 19.67);
    }
}

//! Trace record types.

use std::fmt;

/// Instruction class, matching the functional units of the paper's
/// Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply (9-cycle on the complex-integer unit).
    IntMul,
    /// Integer divide (67-cycle, unpipelined).
    IntDiv,
    /// Simple FP operation — add/sub/convert (4-cycle).
    FpAdd,
    /// FP multiply (4-cycle).
    FpMul,
    /// FP divide (16-cycle, unpipelined).
    FpDiv,
    /// FP square root (35-cycle, unpipelined).
    FpSqrt,
    /// Memory load (effective-address unit + cache access).
    Load,
    /// Memory store (effective-address unit; data to memory at commit).
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// `true` for [`OpClass::Load`] and [`OpClass::Store`].
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for operations executed on FP units.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int",
            OpClass::IntMul => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::FpSqrt => "fsqrt",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "br",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction of a trace.
///
/// Architectural registers are numbered 0..=31 (integer) and 32..=63
/// (floating point). Register 0 is the hardwired zero register and never
/// creates dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Instruction address.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Destination architectural register, if any.
    pub dst: Option<u8>,
    /// Source architectural registers (use `None` for absent operands).
    pub srcs: [Option<u8>; 2],
    /// Effective address for loads/stores.
    pub addr: Option<u64>,
    /// Branch outcome (meaningful only for branches).
    pub taken: bool,
    /// Branch target (meaningful only for taken branches).
    pub target: u64,
}

impl TraceOp {
    /// A non-memory, non-branch op.
    pub fn compute(pc: u64, class: OpClass, dst: u8, srcs: [Option<u8>; 2]) -> Self {
        debug_assert!(!class.is_memory() && class != OpClass::Branch);
        TraceOp {
            pc,
            class,
            dst: Some(dst),
            srcs,
            addr: None,
            taken: false,
            target: 0,
        }
    }

    /// A load of `addr` into `dst`.
    pub fn load(pc: u64, addr: u64, dst: u8, base: Option<u8>) -> Self {
        TraceOp {
            pc,
            class: OpClass::Load,
            dst: Some(dst),
            srcs: [base, None],
            addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A store of `src` to `addr`.
    pub fn store(pc: u64, addr: u64, src: u8, base: Option<u8>) -> Self {
        TraceOp {
            pc,
            class: OpClass::Store,
            dst: None,
            srcs: [Some(src), base],
            addr: Some(addr),
            taken: false,
            target: 0,
        }
    }

    /// A conditional branch.
    pub fn branch(pc: u64, taken: bool, target: u64, src: Option<u8>) -> Self {
        TraceOp {
            pc,
            class: OpClass::Branch,
            dst: None,
            srcs: [src, None],
            addr: None,
            taken,
            target,
        }
    }

    /// `true` for loads.
    pub fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    /// `true` for branches.
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }

    /// The memory reference view of this op, if it is a load or store.
    pub fn mem_ref(&self) -> Option<MemRef> {
        self.addr.map(|addr| MemRef {
            pc: self.pc,
            addr,
            is_write: self.is_store(),
        })
    }
}

/// A bare memory reference (for cache-only experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Instruction address that issued the reference.
    pub pc: u64,
    /// Effective byte address.
    pub addr: u64,
    /// `true` for stores.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let l = TraceOp::load(0x400, 0x1000, 5, Some(3));
        assert!(l.is_load());
        assert!(!l.is_store());
        assert_eq!(l.addr, Some(0x1000));
        assert_eq!(l.dst, Some(5));

        let s = TraceOp::store(0x404, 0x2000, 7, None);
        assert!(s.is_store());
        assert_eq!(s.dst, None);
        assert_eq!(s.srcs[0], Some(7));

        let b = TraceOp::branch(0x408, true, 0x400, Some(1));
        assert!(b.is_branch());
        assert!(b.taken);
        assert_eq!(b.target, 0x400);

        let c = TraceOp::compute(0x40c, OpClass::FpMul, 33, [Some(32), Some(34)]);
        assert_eq!(c.class, OpClass::FpMul);
        assert!(c.class.is_fp());
    }

    #[test]
    fn mem_ref_projection() {
        let l = TraceOp::load(0x400, 0xAB, 5, None);
        let r = l.mem_ref().unwrap();
        assert_eq!(r.addr, 0xAB);
        assert!(!r.is_write);
        let c = TraceOp::compute(0x40c, OpClass::IntAlu, 1, [None, None]);
        assert!(c.mem_ref().is_none());
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::Branch.is_memory());
        assert!(OpClass::FpSqrt.is_fp());
        assert!(!OpClass::IntMul.is_fp());
    }

    #[test]
    fn display_names() {
        assert_eq!(OpClass::Load.to_string(), "load");
        assert_eq!(OpClass::FpDiv.to_string(), "fdiv");
        assert_eq!(OpClass::Branch.to_string(), "br");
    }
}

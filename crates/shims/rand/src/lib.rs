//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment for this workspace has no access to a crate
//! registry, so the handful of `rand` APIs the workspace uses are
//! re-implemented here behind the same paths (`rand::rngs::StdRng`,
//! `rand::Rng`, `rand::SeedableRng`). The generator is a `splitmix64`
//! seeded `xoshiro256++` — not the ChaCha stream of the real `StdRng`,
//! which is fine because the workspace only relies on *determinism per
//! seed*, never on a specific stream.
//!
//! If the real crate becomes available, deleting this shim and adding the
//! registry dependency restores the original behaviour (trace generators
//! will produce different — but equally valid — synthetic streams).

/// Seeding entry point, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, mirroring the subset of `rand::Rng` the workspace
/// uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (exclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// A Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        // 53 uniform mantissa bits, the standard conversion.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Types that can be sampled uniformly from a `Range` by this shim.
pub trait SampleUniform: Copy {
    /// Maps 64 random bits onto `range`.
    fn sample(bits: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (bits % span) as Self
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(5u32..5);
    }
}

//! Minimal offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no crate registry, so this shim provides the
//! subset of the Criterion API the workspace's `benches/` use —
//! `Criterion`, `benchmark_group`, `Bencher::iter`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with
//! a simple wall-clock measurement loop instead of Criterion's statistical
//! machinery. Reported numbers are a median of per-batch means, printed as
//! `time/iter` plus derived throughput when one was declared.
//!
//! Benches must set `harness = false` in the manifest (as real Criterion
//! benches do); `criterion_main!` supplies `fn main`.

use std::time::{Duration, Instant};

/// Re-export point so `use criterion::black_box` works.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per measurement iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement settings shared by `Criterion` and groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measure: Duration,
    samples: u32,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
            samples: 11,
        }
    }
}

/// Timing loop driver handed to the closure of `bench_function`.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Median ns/iter recorded by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher<'_> {
    /// Measures `f`, recording a median ns-per-iteration figure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.settings.warm_up {
            black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        // Size batches so each sample runs ~measure/samples wall time.
        let sample_ns = self.settings.measure.as_nanos() as f64 / f64::from(self.settings.samples);
        let batch = ((sample_ns / per_call.max(1.0)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.settings.samples as usize);
        for _ in 0..self.settings.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{id:<50} time: [{}]", format_ns(ns));
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = n as f64 * 1e9 / ns.max(1e-9);
        line.push_str(&format!("  thrpt: [{}]", format_rate(per_sec, unit)));
    }
    println!("{line}");
}

/// Top-level harness object, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            settings: &self.settings,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(id, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Adjusts the sample count (accepted for API compatibility; the shim
    /// keeps its sample count within a sane range).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.samples = (n as u32).clamp(5, 101);
        self
    }

    /// Shortens the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measure = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            settings: &self.settings,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{id}", self.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running each target, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `fn main` running each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let settings = Settings {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            samples: 5,
        };
        let mut b = Bencher {
            settings: &settings,
            ns_per_iter: 0.0,
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn formatting_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_rate(2.5e9, "elem").contains("Gelem/s"));
        assert!(format_rate(2.5e6, "elem").contains("Melem/s"));
    }
}

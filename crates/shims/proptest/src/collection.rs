//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length
/// is drawn uniformly from `len` (exclusive upper bound, as in proptest).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::new(4);
        let s = vec(any::<u16>(), 2..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn nested_tuples_work() {
        let mut rng = TestRng::new(5);
        let s = vec((any::<u32>(), any::<bool>()), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
    }
}

//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, TestCaseResult,
};

/// Namespace alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

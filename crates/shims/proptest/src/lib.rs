//! Minimal offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing crate.
//!
//! The build environment has no crate registry, so the subset of proptest
//! this workspace's property tests use is re-implemented here behind the
//! same paths: the [`Strategy`] trait (with `prop_map`), [`any`],
//! integer-range and tuple strategies, [`collection::vec`], [`Just`],
//! `prop_oneof!`, the `proptest!` test macro and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! assertion family.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed so the run can be
//!   reproduced (`PROPTEST_SEED=<n> cargo test`), but is not minimised.
//! * **Fixed RNG.** A splitmix64-derived xoshiro stream, seeded from
//!   `PROPTEST_SEED` or a fixed default so CI runs are reproducible.
//! * `ProptestConfig` carries only the `cases` knob.

use std::fmt;

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// The `Result` alias bodies of `proptest!` blocks implicitly return.
pub type TestCaseResult = Result<(), TestCaseError>;

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discards the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::test_runner::Runner::new(config);
                runner.run(|rng| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Strategies are usable behind shared references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: `any::<u32>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards structured values: small ints and values
                // near type extremes surface edge cases that uniform
                // 64-bit noise essentially never hits.
                match rng.next_u64() % 8 {
                    0 => (rng.next_u64() % 16) as $t,
                    1 => (<$t>::MAX).wrapping_sub((rng.next_u64() % 16) as $t),
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Work in u128 so signed and full-width ranges are exact.
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((u128::from(rng.next_u64()) << 64
                    | u128::from(rng.next_u64()))
                    % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-10i64..10).generate(&mut rng);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn map_and_just_and_union() {
        let mut rng = TestRng::new(2);
        let doubled = (1u32..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (any::<u8>(), 0u16..4, any::<bool>()).generate(&mut rng);
        let _ = (a, c);
        assert!(b < 4);
    }
}

//! Case-running machinery behind the `proptest!` macro.

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure (mirrors `proptest::test_runner::TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected draws before the property errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases, otherwise default.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic xoshiro256++ stream for strategy draws.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a stream from a 64-bit seed (splitmix64 expansion).
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Drives one property over its configured number of cases.
pub struct Runner {
    config: Config,
    seed: u64,
}

impl Runner {
    /// Creates a runner, honouring `PROPTEST_SEED` for reproduction.
    pub fn new(config: Config) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cac0_ffee);
        Runner { config, seed }
    }

    /// Runs `case` until `config.cases` cases are accepted, panicking with
    /// the case seed on the first failure.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut draw = 0u64;
        while accepted < self.config.cases {
            // Each case gets an independent sub-stream so a failure can be
            // reproduced from (seed, draw) alone.
            let case_seed = self
                .seed
                .wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::new(case_seed);
            draw += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < self.config.max_global_rejects,
                        "too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property failed after {accepted} passing case(s): {msg}\n\
                         (reproduce with PROPTEST_SEED={} ; failing draw {})",
                        self.seed,
                        draw - 1
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_configured_cases() {
        let mut count = 0;
        Runner::new(Config::with_cases(17)).run(|_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejections_are_redrawn() {
        let mut total = 0;
        Runner::new(Config::with_cases(5)).run(|rng| {
            total += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                Ok(())
            }
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_seed() {
        Runner::new(Config::with_cases(5)).run(|_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

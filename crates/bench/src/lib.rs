//! The experiment platform of the conflict-avoiding-cache reproduction.
//!
//! The paper's whole evaluation is driven from one binary, `cac`
//! (`src/bin/cac.rs`), whose subcommands live in the [`driver`] module:
//! every experiment is a function from parsed parameters to a structured
//! report that renders as text, JSON or CSV. The former one-binary-per-
//! experiment mains under `src/bin/` remain as thin shims over
//! [`driver::legacy_main`]. Criterion micro-benchmarks live in
//! `benches/`.
//!
//! This library also hosts the shared substrate: the [`driver`] itself,
//! parallel sweeps ([`parallel`]), terminal bar charts ([`chart`]), the
//! Tables 2–3 runner ([`table2`]) and summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod driver;
pub mod parallel;
pub mod table2;

/// Arithmetic mean (the paper averages miss ratios arithmetically).
pub fn arithmetic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean (the paper averages IPC geometrically).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
    }
}

/// Population standard deviation (used for the §5 predictability claim:
/// Spec95 miss-ratio stddev 18.49 → 5.16).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = arithmetic_mean(xs);
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Formats a row of fixed-width columns for the experiment tables.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(arithmetic_mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basics() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn row_formatting() {
        let s = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(s, "  a    bb");
    }
}

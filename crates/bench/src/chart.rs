//! Terminal charts for the experiment harnesses.
//!
//! The paper's Figure 1 is a *log-frequency* histogram; a table of counts
//! loses the visual shape the authors argue from. This module renders
//! horizontal bar charts with optional log₁₀ scaling so the harness
//! binaries can print the figure, not just its numbers.

use std::fmt::Write as _;

/// A horizontal bar chart.
///
/// # Example
///
/// ```
/// use cac_bench::chart::BarChart;
///
/// let chart = BarChart::new("frequency")
///     .log_scale()
///     .bar("0.0-0.1", 3500.0)
///     .bar("0.9-1.0", 12.0)
///     .render(40);
/// assert!(chart.contains("0.0-0.1"));
/// assert!(chart.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    log: bool,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            log: false,
            bars: Vec::new(),
        }
    }

    /// Scales bar lengths by `log10(1 + value)` — the paper's Figure 1
    /// axis, which keeps a 10000:1 dynamic range readable.
    pub fn log_scale(mut self) -> Self {
        self.log = true;
        self
    }

    /// Appends one labelled bar.
    pub fn bar(mut self, label: impl Into<String>, value: f64) -> Self {
        self.bars.push((label.into(), value.max(0.0)));
        self
    }

    /// Appends many labelled bars.
    pub fn bars<I, L>(mut self, items: I) -> Self
    where
        I: IntoIterator<Item = (L, f64)>,
        L: Into<String>,
    {
        for (label, value) in items {
            self.bars.push((label.into(), value.max(0.0)));
        }
        self
    }

    fn scaled(&self, v: f64) -> f64 {
        if self.log {
            (1.0 + v).log10()
        } else {
            v
        }
    }

    /// Renders the chart with bars up to `width` characters long.
    pub fn render(&self, width: usize) -> String {
        let label_w = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|&(_, v)| self.scaled(v))
            .fold(0.0f64, f64::max);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}{}",
            self.title,
            if self.log { "  (log scale)" } else { "" }
        );
        for (label, value) in &self.bars {
            let len = if max > 0.0 {
                (self.scaled(*value) / max * width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "{label:<label_w$} |{:<width$}| {value}",
                "#".repeat(len.min(width)),
            );
        }
        out
    }
}

/// Renders several labelled series as grouped bars per category — one
/// category row followed by one bar line per series, for side-by-side
/// comparisons like Figure 1's four index functions.
///
/// # Example
///
/// ```
/// use cac_bench::chart::grouped;
///
/// let text = grouped(
///     "miss-ratio bins",
///     &["0.0-0.1", "0.9-1.0"],
///     &[("a2", vec![3500.0, 240.0]), ("a2-Hp-Sk", vec![4000.0, 0.0])],
///     true,
///     30,
/// );
/// assert!(text.contains("a2-Hp-Sk"));
/// ```
///
/// # Panics
///
/// Panics if any series' length differs from the category count.
pub fn grouped(
    title: &str,
    categories: &[&str],
    series: &[(&str, Vec<f64>)],
    log: bool,
    width: usize,
) -> String {
    for (name, values) in series {
        assert_eq!(
            values.len(),
            categories.len(),
            "series {name:?} length mismatch"
        );
    }
    let name_w = series
        .iter()
        .map(|(n, _)| n.chars().count())
        .max()
        .unwrap_or(0);
    let scale = |v: f64| if log { (1.0 + v).log10() } else { v };
    let max = series
        .iter()
        .flat_map(|(_, vs)| vs.iter())
        .fold(0.0f64, |m, &v| m.max(scale(v)));
    let mut out = String::new();
    let _ = writeln!(out, "{title}{}", if log { "  (log scale)" } else { "" });
    for (ci, cat) in categories.iter().enumerate() {
        let _ = writeln!(out, "{cat}");
        for (name, values) in series {
            let v = values[ci];
            let len = if max > 0.0 {
                (scale(v) / max * width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "  {name:<name_w$} |{:<width$}| {v}",
                "#".repeat(len.min(width)),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bars_scale_proportionally() {
        let text = BarChart::new("t").bar("a", 10.0).bar("b", 5.0).render(20);
        let lines: Vec<&str> = text.lines().collect();
        let count = |s: &str| s.matches('#').count();
        assert_eq!(count(lines[1]), 20);
        assert_eq!(count(lines[2]), 10);
    }

    #[test]
    fn log_scale_compresses_range() {
        let text = BarChart::new("t")
            .log_scale()
            .bar("big", 9999.0)
            .bar("small", 9.0)
            .render(40);
        let lines: Vec<&str> = text.lines().collect();
        let count = |s: &str| s.matches('#').count();
        assert_eq!(count(lines[1]), 40);
        // log10(10)/log10(10000) = 1/4 of the width, not 9/9999 ≈ 0.
        assert_eq!(count(lines[2]), 10);
        assert!(text.contains("(log scale)"));
    }

    #[test]
    fn zero_and_empty_are_safe() {
        let empty = BarChart::new("nothing").render(10);
        assert!(empty.starts_with("nothing"));
        let zeros = BarChart::new("z").bar("a", 0.0).render(10);
        assert!(zeros.contains("|          |"));
        // Negative values clamp to zero rather than panicking.
        let neg = BarChart::new("n").bar("a", -5.0).render(10);
        assert!(neg.contains("| 0") || neg.contains("|          | 0"));
    }

    #[test]
    fn bars_builder_matches_bar() {
        let a = BarChart::new("t").bar("x", 1.0).bar("y", 2.0).render(10);
        let b = BarChart::new("t").bars([("x", 1.0), ("y", 2.0)]).render(10);
        assert_eq!(a, b);
    }

    #[test]
    fn grouped_layout() {
        let text = grouped(
            "g",
            &["c1", "c2"],
            &[("s1", vec![1.0, 2.0]), ("s2", vec![2.0, 4.0])],
            false,
            8,
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * 3); // title + 2 categories × (header + 2 series)
        assert_eq!(lines[1], "c1");
        assert!(lines[2].trim_start().starts_with("s1"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn grouped_validates_lengths() {
        let _ = grouped("g", &["c1"], &[("s1", vec![1.0, 2.0])], false, 8);
    }
}

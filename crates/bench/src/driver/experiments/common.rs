//! Helpers shared by the experiment ports.

use crate::driver::args::ExpArgs;
use crate::driver::DriverError;
use cac_core::{CacheGeometry, IndexSpec};

/// The paper's L1 geometry: 8KB, 32-byte lines, 2 ways.
pub(super) fn paper_l1() -> CacheGeometry {
    CacheGeometry::new(8 * 1024, 32, 2).expect("paper geometry is valid")
}

/// Resolves one scheme name (as printed by [`IndexSpec::name`]) via the
/// shared [`IndexSpec::parse`] hook, mapping the failure to a CLI usage
/// error.
pub(super) fn parse_scheme(name: &str) -> Result<IndexSpec, DriverError> {
    IndexSpec::parse(name).map_err(|e| DriverError::Usage(e.to_string()))
}

/// Resolves a comma-separated scheme list.
pub(super) fn parse_schemes(csv: &str) -> Result<Vec<IndexSpec>, DriverError> {
    let schemes: Vec<IndexSpec> = csv
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_scheme(s.trim()))
        .collect::<Result<_, _>>()?;
    if schemes.is_empty() {
        return Err(DriverError::Usage("no schemes given".into()));
    }
    Ok(schemes)
}

/// Builds a geometry from the conventional `size`/`line`/`ways`
/// parameters declared by the trace tools.
pub(super) fn parse_geometry(a: &ExpArgs) -> Result<CacheGeometry, DriverError> {
    CacheGeometry::new(a.u64("size")?, a.u64("line")?, a.u32("ways")?).map_err(DriverError::from)
}

/// Resolves a benchmark name against the 18-model workload suite.
pub(super) fn parse_benchmark(name: &str) -> Result<cac_trace::spec::SpecBenchmark, DriverError> {
    cac_trace::spec::SpecBenchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            DriverError::Usage(format!(
                "unknown benchmark {name:?}; valid: {}",
                cac_trace::spec::SpecBenchmark::all()
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

//! Trace tooling: `cac trace gen`, `cac trace convert`,
//! `cac trace info` and `cac replay`.
//!
//! This is the external-trace workflow the binary format exists for:
//! generate (or import) a trace file, inspect it, convert between the
//! text interchange format and the compact binary format, and stream it
//! through a configurable cache at batched-replay speed.

use super::common::{parse_benchmark, parse_geometry, parse_scheme};
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_sim::cache::Cache;
use cac_sim::replay::{run_cache_chunked, run_cache_source};
use cac_trace::fault::{FaultSource, FaultSpec};
use cac_trace::io::{
    read_trace, sniff_format, write_trace, write_trace_columnar, BinaryTraceReader,
    BinaryTraceWriter, ChunkSource, ColumnBytes, ColumnarTraceReader, ColumnarTraceWriter,
    DecodeMode, RefSource, SkipReport, TraceFormat, DEFAULT_CHUNK_OPS,
};
use cac_trace::{MemRef, OpClass, TraceOp};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::time::Instant;

/// Parses the shared `--mode strict|lenient` trace-decode flag.
pub(super) fn parse_decode_mode(s: &str) -> Result<DecodeMode, DriverError> {
    match s {
        "strict" => Ok(DecodeMode::Strict),
        "lenient" => Ok(DecodeMode::Lenient),
        other => Err(DriverError::Usage(format!(
            "unknown decode mode {other:?}; valid: strict, lenient"
        ))),
    }
}

/// Parses a boolean-ish experiment flag.
pub(super) fn parse_bool(name: &str, s: &str) -> Result<bool, DriverError> {
    match s {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" | "" => Ok(false),
        other => Err(DriverError::Usage(format!(
            "--{name} expects true or false, got {other:?}"
        ))),
    }
}

fn parse_file_format(s: &str) -> Result<TraceFormat, DriverError> {
    match s {
        "binary" => Ok(TraceFormat::Binary),
        "text" => Ok(TraceFormat::Text),
        "columnar" => Ok(TraceFormat::Columnar),
        other => Err(DriverError::Usage(format!(
            "unknown trace format {other:?}; valid: binary, text, columnar"
        ))),
    }
}

/// Opens a trace file and detects its format from the leading bytes
/// (five are needed: the columnar format shares the `CACT` magic and
/// differs only in the version byte).
fn open_sniffed(path: &str) -> Result<(File, TraceFormat), DriverError> {
    let mut f =
        File::open(path).map_err(|e| DriverError::Input(format!("cannot open {path}: {e}")))?;
    let mut prefix = [0u8; 5];
    let mut got = 0;
    while got < prefix.len() {
        match f.read(&mut prefix[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => return Err(DriverError::Input(format!("cannot read {path}: {e}"))),
        }
    }
    let format = sniff_format(&prefix[..got]);
    f.seek(SeekFrom::Start(0))
        .map_err(|e| DriverError::Input(format!("cannot rewind {path}: {e}")))?;
    Ok((f, format))
}

/// A [`ChunkSource`] with a unified error type, so the tools (and the
/// `cac run` config driver) can stream either format through one code
/// path.
pub(super) enum AnySource {
    Binary(BinaryTraceReader<BufReader<File>>),
    // Boxed: the columnar reader's scratch makes it much larger
    // than its siblings.
    Columnar(Box<ColumnarTraceReader<BufReader<File>>>),
    Text(cac_trace::io::ReadTrace<File>),
}

/// Decode-side statistics of a columnar stream, for `trace info`.
pub(super) struct ColumnarStats {
    pub columns: ColumnBytes,
    pub payload_bytes: u64,
    pub blocks: u64,
    pub index_entries: u64,
    pub refs: u64,
}

impl ColumnarStats {
    /// The fixed-width bytes the packed payload replaces: per record
    /// 1 tag, 8 pc, 8 target and 3 register bytes, plus 8 address
    /// bytes per memory reference.
    pub(super) fn payload_unpacked(&self, records: u64) -> u64 {
        records * (1 + 8 + 8 + 3) + self.refs * 8
    }
}

impl AnySource {
    pub(super) fn open(path: &str) -> Result<Self, DriverError> {
        AnySource::open_with_mode(path, DecodeMode::Strict)
    }

    /// Opens a trace with an explicit decode mode. Lenient mode only
    /// affects binary traces (text streams have per-line recovery
    /// anyway); skip accounting is read back with
    /// [`AnySource::skipped`].
    pub(super) fn open_with_mode(path: &str, mode: DecodeMode) -> Result<Self, DriverError> {
        let (file, format) = open_sniffed(path)?;
        match format {
            TraceFormat::Binary => {
                let reader = BinaryTraceReader::with_mode(BufReader::new(file), mode)
                    .map_err(|e| DriverError::Input(format!("{path}: {e}")))?;
                Ok(AnySource::Binary(reader))
            }
            TraceFormat::Columnar => {
                let reader = ColumnarTraceReader::with_mode(BufReader::new(file), mode)
                    .map_err(|e| DriverError::Input(format!("{path}: {e}")))?;
                Ok(AnySource::Columnar(Box::new(reader)))
            }
            TraceFormat::Text => Ok(AnySource::Text(read_trace(file))),
        }
    }

    pub(super) fn format(&self) -> TraceFormat {
        match self {
            AnySource::Binary(_) => TraceFormat::Binary,
            AnySource::Columnar(_) => TraceFormat::Columnar,
            AnySource::Text(_) => TraceFormat::Text,
        }
    }

    /// What a lenient binary/columnar decode skipped so far (empty for
    /// text).
    pub(super) fn skipped(&self) -> SkipReport {
        match self {
            AnySource::Binary(r) => r.skipped(),
            AnySource::Columnar(r) => r.skipped(),
            AnySource::Text(_) => SkipReport::default(),
        }
    }

    /// Column/index statistics, for columnar streams only.
    pub(super) fn columnar_stats(&self) -> Option<ColumnarStats> {
        match self {
            AnySource::Columnar(r) => Some(ColumnarStats {
                columns: r.column_bytes(),
                payload_bytes: r.payload_bytes(),
                blocks: r.blocks_decoded(),
                index_entries: r.index_entries(),
                refs: r.refs_decoded(),
            }),
            _ => None,
        }
    }
}

impl ChunkSource for AnySource {
    type Error = DriverError;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, DriverError> {
        match self {
            AnySource::Binary(r) => r
                .read_chunk(out, max)
                .map_err(|e| DriverError::Input(e.to_string())),
            AnySource::Columnar(r) => r
                .read_chunk(out, max)
                .map_err(|e| DriverError::Input(e.to_string())),
            AnySource::Text(r) => {
                ChunkSource::read_chunk(r, out, max).map_err(|e| DriverError::Input(e.to_string()))
            }
        }
    }
}

impl RefSource for AnySource {
    type Error = DriverError;

    fn read_ref_chunk(&mut self, out: &mut Vec<MemRef>, max: usize) -> Result<usize, DriverError> {
        match self {
            // Binary and columnar traces take the fused
            // decode-to-MemRef path.
            AnySource::Binary(r) => r
                .read_ref_chunk(out, max)
                .map_err(|e| DriverError::Input(e.to_string())),
            AnySource::Columnar(r) => r
                .read_ref_chunk(out, max)
                .map_err(|e| DriverError::Input(e.to_string())),
            AnySource::Text(r) => {
                out.clear();
                let mut ops: Vec<TraceOp> = Vec::new();
                while out.len() < max {
                    let want = max - out.len();
                    if ChunkSource::read_chunk(r, &mut ops, want)
                        .map_err(|e| DriverError::Input(e.to_string()))?
                        == 0
                    {
                        break;
                    }
                    out.extend(ops.iter().filter_map(TraceOp::mem_ref));
                }
                Ok(out.len())
            }
        }
    }
}

fn format_name(f: TraceFormat) -> &'static str {
    match f {
        TraceFormat::Binary => "binary",
        TraceFormat::Columnar => "columnar",
        TraceFormat::Text => "text",
    }
}

pub(super) fn trace_gen(a: &ExpArgs) -> Result<Report, DriverError> {
    let bench = parse_benchmark(a.str("bench"))?;
    let ops = a.u64("ops")?;
    let seed = a.u64("seed")?;
    let out = a.str("out");
    if out.is_empty() {
        return Err(DriverError::Usage(
            "--out is required (path of the trace file to write)".into(),
        ));
    }
    let format = parse_file_format(a.str("format"))?;
    let inject = if a.is_set("inject") {
        Some(FaultSpec::parse(a.str("inject")).map_err(DriverError::Usage)?)
    } else {
        None
    };

    let file =
        File::create(out).map_err(|e| DriverError::Input(format!("cannot create {out}: {e}")))?;
    let gen = bench.generator(seed).take(ops as usize);
    // The clean encoding is staged in memory so fault injection can
    // damage the *encoded* bytes (the failure mode lenient decode and
    // `trace info --verify` exist for), not the op stream.
    let mut clean: Vec<u8> = Vec::new();
    match format {
        TraceFormat::Binary => {
            let mut w = BinaryTraceWriter::new(&mut clean)?;
            w.write_all(gen)?;
            w.finish()?;
        }
        TraceFormat::Columnar => {
            write_trace_columnar(&mut clean, gen)?;
        }
        TraceFormat::Text => {
            write_trace(&mut clean, gen)?;
        }
    }
    let mut flips = 0u64;
    let mut w = BufWriter::new(file);
    match inject {
        None => w.write_all(&clean)?,
        Some(spec) => {
            let mut faulty = FaultSource::new(&clean[..], spec);
            // Injected IO errors are transient by design; surface them
            // as a note-worthy count rather than aborting the write.
            let mut buf = [0u8; 8192];
            loop {
                match faulty.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => w.write_all(&buf[..n])?,
                    Err(_) => continue,
                }
            }
            flips = faulty.flips();
        }
    }
    w.flush()?;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    let mut report = Report::new("trace gen")
        .param("bench", bench.name())
        .param("ops", ops)
        .param("seed", seed)
        .param("out", out)
        .param("format", format_name(format))
        .table(
            Table::new("written", &["file", "format", "ops", "bytes", "bytes/op"]).row(vec![
                Value::s(out),
                Value::s(format_name(format)),
                Value::u(ops),
                Value::u(bytes),
                Value::f(bytes as f64 / ops.max(1) as f64, 2),
            ]),
        );
    if a.is_set("inject") {
        report = report
            .param("inject", a.str("inject"))
            .table(
                Table::new("injected faults", &["fault", "value"])
                    .row(vec![Value::s("bytes with a flipped bit"), Value::u(flips)])
                    .row(vec![
                        Value::s("truncated at"),
                        Value::u(bytes.min(clean.len() as u64)),
                    ]),
            )
            .note("this file is deliberately damaged; replay it with --mode lenient");
    }
    Ok(report)
}

pub(super) fn trace_convert(a: &ExpArgs) -> Result<Report, DriverError> {
    let input = a.str("input");
    let output = a.str("output");
    if input.is_empty() || output.is_empty() {
        return Err(DriverError::Usage(
            "usage: cac trace convert <input> <output> [--to binary|text]".into(),
        ));
    }
    let mut source = AnySource::open(input)?;
    let to = if a.is_set("to") {
        parse_file_format(a.str("to"))?
    } else {
        // Default: binary becomes text, everything else becomes binary.
        match source.format() {
            TraceFormat::Binary => TraceFormat::Text,
            TraceFormat::Columnar | TraceFormat::Text => TraceFormat::Binary,
        }
    };

    let file = File::create(output)
        .map_err(|e| DriverError::Failed(format!("cannot create {output}: {e}")))?;
    let mut buf = Vec::with_capacity(DEFAULT_CHUNK_OPS);
    let mut ops = 0u64;
    match to {
        TraceFormat::Binary => {
            let mut w = BinaryTraceWriter::new(file)?;
            while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
                ops += buf.len() as u64;
                w.write_all(buf.iter().copied())?;
            }
            w.finish()?;
        }
        TraceFormat::Columnar => {
            let mut w = ColumnarTraceWriter::new(BufWriter::new(file))?;
            while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
                ops += buf.len() as u64;
                w.write_all(buf.iter().copied())?;
            }
            w.finish()?.flush()?;
        }
        TraceFormat::Text => {
            let mut w = BufWriter::new(file);
            while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
                ops += buf.len() as u64;
                write_trace(&mut w, buf.iter().copied())?;
            }
            w.flush()?;
        }
    }
    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    Ok(Report::new("trace convert")
        .param("input", input)
        .param("output", output)
        .param("to", format_name(to))
        .table(
            Table::new("converted", &["from", "to", "ops", "in bytes", "out bytes"]).row(vec![
                Value::s(format_name(source.format())),
                Value::s(format_name(to)),
                Value::u(ops),
                Value::u(in_bytes),
                Value::u(out_bytes),
            ]),
        ))
}

pub(super) fn trace_info(a: &ExpArgs) -> Result<Report, DriverError> {
    let input = a.str("input");
    if input.is_empty() {
        return Err(DriverError::Usage("usage: cac trace info <file>".into()));
    }
    let verify = parse_bool("verify", a.str("verify"))?;
    // An audit decodes leniently so damage is *counted* instead of
    // aborting the summary at the first bad block; a plain info run
    // stays strict and reports the first decode error as an input
    // error.
    let mode = if verify {
        DecodeMode::Lenient
    } else {
        DecodeMode::Strict
    };
    let mut source = AnySource::open_with_mode(input, mode)?;
    let format = source.format();

    let mut buf = Vec::with_capacity(DEFAULT_CHUNK_OPS);
    let mut total = 0u64;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    let mut taken = 0u64;
    let mut addr_min = u64::MAX;
    let mut addr_max = 0u64;
    while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
        total += buf.len() as u64;
        for op in &buf {
            match op.class {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => {
                    branches += 1;
                    if op.taken {
                        taken += 1;
                    }
                }
                _ => {}
            }
            if let Some(addr) = op.addr {
                addr_min = addr_min.min(addr);
                addr_max = addr_max.max(addr);
            }
        }
    }
    let bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let mem = loads + stores;
    let mut table = Table::new("trace summary", &["field", "value"])
        .row(vec![Value::s("format"), Value::s(format_name(format))])
        .row(vec![Value::s("bytes"), Value::u(bytes)])
        .row(vec![Value::s("ops"), Value::u(total)])
        .row(vec![Value::s("loads"), Value::u(loads)])
        .row(vec![Value::s("stores"), Value::u(stores)])
        .row(vec![Value::s("branches"), Value::u(branches)])
        .row(vec![Value::s("branches taken"), Value::u(taken)])
        .row(vec![
            Value::s("compute ops"),
            Value::u(total - mem - branches),
        ]);
    if mem > 0 {
        table.push_row(vec![
            Value::s("address range"),
            Value::s(format!("{addr_min:#x}..{addr_max:#x}")),
        ]);
    }
    let mut report = Report::new(format!("trace info: {input}"))
        .param("input", input)
        .table(table);
    if let Some(cs) = source.columnar_stats() {
        // Column-split storage: report where the bytes went and what
        // the delta/bit-packing bought. The "unpacked" reference is the
        // fixed-width record layout the columns replace (1 tag + 8 pc +
        // 8 addr/target + up to 3 reg bytes per record).
        let unpacked = cs.payload_unpacked(total);
        let mut cols = Table::new(
            "columnar storage",
            &["column", "bytes", "bytes/record", "share %"],
        );
        let per = |b: u64, n: u64| Value::f(b as f64 / n.max(1) as f64, 3);
        let share = |b: u64| Value::f(100.0 * b as f64 / cs.payload_bytes.max(1) as f64, 1);
        for (name, bytes, records) in [
            ("tags", cs.columns.tags, total),
            ("pc deltas", cs.columns.pc, total),
            ("addr deltas", cs.columns.addr, cs.refs),
            ("branch target deltas", cs.columns.target, total),
            ("registers", cs.columns.regs, total),
        ] {
            cols.push_row(vec![
                Value::s(name),
                Value::u(bytes),
                per(bytes, records),
                share(bytes),
            ]);
        }
        cols.push_row(vec![
            Value::s("total payload"),
            Value::u(cs.payload_bytes),
            per(cs.payload_bytes, total),
            Value::f(100.0, 1),
        ]);
        report = report.table(cols).table(
            Table::new("block index", &["field", "value"])
                .row(vec![Value::s("blocks decoded"), Value::u(cs.blocks)])
                .row(vec![Value::s("index entries"), Value::u(cs.index_entries)])
                .row(vec![
                    Value::s("records/block (mean)"),
                    Value::f(total as f64 / cs.blocks.max(1) as f64, 1),
                ])
                .row(vec![
                    Value::s("payload bytes/block (mean)"),
                    Value::f(cs.payload_bytes as f64 / cs.blocks.max(1) as f64, 1),
                ])
                .row(vec![
                    Value::s("compression vs fixed-width"),
                    Value::s(format!(
                        "{:.2}x ({} -> {} bytes)",
                        unpacked as f64 / cs.payload_bytes.max(1) as f64,
                        unpacked,
                        cs.payload_bytes
                    )),
                ]),
        );
    }
    if verify {
        let skip = source.skipped();
        let verdict = if skip.any() { "DAMAGED" } else { "clean" };
        report = report.param("verify", "true").table(
            Table::new("verification", &["field", "value"])
                .row(vec![Value::s("verdict"), Value::s(verdict)])
                .row(vec![Value::s("records decoded"), Value::u(total)])
                .row(vec![Value::s("blocks skipped"), Value::u(skip.blocks)])
                .row(vec![Value::s("records skipped"), Value::u(skip.records)])
                .row(vec![Value::s("bytes skipped"), Value::u(skip.bytes)]),
        );
        if skip.any() {
            report = report
                .flag_failures(skip.blocks.max(1))
                .note("verification found damage; replay this file with --mode lenient");
        } else {
            report = report.note("verification passed: every block framed and checksummed");
        }
    }
    Ok(report)
}

pub(super) fn replay(a: &ExpArgs) -> Result<Report, DriverError> {
    let trace = a.str("trace");
    if trace.is_empty() {
        return Err(DriverError::Usage(
            "--trace is required (a file produced by `cac trace gen`/`convert`)".into(),
        ));
    }
    let scheme = parse_scheme(a.str("scheme"))?;
    let geom = parse_geometry(a)?;
    let chunk = a.usize("chunk")?;
    let mode = parse_decode_mode(a.str("mode"))?;
    let mut cache = Cache::build(geom, scheme.clone())?;

    let source = AnySource::open_with_mode(trace, mode)?;
    let format = source.format();
    let start = Instant::now();
    // Binary and columnar traces take the MemRef fast path; text
    // streams go through the generic chunked op replay.
    let mut skip = SkipReport::default();
    let stats = match source {
        AnySource::Binary(mut reader) => {
            let stats = run_cache_source(&mut cache, &mut reader)
                .map_err(|e| DriverError::Input(e.to_string()))?;
            skip = reader.skipped();
            stats
        }
        AnySource::Columnar(mut reader) => {
            let stats = run_cache_source(&mut cache, &mut *reader)
                .map_err(|e| DriverError::Input(e.to_string()))?;
            skip = reader.skipped();
            stats
        }
        text => run_cache_chunked(&mut cache, text, chunk)?,
    };
    let elapsed = start.elapsed();

    let melem_s = stats.accesses as f64 / elapsed.as_secs_f64() / 1e6;
    let table = Table::new("replay statistics", &["counter", "value"])
        .row(vec![Value::s("accesses"), Value::u(stats.accesses)])
        .row(vec![Value::s("reads"), Value::u(stats.reads)])
        .row(vec![Value::s("writes"), Value::u(stats.writes)])
        .row(vec![Value::s("misses"), Value::u(stats.misses)])
        .row(vec![
            Value::s("miss ratio %"),
            Value::f(stats.miss_ratio() * 100.0, 3),
        ])
        .row(vec![
            Value::s("read miss ratio %"),
            Value::f(stats.read_miss_ratio() * 100.0, 3),
        ])
        .row(vec![Value::s("evictions"), Value::u(stats.evictions)]);
    let mut report = Report::new(format!(
        "replay: {trace} ({}) through {scheme} on {geom}",
        format_name(format)
    ))
    .param("trace", trace)
    .param("scheme", scheme.name())
    .param("size", geom.capacity())
    .param("line", geom.block())
    .param("ways", geom.ways())
    .param("chunk", chunk)
    .param("mode", a.str("mode"))
    .table(table)
    .note(format!(
        "replayed {} references in {:.1} ms ({melem_s:.1} Melem/s streaming)",
        stats.accesses,
        elapsed.as_secs_f64() * 1e3
    ));
    if skip.any() {
        // A lenient replay that had to drop data completes, but the
        // numbers are partial: flag it so `cac` exits 1.
        report = report
            .table(
                Table::new("skipped (damaged input)", &["what", "count"])
                    .row(vec![Value::s("blocks"), Value::u(skip.blocks)])
                    .row(vec![Value::s("records"), Value::u(skip.records)])
                    .row(vec![Value::s("bytes"), Value::u(skip.bytes)]),
            )
            .flag_failures(skip.blocks.max(1))
            .note("input was damaged; statistics cover the decodable blocks only");
    }
    Ok(report)
}

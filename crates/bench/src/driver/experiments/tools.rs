//! Trace tooling: `cac trace gen`, `cac trace convert`,
//! `cac trace info` and `cac replay`.
//!
//! This is the external-trace workflow the binary format exists for:
//! generate (or import) a trace file, inspect it, convert between the
//! text interchange format and the compact binary format, and stream it
//! through a configurable cache at batched-replay speed.

use super::common::{parse_benchmark, parse_geometry, parse_scheme};
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_sim::cache::Cache;
use cac_sim::replay::{run_cache_chunked, run_cache_refs};
use cac_trace::io::{
    read_trace, sniff_format, write_trace, BinaryTraceReader, BinaryTraceWriter, ChunkSource,
    TraceFormat, DEFAULT_CHUNK_OPS,
};
use cac_trace::{OpClass, TraceOp};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::time::Instant;

fn parse_file_format(s: &str) -> Result<TraceFormat, DriverError> {
    match s {
        "binary" => Ok(TraceFormat::Binary),
        "text" => Ok(TraceFormat::Text),
        other => Err(DriverError::Usage(format!(
            "unknown trace format {other:?}; valid: binary, text"
        ))),
    }
}

/// Opens a trace file and detects its format from the leading bytes.
fn open_sniffed(path: &str) -> Result<(File, TraceFormat), DriverError> {
    let mut f =
        File::open(path).map_err(|e| DriverError::Failed(format!("cannot open {path}: {e}")))?;
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match f.read(&mut prefix[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => return Err(DriverError::Failed(format!("cannot read {path}: {e}"))),
        }
    }
    let format = sniff_format(&prefix[..got]);
    f.seek(SeekFrom::Start(0))
        .map_err(|e| DriverError::Failed(format!("cannot rewind {path}: {e}")))?;
    Ok((f, format))
}

/// A [`ChunkSource`] with a unified error type, so the tools (and the
/// `cac run` config driver) can stream either format through one code
/// path.
pub(super) enum AnySource {
    Binary(BinaryTraceReader<BufReader<File>>),
    Text(cac_trace::io::ReadTrace<File>),
}

impl AnySource {
    pub(super) fn open(path: &str) -> Result<Self, DriverError> {
        let (file, format) = open_sniffed(path)?;
        match format {
            TraceFormat::Binary => {
                let reader = BinaryTraceReader::new(BufReader::new(file))
                    .map_err(|e| DriverError::Failed(format!("{path}: {e}")))?;
                Ok(AnySource::Binary(reader))
            }
            TraceFormat::Text => Ok(AnySource::Text(read_trace(file))),
        }
    }

    pub(super) fn format(&self) -> TraceFormat {
        match self {
            AnySource::Binary(_) => TraceFormat::Binary,
            AnySource::Text(_) => TraceFormat::Text,
        }
    }
}

impl ChunkSource for AnySource {
    type Error = DriverError;

    fn read_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> Result<usize, DriverError> {
        match self {
            AnySource::Binary(r) => r
                .read_chunk(out, max)
                .map_err(|e| DriverError::Failed(e.to_string())),
            AnySource::Text(r) => {
                ChunkSource::read_chunk(r, out, max).map_err(|e| DriverError::Failed(e.to_string()))
            }
        }
    }
}

fn format_name(f: TraceFormat) -> &'static str {
    match f {
        TraceFormat::Binary => "binary",
        TraceFormat::Text => "text",
    }
}

pub(super) fn trace_gen(a: &ExpArgs) -> Result<Report, DriverError> {
    let bench = parse_benchmark(a.str("bench"))?;
    let ops = a.u64("ops")?;
    let seed = a.u64("seed")?;
    let out = a.str("out");
    if out.is_empty() {
        return Err(DriverError::Usage(
            "--out is required (path of the trace file to write)".into(),
        ));
    }
    let format = parse_file_format(a.str("format"))?;

    let file =
        File::create(out).map_err(|e| DriverError::Failed(format!("cannot create {out}: {e}")))?;
    let gen = bench.generator(seed).take(ops as usize);
    match format {
        TraceFormat::Binary => {
            let mut w = BinaryTraceWriter::new(file)?;
            w.write_all(gen)?;
            w.finish()?;
        }
        TraceFormat::Text => {
            let mut w = BufWriter::new(file);
            write_trace(&mut w, gen)?;
            w.flush()?;
        }
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    Ok(Report::new("trace gen")
        .param("bench", bench.name())
        .param("ops", ops)
        .param("seed", seed)
        .param("out", out)
        .param("format", format_name(format))
        .table(
            Table::new("written", &["file", "format", "ops", "bytes", "bytes/op"]).row(vec![
                Value::s(out),
                Value::s(format_name(format)),
                Value::u(ops),
                Value::u(bytes),
                Value::f(bytes as f64 / ops.max(1) as f64, 2),
            ]),
        ))
}

pub(super) fn trace_convert(a: &ExpArgs) -> Result<Report, DriverError> {
    let input = a.str("input");
    let output = a.str("output");
    if input.is_empty() || output.is_empty() {
        return Err(DriverError::Usage(
            "usage: cac trace convert <input> <output> [--to binary|text]".into(),
        ));
    }
    let mut source = AnySource::open(input)?;
    let to = if a.is_set("to") {
        parse_file_format(a.str("to"))?
    } else {
        // Default: convert to the other format.
        match source.format() {
            TraceFormat::Binary => TraceFormat::Text,
            TraceFormat::Text => TraceFormat::Binary,
        }
    };

    let file = File::create(output)
        .map_err(|e| DriverError::Failed(format!("cannot create {output}: {e}")))?;
    let mut buf = Vec::with_capacity(DEFAULT_CHUNK_OPS);
    let mut ops = 0u64;
    match to {
        TraceFormat::Binary => {
            let mut w = BinaryTraceWriter::new(file)?;
            while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
                ops += buf.len() as u64;
                w.write_all(buf.iter().copied())?;
            }
            w.finish()?;
        }
        TraceFormat::Text => {
            let mut w = BufWriter::new(file);
            while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
                ops += buf.len() as u64;
                write_trace(&mut w, buf.iter().copied())?;
            }
            w.flush()?;
        }
    }
    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    Ok(Report::new("trace convert")
        .param("input", input)
        .param("output", output)
        .param("to", format_name(to))
        .table(
            Table::new("converted", &["from", "to", "ops", "in bytes", "out bytes"]).row(vec![
                Value::s(format_name(source.format())),
                Value::s(format_name(to)),
                Value::u(ops),
                Value::u(in_bytes),
                Value::u(out_bytes),
            ]),
        ))
}

pub(super) fn trace_info(a: &ExpArgs) -> Result<Report, DriverError> {
    let input = a.str("input");
    if input.is_empty() {
        return Err(DriverError::Usage("usage: cac trace info <file>".into()));
    }
    let mut source = AnySource::open(input)?;
    let format = source.format();

    let mut buf = Vec::with_capacity(DEFAULT_CHUNK_OPS);
    let mut total = 0u64;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    let mut taken = 0u64;
    let mut addr_min = u64::MAX;
    let mut addr_max = 0u64;
    while source.read_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
        total += buf.len() as u64;
        for op in &buf {
            match op.class {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => {
                    branches += 1;
                    if op.taken {
                        taken += 1;
                    }
                }
                _ => {}
            }
            if let Some(addr) = op.addr {
                addr_min = addr_min.min(addr);
                addr_max = addr_max.max(addr);
            }
        }
    }
    let bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let mem = loads + stores;
    let mut table = Table::new("trace summary", &["field", "value"])
        .row(vec![Value::s("format"), Value::s(format_name(format))])
        .row(vec![Value::s("bytes"), Value::u(bytes)])
        .row(vec![Value::s("ops"), Value::u(total)])
        .row(vec![Value::s("loads"), Value::u(loads)])
        .row(vec![Value::s("stores"), Value::u(stores)])
        .row(vec![Value::s("branches"), Value::u(branches)])
        .row(vec![Value::s("branches taken"), Value::u(taken)])
        .row(vec![
            Value::s("compute ops"),
            Value::u(total - mem - branches),
        ]);
    if mem > 0 {
        table.push_row(vec![
            Value::s("address range"),
            Value::s(format!("{addr_min:#x}..{addr_max:#x}")),
        ]);
    }
    Ok(Report::new(format!("trace info: {input}"))
        .param("input", input)
        .table(table))
}

pub(super) fn replay(a: &ExpArgs) -> Result<Report, DriverError> {
    let trace = a.str("trace");
    if trace.is_empty() {
        return Err(DriverError::Usage(
            "--trace is required (a file produced by `cac trace gen`/`convert`)".into(),
        ));
    }
    let scheme = parse_scheme(a.str("scheme"))?;
    let geom = parse_geometry(a)?;
    let chunk = a.usize("chunk")?;
    let mut cache = Cache::build(geom, scheme.clone())?;

    let source = AnySource::open(trace)?;
    let format = source.format();
    let start = Instant::now();
    // Binary traces take the MemRef fast path; text streams go through
    // the generic chunked op replay.
    let stats = match source {
        AnySource::Binary(mut reader) => run_cache_refs(&mut cache, &mut reader)
            .map_err(|e| DriverError::Failed(e.to_string()))?,
        text => run_cache_chunked(&mut cache, text, chunk)?,
    };
    let elapsed = start.elapsed();

    let melem_s = stats.accesses as f64 / elapsed.as_secs_f64() / 1e6;
    let table = Table::new("replay statistics", &["counter", "value"])
        .row(vec![Value::s("accesses"), Value::u(stats.accesses)])
        .row(vec![Value::s("reads"), Value::u(stats.reads)])
        .row(vec![Value::s("writes"), Value::u(stats.writes)])
        .row(vec![Value::s("misses"), Value::u(stats.misses)])
        .row(vec![
            Value::s("miss ratio %"),
            Value::f(stats.miss_ratio() * 100.0, 3),
        ])
        .row(vec![
            Value::s("read miss ratio %"),
            Value::f(stats.read_miss_ratio() * 100.0, 3),
        ])
        .row(vec![Value::s("evictions"), Value::u(stats.evictions)]);
    Ok(Report::new(format!(
        "replay: {trace} ({}) through {scheme} on {geom}",
        format_name(format)
    ))
    .param("trace", trace)
    .param("scheme", scheme.name())
    .param("size", geom.capacity())
    .param("line", geom.block())
    .param("ways", geom.ways())
    .param("chunk", chunk)
    .table(table)
    .note(format!(
        "replayed {} references in {:.1} ms ({melem_s:.1} Melem/s streaming)",
        stats.accesses,
        elapsed.as_secs_f64() * 1e3
    )))
}

//! Hardware-cost studies: `cac xor-tree` (the §3.4 XOR-tree/CLA timing
//! argument) and `cac interleave` (Rau's pseudo-randomly interleaved
//! memory, the original habitat of polynomial placement).

use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_core::cla::ClaModel;
use cac_core::latency::CriticalPath;
use cac_core::IndexSpec;
use cac_gf2::irreducible::{irreducibles, is_primitive};
use cac_gf2::xor_tree::{min_fan_in_poly, XorTree};
use cac_interleave::{random_sweep, stride_sweep, summarize, BankConfig};

pub(super) fn xor_tree(_a: &ExpArgs) -> Result<Report, DriverError> {
    let cla = ClaModel::binary64();
    if cla.delay_for_bits(19) != 9 || cla.full_delay() != 11 {
        return Err(DriverError::Failed(
            "CLA model drifted from the paper's block-delay figures".into(),
        ));
    }

    let mut table = Table::new(
        "XOR-tree cost of I-Poly index functions",
        &[
            "geometry",
            "P(x)",
            "class",
            "max fan-in",
            "XOR2 depth",
            "fan-in<=5 polys",
            "CLA verdict",
        ],
    );
    let mut notes = Vec::new();
    for (label, m, v) in [
        ("8KB 2-way (128 sets)", 7u32, 14u32),
        ("16KB 2-way (256 sets)", 8, 14),
        ("8KB DM (256 sets)", 8, 14),
    ] {
        let p = min_fan_in_poly(m, v);
        let tree = XorTree::new(p, v);
        let fan_ins: Vec<u32> = (0..tree.output_bits()).map(|i| tree.fan_in(i)).collect();
        if tree.max_fan_in() > 5 {
            return Err(DriverError::Failed(format!(
                "{label}: fan-in {} exceeds the paper's bound of 5",
                tree.max_fan_in()
            )));
        }
        let good = irreducibles(m)
            .filter(|&q| XorTree::new(q, v).max_fan_in() <= 5)
            .count();
        let total = irreducibles(m).count();
        // One XOR2 level per unit of gate depth; assume one lookahead
        // block per XOR2 level for the critical-path verdict.
        let verdict = cla.critical_path_for(v + 5, tree.gate_depth());
        table.push_row(vec![
            Value::s(label),
            Value::s(p.to_string()),
            Value::s(if is_primitive(p) {
                "primitive"
            } else {
                "irreducible"
            }),
            Value::u(u64::from(tree.max_fan_in())),
            Value::u(u64::from(tree.gate_depth())),
            Value::s(format!("{good}/{total}")),
            Value::s(match verdict {
                CriticalPath::XorHidden => "XOR hidden in adder slack",
                CriticalPath::XorExposed => "XOR exposed (one-cycle penalty)",
            }),
        ]);
        notes.push(format!("{label}: per-bit fan-in {fan_ins:?}"));
    }

    let mut report = Report::new("E8 / section 3.4: XOR-tree cost of I-Poly index functions")
        .note(format!(
            "CLA timing (64-bit binary lookahead): 19 low bits ready at {} block-delays, \
             full sum at {}, slack {}",
            cla.delay_for_bits(19),
            cla.full_delay(),
            cla.slack_for_bits(19)
        ))
        .table(table);
    for n in notes {
        report = report.note(n);
    }
    Ok(report.note("all selected polynomials satisfy the paper's fan-in claim (max <= 5)"))
}

pub(super) fn interleave(a: &ExpArgs) -> Result<Report, DriverError> {
    let banks = a.u32("banks")?;
    let busy = a.u32("busy")?;
    let max_stride = a.u64("max-stride")?;
    let accesses = a.u64("accesses")?;

    if max_stride == 0 {
        return Err(DriverError::Usage("--max-stride must be at least 1".into()));
    }
    let cfg = BankConfig::new(banks, 8, busy)
        .map_err(|e| DriverError::Usage(format!("bad configuration: {e}")))?;

    let selectors = [
        ("modulo", IndexSpec::modulo()),
        ("prime (Lawrie-Vora)", IndexSpec::prime()),
        ("add-skew (Harper-Jump)", IndexSpec::add_skew()),
        ("rand-table (Raghavan-Hayes)", IndexSpec::rand_table()),
        ("xor-matrix (Frailong)", IndexSpec::xor_matrix()),
        ("ipoly (Rau)", IndexSpec::ipoly()),
    ];

    let mut table = Table::new(
        "sustained bandwidth by bank-selection function",
        &[
            "selector",
            "min bw",
            "mean bw",
            "degraded",
            "pow2 min bw",
            "worst stride",
        ],
    );
    for (name, spec) in &selectors {
        let results = stride_sweep(cfg, spec.clone(), max_stride, accesses)
            .map_err(|e| DriverError::Failed(format!("{name}: {e}")))?;
        let summary = summarize(&results, 0.5);
        let pow2_min = (0..)
            .map(|k| 1u64 << k)
            .take_while(|&s| s <= max_stride)
            .map(|s| results[(s - 1) as usize].bandwidth)
            .fold(f64::INFINITY, f64::min);
        let worst = results
            .iter()
            .min_by(|a, b| a.bandwidth.total_cmp(&b.bandwidth))
            .expect("non-empty sweep");
        table.push_row(vec![
            Value::s(*name),
            Value::f(summary.min_bandwidth, 3),
            Value::f(summary.mean_bandwidth, 3),
            Value::s(format!("{}/{max_stride}", summary.degraded)),
            Value::f(pow2_min, 3),
            Value::u(worst.stride),
        ]);
    }

    // Rau's reference point: random traffic, where the selector is
    // irrelevant and only queueing limits bandwidth.
    let mut rand_bws = Vec::new();
    for (_, spec) in &selectors {
        if let Ok(stats) = random_sweep(cfg, spec.clone(), accesses, 17) {
            rand_bws.push(stats.bandwidth());
        }
    }
    let (lo, hi) = rand_bws
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &b| {
            (lo.min(b), hi.max(b))
        });

    Ok(Report::new(format!(
        "E12 / Rau [19]: {banks} banks x 8B words, busy {busy} cycles, \
         strides 1..={max_stride}, {accesses} accesses per stride"
    ))
    .param("banks", banks)
    .param("busy", busy)
    .param("max-stride", max_stride)
    .param("accesses", accesses)
    .table(table)
    .note(format!(
        "random-traffic reference (selector-independent): bandwidth {lo:.3}..{hi:.3} \
         across all selectors"
    ))
    .note(format!(
        "peak = 1.0 access/cycle; serial floor = {:.3}; 'degraded' counts strides \
         below bandwidth 0.5",
        1.0 / f64::from(busy)
    )))
}

//! Cache-level (miss-ratio) studies: `cac missratio`,
//! `cac organizations`, `cac column`, `cac related`, `cac tiling` and
//! the `cac regions` debugging aid.
//!
//! These replay the 18 synthetic SPEC95 workload models (or the
//! Figure-1 stride traces) through single-level caches only — no
//! processor model — and compare placement schemes and cache
//! organizations by load miss ratio, as §2.1 and the related-work
//! discussion of the paper do.

use super::common::{paper_l1, parse_benchmark};
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map;
use crate::{arithmetic_mean, std_dev};
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::column::RehashKind;
use cac_sim::config::{ColumnConfig, JouppiConfig, ModelConfig, StreamConfig, VictimConfig};
use cac_sim::SimConfig;
use cac_trace::kernels::mem_refs;
use cac_trace::patterns::TiledMatMul;
use cac_trace::spec::SpecBenchmark;
use cac_trace::stride::figure1_sweep;
use cac_trace::MemRef;
use std::collections::BTreeMap;

/// Builds the configured model, replays `refs` and returns the demand
/// load miss ratio in percent — the one measurement loop every
/// organization/placement comparison in this module shares.
fn load_miss_pct(cfg: &SimConfig, refs: &[MemRef]) -> f64 {
    let mut model = cfg.build().expect("shipped config builds");
    model.run_refs(refs);
    model.stats().demand.read_miss_ratio() * 100.0
}

pub(super) fn missratio(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let fa_geom = CacheGeometry::fully_associative(8 * 1024, 32).expect("valid geometry");
    let conv = SimConfig::cache(geom, IndexSpec::modulo());
    let ipoly = SimConfig::cache(geom, IndexSpec::ipoly_skewed());
    let fa = SimConfig::cache(fa_geom, IndexSpec::modulo());

    // One worker per benchmark: each generates the workload once and
    // feeds the same reference stream to all three placements.
    let benches = SpecBenchmark::all();
    let results: Vec<(f64, f64, f64)> = par_map(&benches, |b| {
        let refs: Vec<MemRef> = mem_refs(b.generator(12345).take(ops)).collect();
        (
            load_miss_pct(&conv, &refs),
            load_miss_pct(&ipoly, &refs),
            load_miss_pct(&fa, &refs),
        )
    });

    let mut table = Table::new(
        "8KB 2-way load miss ratios (%)",
        &["bench", "conv", "paper", "ipoly", "paper", "fullassoc"],
    );
    let mut conv_all = Vec::new();
    let mut ipoly_all = Vec::new();
    let mut fa_all = Vec::new();
    for (b, &(c, p, f)) in benches.iter().zip(&results) {
        let row = b.paper_row();
        conv_all.push(c);
        ipoly_all.push(p);
        fa_all.push(f);
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(c, 2),
            Value::f(row.conv8_miss, 2),
            Value::f(p, 2),
            Value::f(row.ipoly_miss, 2),
            Value::f(f, 2),
        ]);
    }

    Ok(Report::new(format!(
        "E5: 8KB 2-way load miss ratios (%), {ops} ops per benchmark"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "suite average: conv {:.2}% (paper [10]: 13.84)  ipoly {:.2}% (paper [10]: 7.14)  \
         fully-assoc {:.2}% (paper [10]: 6.80)",
        arithmetic_mean(&conv_all),
        arithmetic_mean(&ipoly_all),
        arithmetic_mean(&fa_all)
    ))
    .note(format!(
        "miss-ratio stddev across suite: conv {:.2} (paper: 18.49)  ipoly {:.2} (paper: 5.16)",
        std_dev(&conv_all),
        std_dev(&ipoly_all)
    )))
}

/// The §2.1 organization matrix as declarative configs — the same
/// organizations shipped under `examples/*.toml`
/// (`crates/bench/tests/config_equivalence.rs` proves the file and
/// in-code forms build identical models).
pub fn organization_matrix() -> Vec<(&'static str, SimConfig)> {
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let w2 = paper_l1();
    let w4 = CacheGeometry::new(8 * 1024, 32, 4).expect("geometry");
    let fa = CacheGeometry::fully_associative(8 * 1024, 32).expect("geometry");
    vec![
        ("direct-mapped", SimConfig::cache(dm, IndexSpec::modulo())),
        ("2-way set-assoc", SimConfig::cache(w2, IndexSpec::modulo())),
        ("4-way set-assoc", SimConfig::cache(w4, IndexSpec::modulo())),
        (
            "victim (DM + 4 lines)",
            SimConfig::new(ModelConfig::Victim(VictimConfig {
                geometry: dm,
                victim_lines: 4,
            })),
        ),
        (
            "hash-rehash (bit flip)",
            SimConfig::new(ModelConfig::Column(ColumnConfig {
                geometry: dm,
                rehash: RehashKind::TopBitFlip,
            })),
        ),
        (
            "column-assoc (I-Poly)",
            SimConfig::new(ModelConfig::Column(ColumnConfig {
                geometry: dm,
                rehash: RehashKind::Polynomial,
            })),
        ),
        (
            "stream buffers (DM + 4x4)",
            SimConfig::new(ModelConfig::Stream(StreamConfig {
                geometry: dm,
                index: IndexSpec::modulo(),
                buffers: 4,
                depth: 4,
            })),
        ),
        (
            "Jouppi (DM + victim + stream)",
            SimConfig::new(ModelConfig::Jouppi(JouppiConfig {
                geometry: dm,
                victim_lines: 4,
                stream_buffers: 4,
                stream_depth: 4,
            })),
        ),
        (
            "2-way skewed XOR",
            SimConfig::cache(w2, IndexSpec::xor_skewed()),
        ),
        ("2-way I-Poly", SimConfig::cache(w2, IndexSpec::ipoly())),
        (
            "2-way skewed I-Poly",
            SimConfig::cache(w2, IndexSpec::ipoly_skewed()),
        ),
        (
            "fully associative",
            SimConfig::cache(fa, IndexSpec::modulo()),
        ),
    ]
}

pub(super) fn organizations(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let organizations = organization_matrix();

    let mut table = Table::new(
        "suite-average load miss % by organization",
        &["organization", "all", "bad-3", "good-15"],
    );
    let benches = SpecBenchmark::all();
    for (name, cfg) in &organizations {
        // Sweep the 18 benchmarks of this organization in parallel. The
        // read-only organizations bypass stores internally, so one
        // run_refs call covers both the cache and buffer models.
        let measurements = par_map(&benches, |&b| {
            let refs: Vec<MemRef> = mem_refs(b.generator(5).take(ops)).collect();
            load_miss_pct(cfg, &refs)
        });
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for (b, &m) in benches.iter().zip(&measurements) {
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }
        table.push_row(vec![
            Value::s(*name),
            Value::f(arithmetic_mean(&all), 2),
            Value::f(arithmetic_mean(&bad), 2),
            Value::f(arithmetic_mean(&good), 2),
        ]);
    }

    Ok(Report::new(format!(
        "E10 / section 2.1: 8KB organization comparison, suite-average load miss % \
         ({ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table)
    .note("paper, quoting [10] on full Spec95: 2-way 13.84%, I-Poly 7.14%, fully-assoc 6.80%"))
}

pub(super) fn column_assoc(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let plain_cfg = SimConfig::cache(dm, IndexSpec::modulo());
    let assoc_cfg = SimConfig::cache(paper_l1(), IndexSpec::modulo());
    let col_cfg = SimConfig::new(ModelConfig::Column(ColumnConfig {
        geometry: dm,
        rehash: RehashKind::Polynomial,
    }));

    let mut table = Table::new(
        "column-associative with polynomial rehash",
        &[
            "bench",
            "DM miss%",
            "2way miss%",
            "col miss%",
            "1st-probe%",
            "probes/hit",
        ],
    );
    let mut first_probe = Vec::new();
    for b in SpecBenchmark::all() {
        // Load behaviour, as in the paper's miss ratios: stores dropped.
        let reads: Vec<MemRef> = mem_refs(b.generator(3).take(ops))
            .filter(|r| !r.is_write)
            .collect();
        let mut col = col_cfg.build().expect("column config builds");
        col.run_refs(&reads);
        let s = col.stats();
        let (first, second) = (
            s.extra("first-probe-hits").unwrap_or(0) as f64,
            s.extra("second-probe-hits").unwrap_or(0) as f64,
        );
        let hits = (first + second).max(1.0);
        first_probe.push(first / hits * 100.0);
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(load_miss_pct(&plain_cfg, &reads), 2),
            Value::f(load_miss_pct(&assoc_cfg, &reads), 2),
            Value::f(s.demand.miss_ratio() * 100.0, 2),
            Value::f(first / hits * 100.0, 1),
            Value::f((first + 2.0 * second) / hits, 3),
        ]);
    }

    Ok(Report::new(format!(
        "E7 / section 3.1 option 4: column-associative with polynomial rehash ({ops} ops)"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "average first-probe hit fraction: {:.1}%  (paper: around 90%)",
        arithmetic_mean(&first_probe)
    )))
}

pub(super) fn related_work(a: &ExpArgs) -> Result<Report, DriverError> {
    let max_stride = a.u64("max-stride")?;
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let suite = IndexSpec::related_work_suite();

    let mut table = Table::new(
        "placement functions head to head",
        &[
            "scheme",
            "pathological",
            "path%",
            "stride avg%",
            "spec all%",
            "spec bad-3%",
            "spec good%",
        ],
    );
    for spec in &suite {
        // Part 1: Figure-1 stride sweep.
        let mut pathological = 0u64;
        let mut strides = 0u64;
        let mut ratio_sum = 0.0;
        figure1_sweep(max_stride, 16, |_, trace| {
            let mut cache = Cache::build(geom, spec.clone()).expect("cache");
            for r in trace {
                cache.read(r.addr);
            }
            let ratio = cache.stats().miss_ratio();
            ratio_sum += ratio;
            strides += 1;
            if ratio > 0.5 {
                pathological += 1;
            }
        });

        // Part 2: synthetic SPEC95 miss ratios.
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for b in SpecBenchmark::all() {
            let mut cache = Cache::build(geom, spec.clone()).expect("cache");
            for r in mem_refs(b.generator(5).take(ops)) {
                cache.access(r.addr, r.is_write);
            }
            let m = cache.stats().read_miss_ratio() * 100.0;
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }

        let label = spec.build(geom).expect("buildable").label();
        table.push_row(vec![
            Value::s(label),
            Value::u(pathological),
            Value::f(pathological as f64 / strides as f64 * 100.0, 1),
            Value::f(ratio_sum / strides as f64 * 100.0, 2),
            Value::f(arithmetic_mean(&all), 2),
            Value::f(arithmetic_mean(&bad), 2),
            Value::f(arithmetic_mean(&good), 2),
        ]);
    }

    Ok(Report::new(format!(
        "E11 / section 2.1 related work: placement functions on {geom} \
         (strides 1..{max_stride}, {ops} ops/benchmark)"
    ))
    .param("max-stride", max_stride)
    .param("ops", ops)
    .table(table)
    .note(
        "Reading guide: prime-modulus fixes power-of-two strides but wastes sets and \
         needs a divider; additive skew and two-field XOR share the 2^(2m) blind spot; \
         random-table and XOR-matrix hashing have no stride guarantee; skewed I-Poly \
         is the only scheme that is simultaneously cheap (XOR tree), balanced, and \
         stride-insensitive — the paper's argument in one table.",
    ))
}

pub(super) fn tiling(a: &ExpArgs) -> Result<Report, DriverError> {
    let n = a.u64("n")?;
    if n == 0 {
        return Err(DriverError::Usage("--n must be positive".into()));
    }
    let geom = paper_l1();
    let pow2_pitch = n * TiledMatMul::ELEM;
    let padded_pitch = (n + 8) * TiledMatMul::ELEM;

    let miss_pct = |spec: &IndexSpec, tile: u64, pitch: u64| -> f64 {
        let mut cache = Cache::build(geom, spec.clone()).expect("cache");
        for r in TiledMatMul::new(n, tile, pitch).block_row() {
            cache.access(r.addr, r.is_write);
        }
        cache.stats().read_miss_ratio() * 100.0
    };

    let conv = IndexSpec::modulo();
    let ipoly = IndexSpec::ipoly_skewed();
    let mut table = Table::new(
        "tiled matmul block-row load miss %",
        &[
            "tile",
            "conv pow2-LDA",
            "conv padded-LDA",
            "ipoly pow2-LDA",
            "ipoly padded",
            "footprint KB",
        ],
    );
    for tile in [4u64, 8, 12, 16, 20, 24, 32] {
        if tile > n {
            continue;
        }
        let mm = TiledMatMul::new(n, tile, pow2_pitch);
        table.push_row(vec![
            Value::u(tile),
            Value::f(miss_pct(&conv, tile, pow2_pitch), 2),
            Value::f(miss_pct(&conv, tile, padded_pitch), 2),
            Value::f(miss_pct(&ipoly, tile, pow2_pitch), 2),
            Value::f(miss_pct(&ipoly, tile, padded_pitch), 2),
            Value::u(mm.tile_footprint() / 1024),
        ]);
    }

    Ok(Report::new(format!(
        "E16 / section 5: tiled {n}x{n} matmul block-row, {geom}, load miss %"
    ))
    .param("n", n)
    .table(table)
    .note(
        "Shape check: column 1 (power-of-two leading dimension, conventional index) \
         should dominate everything else; column 2 shows the manual padding fix; \
         columns 3-4 show I-Poly insensitive to the pitch — the tile size can be \
         picked purely to fit capacity, which is the paper's closing claim.",
    ))
}

fn region(addr: u64) -> &'static str {
    match addr {
        0x0010_0000..=0x00FF_FFFF => "hot",
        0x0100_0000..=0x01FF_FFFF => "conflict-short",
        0x0200_0000..=0x0FFF_FFFF => "conflict-long",
        0x1000_0000..=0x1FFF_FFFF => "stream",
        0x2000_0000..=0x3FFF_FFFF => "store",
        _ => "random",
    }
}

pub(super) fn regions(a: &ExpArgs) -> Result<Report, DriverError> {
    let b = parse_benchmark(a.str("bench"))?;
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let mut report = Report::new(format!(
        "per-region miss breakdown for {} ({ops} ops)",
        b.name()
    ))
    .param("bench", b.name())
    .param("ops", ops);
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        let mut c = Cache::build(geom, spec.clone()).expect("cache");
        let mut acc: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for r in mem_refs(b.generator(12345).take(ops)) {
            let hit = c.access(r.addr, r.is_write).hit;
            let e = acc.entry(region(r.addr)).or_default();
            e.0 += 1;
            if !hit {
                e.1 += 1;
            }
        }
        let mut table = Table::new(
            format!("{} / {spec}", b.name()),
            &["region", "accesses", "misses", "miss%"],
        );
        for (reg, (n, m)) in &acc {
            table.push_row(vec![
                Value::s(*reg),
                Value::u(*n),
                Value::u(*m),
                Value::f(*m as f64 / *n as f64 * 100.0, 2),
            ]);
        }
        report = report.table(table);
    }
    Ok(report)
}

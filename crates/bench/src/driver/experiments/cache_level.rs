//! Cache-level (miss-ratio) studies: `cac missratio`,
//! `cac organizations`, `cac column`, `cac related`, `cac tiling` and
//! the `cac regions` debugging aid.
//!
//! These replay the 18 synthetic SPEC95 workload models (or the
//! Figure-1 stride traces) through single-level caches only — no
//! processor model — and compare placement schemes and cache
//! organizations by load miss ratio, as §2.1 and the related-work
//! discussion of the paper do.

use super::common::{paper_l1, parse_benchmark};
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map;
use crate::{arithmetic_mean, std_dev};
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::column::{ColumnAssociative, RehashKind};
use cac_sim::jouppi::JouppiCache;
use cac_sim::stream::StreamBufferCache;
use cac_sim::victim::VictimCache;
use cac_trace::kernels::mem_refs;
use cac_trace::patterns::TiledMatMul;
use cac_trace::spec::SpecBenchmark;
use cac_trace::stride::figure1_sweep;
use std::collections::BTreeMap;

pub(super) fn missratio(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let fa_geom = CacheGeometry::fully_associative(8 * 1024, 32).expect("valid geometry");

    // One worker per benchmark: each generates the workload once and
    // feeds the same reference stream to all three placements.
    let benches = SpecBenchmark::all();
    let results: Vec<(f64, f64, f64)> = par_map(&benches, |b| {
        let mut conv = Cache::build(geom, IndexSpec::modulo()).expect("cache");
        let mut ipoly = Cache::build(geom, IndexSpec::ipoly_skewed()).expect("cache");
        let mut fa = Cache::build(fa_geom, IndexSpec::modulo()).expect("cache");
        for r in mem_refs(b.generator(12345).take(ops)) {
            conv.access(r.addr, r.is_write);
            ipoly.access(r.addr, r.is_write);
            fa.access(r.addr, r.is_write);
        }
        (
            conv.stats().read_miss_ratio() * 100.0,
            ipoly.stats().read_miss_ratio() * 100.0,
            fa.stats().read_miss_ratio() * 100.0,
        )
    });

    let mut table = Table::new(
        "8KB 2-way load miss ratios (%)",
        &["bench", "conv", "paper", "ipoly", "paper", "fullassoc"],
    );
    let mut conv_all = Vec::new();
    let mut ipoly_all = Vec::new();
    let mut fa_all = Vec::new();
    for (b, &(c, p, f)) in benches.iter().zip(&results) {
        let row = b.paper_row();
        conv_all.push(c);
        ipoly_all.push(p);
        fa_all.push(f);
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(c, 2),
            Value::f(row.conv8_miss, 2),
            Value::f(p, 2),
            Value::f(row.ipoly_miss, 2),
            Value::f(f, 2),
        ]);
    }

    Ok(Report::new(format!(
        "E5: 8KB 2-way load miss ratios (%), {ops} ops per benchmark"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "suite average: conv {:.2}% (paper [10]: 13.84)  ipoly {:.2}% (paper [10]: 7.14)  \
         fully-assoc {:.2}% (paper [10]: 6.80)",
        arithmetic_mean(&conv_all),
        arithmetic_mean(&ipoly_all),
        arithmetic_mean(&fa_all)
    ))
    .note(format!(
        "miss-ratio stddev across suite: conv {:.2} (paper: 18.49)  ipoly {:.2} (paper: 5.16)",
        std_dev(&conv_all),
        std_dev(&ipoly_all)
    )))
}

pub(super) fn organizations(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let w2 = paper_l1();
    let w4 = CacheGeometry::new(8 * 1024, 32, 4).expect("geometry");
    let fa = CacheGeometry::fully_associative(8 * 1024, 32).expect("geometry");

    // Each organization is a closure from benchmark to load miss ratio;
    // `Send + Sync` so the benchmark sweep can fan out per organization.
    type Runner = Box<dyn Fn(SpecBenchmark) -> f64 + Send + Sync>;
    let cache_runner = |geom: CacheGeometry, spec: IndexSpec, ops: usize| -> Runner {
        Box::new(move |b: SpecBenchmark| {
            let mut c = Cache::build(geom, spec.clone()).expect("cache");
            c.run_refs(mem_refs(b.generator(5).take(ops)));
            c.stats().read_miss_ratio() * 100.0
        })
    };
    let organizations: Vec<(&str, Runner)> = vec![
        ("direct-mapped", cache_runner(dm, IndexSpec::modulo(), ops)),
        (
            "2-way set-assoc",
            cache_runner(w2, IndexSpec::modulo(), ops),
        ),
        (
            "4-way set-assoc",
            cache_runner(w4, IndexSpec::modulo(), ops),
        ),
        (
            "victim (DM + 4 lines)",
            Box::new(move |b| {
                let mut v = VictimCache::new(dm, 4).expect("cache");
                let mut reads = 0u64;
                let mut misses = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    if !v.read(r.addr).hit() {
                        misses += 1;
                    }
                }
                misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "hash-rehash (bit flip)",
            Box::new(move |b| {
                let mut c =
                    ColumnAssociative::with_rehash(dm, RehashKind::TopBitFlip).expect("cache");
                let mut reads = 0u64;
                let mut misses = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    if !c.read(r.addr).is_hit() {
                        misses += 1;
                    }
                }
                misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "column-assoc (I-Poly)",
            Box::new(move |b| {
                let mut c = ColumnAssociative::new(dm).expect("cache");
                let mut reads = 0u64;
                let mut misses = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    if !c.read(r.addr).is_hit() {
                        misses += 1;
                    }
                }
                misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "stream buffers (DM + 4x4)",
            Box::new(move |b| {
                let mut c = StreamBufferCache::new(dm, 4, 4).expect("cache");
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    c.read(r.addr);
                }
                c.stats().miss_ratio() * 100.0
            }),
        ),
        (
            "Jouppi (DM + victim + stream)",
            Box::new(move |b| {
                let mut c = JouppiCache::new(dm, 4, 4, 4).expect("cache");
                let mut reads = 0u64;
                for r in mem_refs(b.generator(5).take(ops)) {
                    if r.is_write {
                        continue;
                    }
                    reads += 1;
                    c.read(r.addr);
                }
                c.stats().full_misses as f64 / reads.max(1) as f64 * 100.0
            }),
        ),
        (
            "2-way skewed XOR",
            cache_runner(w2, IndexSpec::xor_skewed(), ops),
        ),
        ("2-way I-Poly", cache_runner(w2, IndexSpec::ipoly(), ops)),
        (
            "2-way skewed I-Poly",
            cache_runner(w2, IndexSpec::ipoly_skewed(), ops),
        ),
        (
            "fully associative",
            cache_runner(fa, IndexSpec::modulo(), ops),
        ),
    ];

    let mut table = Table::new(
        "suite-average load miss % by organization",
        &["organization", "all", "bad-3", "good-15"],
    );
    let benches = SpecBenchmark::all();
    for (name, run) in &organizations {
        // Sweep the 18 benchmarks of this organization in parallel.
        let measurements = par_map(&benches, |&b| run(b));
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for (b, &m) in benches.iter().zip(&measurements) {
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }
        table.push_row(vec![
            Value::s(*name),
            Value::f(arithmetic_mean(&all), 2),
            Value::f(arithmetic_mean(&bad), 2),
            Value::f(arithmetic_mean(&good), 2),
        ]);
    }

    Ok(Report::new(format!(
        "E10 / section 2.1: 8KB organization comparison, suite-average load miss % \
         ({ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table)
    .note("paper, quoting [10] on full Spec95: 2-way 13.84%, I-Poly 7.14%, fully-assoc 6.80%"))
}

pub(super) fn column_assoc(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let two_way = paper_l1();

    let mut table = Table::new(
        "column-associative with polynomial rehash",
        &[
            "bench",
            "DM miss%",
            "2way miss%",
            "col miss%",
            "1st-probe%",
            "probes/hit",
        ],
    );
    let mut first_probe = Vec::new();
    for b in SpecBenchmark::all() {
        let mut plain = Cache::build(dm, IndexSpec::modulo()).expect("cache");
        let mut assoc = Cache::build(two_way, IndexSpec::modulo()).expect("cache");
        let mut col = ColumnAssociative::new(dm).expect("cache");
        for r in mem_refs(b.generator(3).take(ops)) {
            if r.is_write {
                continue; // load behaviour, as in the paper's miss ratios
            }
            plain.read(r.addr);
            assoc.read(r.addr);
            col.read(r.addr);
        }
        let s = col.stats();
        first_probe.push(s.first_probe_hit_fraction() * 100.0);
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(plain.stats().miss_ratio() * 100.0, 2),
            Value::f(assoc.stats().miss_ratio() * 100.0, 2),
            Value::f(s.miss_ratio() * 100.0, 2),
            Value::f(s.first_probe_hit_fraction() * 100.0, 1),
            Value::f(s.avg_probes_per_hit(), 3),
        ]);
    }

    Ok(Report::new(format!(
        "E7 / section 3.1 option 4: column-associative with polynomial rehash ({ops} ops)"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "average first-probe hit fraction: {:.1}%  (paper: around 90%)",
        arithmetic_mean(&first_probe)
    )))
}

pub(super) fn related_work(a: &ExpArgs) -> Result<Report, DriverError> {
    let max_stride = a.u64("max-stride")?;
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let suite = IndexSpec::related_work_suite();

    let mut table = Table::new(
        "placement functions head to head",
        &[
            "scheme",
            "pathological",
            "path%",
            "stride avg%",
            "spec all%",
            "spec bad-3%",
            "spec good%",
        ],
    );
    for spec in &suite {
        // Part 1: Figure-1 stride sweep.
        let mut pathological = 0u64;
        let mut strides = 0u64;
        let mut ratio_sum = 0.0;
        figure1_sweep(max_stride, 16, |_, trace| {
            let mut cache = Cache::build(geom, spec.clone()).expect("cache");
            for r in trace {
                cache.read(r.addr);
            }
            let ratio = cache.stats().miss_ratio();
            ratio_sum += ratio;
            strides += 1;
            if ratio > 0.5 {
                pathological += 1;
            }
        });

        // Part 2: synthetic SPEC95 miss ratios.
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for b in SpecBenchmark::all() {
            let mut cache = Cache::build(geom, spec.clone()).expect("cache");
            for r in mem_refs(b.generator(5).take(ops)) {
                cache.access(r.addr, r.is_write);
            }
            let m = cache.stats().read_miss_ratio() * 100.0;
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }

        let label = spec.build(geom).expect("buildable").label();
        table.push_row(vec![
            Value::s(label),
            Value::u(pathological),
            Value::f(pathological as f64 / strides as f64 * 100.0, 1),
            Value::f(ratio_sum / strides as f64 * 100.0, 2),
            Value::f(arithmetic_mean(&all), 2),
            Value::f(arithmetic_mean(&bad), 2),
            Value::f(arithmetic_mean(&good), 2),
        ]);
    }

    Ok(Report::new(format!(
        "E11 / section 2.1 related work: placement functions on {geom} \
         (strides 1..{max_stride}, {ops} ops/benchmark)"
    ))
    .param("max-stride", max_stride)
    .param("ops", ops)
    .table(table)
    .note(
        "Reading guide: prime-modulus fixes power-of-two strides but wastes sets and \
         needs a divider; additive skew and two-field XOR share the 2^(2m) blind spot; \
         random-table and XOR-matrix hashing have no stride guarantee; skewed I-Poly \
         is the only scheme that is simultaneously cheap (XOR tree), balanced, and \
         stride-insensitive — the paper's argument in one table.",
    ))
}

pub(super) fn tiling(a: &ExpArgs) -> Result<Report, DriverError> {
    let n = a.u64("n")?;
    if n == 0 {
        return Err(DriverError::Usage("--n must be positive".into()));
    }
    let geom = paper_l1();
    let pow2_pitch = n * TiledMatMul::ELEM;
    let padded_pitch = (n + 8) * TiledMatMul::ELEM;

    let miss_pct = |spec: &IndexSpec, tile: u64, pitch: u64| -> f64 {
        let mut cache = Cache::build(geom, spec.clone()).expect("cache");
        for r in TiledMatMul::new(n, tile, pitch).block_row() {
            cache.access(r.addr, r.is_write);
        }
        cache.stats().read_miss_ratio() * 100.0
    };

    let conv = IndexSpec::modulo();
    let ipoly = IndexSpec::ipoly_skewed();
    let mut table = Table::new(
        "tiled matmul block-row load miss %",
        &[
            "tile",
            "conv pow2-LDA",
            "conv padded-LDA",
            "ipoly pow2-LDA",
            "ipoly padded",
            "footprint KB",
        ],
    );
    for tile in [4u64, 8, 12, 16, 20, 24, 32] {
        if tile > n {
            continue;
        }
        let mm = TiledMatMul::new(n, tile, pow2_pitch);
        table.push_row(vec![
            Value::u(tile),
            Value::f(miss_pct(&conv, tile, pow2_pitch), 2),
            Value::f(miss_pct(&conv, tile, padded_pitch), 2),
            Value::f(miss_pct(&ipoly, tile, pow2_pitch), 2),
            Value::f(miss_pct(&ipoly, tile, padded_pitch), 2),
            Value::u(mm.tile_footprint() / 1024),
        ]);
    }

    Ok(Report::new(format!(
        "E16 / section 5: tiled {n}x{n} matmul block-row, {geom}, load miss %"
    ))
    .param("n", n)
    .table(table)
    .note(
        "Shape check: column 1 (power-of-two leading dimension, conventional index) \
         should dominate everything else; column 2 shows the manual padding fix; \
         columns 3-4 show I-Poly insensitive to the pitch — the tile size can be \
         picked purely to fit capacity, which is the paper's closing claim.",
    ))
}

fn region(addr: u64) -> &'static str {
    match addr {
        0x0010_0000..=0x00FF_FFFF => "hot",
        0x0100_0000..=0x01FF_FFFF => "conflict-short",
        0x0200_0000..=0x0FFF_FFFF => "conflict-long",
        0x1000_0000..=0x1FFF_FFFF => "stream",
        0x2000_0000..=0x3FFF_FFFF => "store",
        _ => "random",
    }
}

pub(super) fn regions(a: &ExpArgs) -> Result<Report, DriverError> {
    let b = parse_benchmark(a.str("bench"))?;
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let mut report = Report::new(format!(
        "per-region miss breakdown for {} ({ops} ops)",
        b.name()
    ))
    .param("bench", b.name())
    .param("ops", ops);
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        let mut c = Cache::build(geom, spec.clone()).expect("cache");
        let mut acc: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for r in mem_refs(b.generator(12345).take(ops)) {
            let hit = c.access(r.addr, r.is_write).hit;
            let e = acc.entry(region(r.addr)).or_default();
            e.0 += 1;
            if !hit {
                e.1 += 1;
            }
        }
        let mut table = Table::new(
            format!("{} / {spec}", b.name()),
            &["region", "accesses", "misses", "miss%"],
        );
        for (reg, (n, m)) in &acc {
            table.push_row(vec![
                Value::s(*reg),
                Value::u(*n),
                Value::u(*m),
                Value::f(*m as f64 / *n as f64 * 100.0, 2),
            ]);
        }
        report = report.table(table);
    }
    Ok(report)
}

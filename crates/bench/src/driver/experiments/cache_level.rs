//! Cache-level (miss-ratio) studies: `cac missratio`,
//! `cac organizations`, `cac column`, `cac related`, `cac tiling` and
//! the `cac regions` debugging aid.
//!
//! These replay the 18 synthetic SPEC95 workload models (or the
//! Figure-1 stride traces) through single-level caches only — no
//! processor model — and compare placement schemes and cache
//! organizations by load miss ratio, as §2.1 and the related-work
//! discussion of the paper do.

use super::common::{paper_l1, parse_benchmark};
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::{par_map, par_map_blocked};
use crate::{arithmetic_mean, std_dev};
use cac_core::{parse_size, CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::column::RehashKind;
use cac_sim::config::{ColumnConfig, JouppiConfig, ModelConfig, StreamConfig, VictimConfig};
use cac_sim::model::{MemoryModel, ModelStats};
use cac_sim::sweep::{LruStackSweep, Sweep};
use cac_sim::SimConfig;
use cac_trace::kernels::mem_refs;
use cac_trace::patterns::TiledMatMul;
use cac_trace::spec::SpecBenchmark;
use cac_trace::stride::VectorStride;
use cac_trace::MemRef;
use std::collections::BTreeMap;

/// Builds every config of a sweep into boxed models.
fn build_models(configs: &[&SimConfig]) -> Vec<Box<dyn MemoryModel>> {
    configs
        .iter()
        .map(|cfg| cfg.build().expect("shipped config builds"))
        .collect()
}

/// Replays `refs` once against every model (the decode-once sweep
/// engine, inline: callers already parallelise across benchmarks or
/// strides) and returns each model's demand load miss ratio in percent
/// — the one measurement loop every organization/placement comparison
/// in this module shares.
fn load_miss_pcts(models: &mut [Box<dyn MemoryModel>], refs: &[MemRef]) -> Vec<f64> {
    Sweep::new()
        .workers(1)
        .run_refs(models, refs)
        .iter()
        .map(|s| s.demand.read_miss_ratio() * 100.0)
        .collect()
}

pub(super) fn missratio(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let fa_geom = CacheGeometry::fully_associative(8 * 1024, 32).expect("valid geometry");
    let conv = SimConfig::cache(geom, IndexSpec::modulo());
    let ipoly = SimConfig::cache(geom, IndexSpec::ipoly_skewed());
    let fa = SimConfig::cache(fa_geom, IndexSpec::modulo());

    // One worker per benchmark: each generates the workload once and
    // feeds all three placements from it in a single pass.
    let benches = SpecBenchmark::all();
    let results: Vec<(f64, f64, f64)> = par_map(&benches, |b| {
        let refs: Vec<MemRef> = mem_refs(b.generator(12345).take(ops)).collect();
        let mut models = build_models(&[&conv, &ipoly, &fa]);
        let pcts = load_miss_pcts(&mut models, &refs);
        (pcts[0], pcts[1], pcts[2])
    });

    let mut table = Table::new(
        "8KB 2-way load miss ratios (%)",
        &["bench", "conv", "paper", "ipoly", "paper", "fullassoc"],
    );
    let mut conv_all = Vec::new();
    let mut ipoly_all = Vec::new();
    let mut fa_all = Vec::new();
    for (b, &(c, p, f)) in benches.iter().zip(&results) {
        let row = b.paper_row();
        conv_all.push(c);
        ipoly_all.push(p);
        fa_all.push(f);
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(c, 2),
            Value::f(row.conv8_miss, 2),
            Value::f(p, 2),
            Value::f(row.ipoly_miss, 2),
            Value::f(f, 2),
        ]);
    }

    Ok(Report::new(format!(
        "E5: 8KB 2-way load miss ratios (%), {ops} ops per benchmark"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "suite average: conv {:.2}% (paper [10]: 13.84)  ipoly {:.2}% (paper [10]: 7.14)  \
         fully-assoc {:.2}% (paper [10]: 6.80)",
        arithmetic_mean(&conv_all),
        arithmetic_mean(&ipoly_all),
        arithmetic_mean(&fa_all)
    ))
    .note(format!(
        "miss-ratio stddev across suite: conv {:.2} (paper: 18.49)  ipoly {:.2} (paper: 5.16)",
        std_dev(&conv_all),
        std_dev(&ipoly_all)
    )))
}

/// The §2.1 organization matrix as declarative configs — the same
/// organizations shipped under `examples/*.toml`
/// (`crates/bench/tests/config_equivalence.rs` proves the file and
/// in-code forms build identical models).
pub fn organization_matrix() -> Vec<(&'static str, SimConfig)> {
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let w2 = paper_l1();
    let w4 = CacheGeometry::new(8 * 1024, 32, 4).expect("geometry");
    let fa = CacheGeometry::fully_associative(8 * 1024, 32).expect("geometry");
    vec![
        ("direct-mapped", SimConfig::cache(dm, IndexSpec::modulo())),
        ("2-way set-assoc", SimConfig::cache(w2, IndexSpec::modulo())),
        ("4-way set-assoc", SimConfig::cache(w4, IndexSpec::modulo())),
        (
            "victim (DM + 4 lines)",
            SimConfig::new(ModelConfig::Victim(VictimConfig {
                geometry: dm,
                victim_lines: 4,
            })),
        ),
        (
            "hash-rehash (bit flip)",
            SimConfig::new(ModelConfig::Column(ColumnConfig {
                geometry: dm,
                rehash: RehashKind::TopBitFlip,
            })),
        ),
        (
            "column-assoc (I-Poly)",
            SimConfig::new(ModelConfig::Column(ColumnConfig {
                geometry: dm,
                rehash: RehashKind::Polynomial,
            })),
        ),
        (
            "stream buffers (DM + 4x4)",
            SimConfig::new(ModelConfig::Stream(StreamConfig {
                geometry: dm,
                index: IndexSpec::modulo(),
                buffers: 4,
                depth: 4,
            })),
        ),
        (
            "Jouppi (DM + victim + stream)",
            SimConfig::new(ModelConfig::Jouppi(JouppiConfig {
                geometry: dm,
                victim_lines: 4,
                stream_buffers: 4,
                stream_depth: 4,
            })),
        ),
        (
            "2-way skewed XOR",
            SimConfig::cache(w2, IndexSpec::xor_skewed()),
        ),
        ("2-way I-Poly", SimConfig::cache(w2, IndexSpec::ipoly())),
        (
            "2-way skewed I-Poly",
            SimConfig::cache(w2, IndexSpec::ipoly_skewed()),
        ),
        (
            "fully associative",
            SimConfig::cache(fa, IndexSpec::modulo()),
        ),
    ]
}

pub(super) fn organizations(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let organizations = organization_matrix();

    let mut table = Table::new(
        "suite-average load miss % by organization",
        &["organization", "all", "bad-3", "good-15"],
    );
    // One worker per benchmark: the workload is generated ONCE and
    // every organization of the matrix replays it in a single pass
    // (the read-only organizations bypass stores internally, so one
    // sweep covers both the cache and buffer models). This is the
    // whole-matrix shape the sweep engine exists for: trace cost per
    // benchmark instead of per (organization x benchmark).
    let benches = SpecBenchmark::all();
    let per_bench: Vec<Vec<f64>> = par_map(&benches, |&b| {
        let refs: Vec<MemRef> = mem_refs(b.generator(5).take(ops)).collect();
        let configs: Vec<&SimConfig> = organizations.iter().map(|(_, cfg)| cfg).collect();
        let mut models = build_models(&configs);
        load_miss_pcts(&mut models, &refs)
    });
    for (oi, (name, _)) in organizations.iter().enumerate() {
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for (b, ms) in benches.iter().zip(&per_bench) {
            let m = ms[oi];
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }
        table.push_row(vec![
            Value::s(*name),
            Value::f(arithmetic_mean(&all), 2),
            Value::f(arithmetic_mean(&bad), 2),
            Value::f(arithmetic_mean(&good), 2),
        ]);
    }

    Ok(Report::new(format!(
        "E10 / section 2.1: 8KB organization comparison, suite-average load miss % \
         ({ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table)
    .note("paper, quoting [10] on full Spec95: 2-way 13.84%, I-Poly 7.14%, fully-assoc 6.80%"))
}

pub(super) fn column_assoc(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let dm = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let plain_cfg = SimConfig::cache(dm, IndexSpec::modulo());
    let assoc_cfg = SimConfig::cache(paper_l1(), IndexSpec::modulo());
    let col_cfg = SimConfig::new(ModelConfig::Column(ColumnConfig {
        geometry: dm,
        rehash: RehashKind::Polynomial,
    }));

    let mut table = Table::new(
        "column-associative with polynomial rehash",
        &[
            "bench",
            "DM miss%",
            "2way miss%",
            "col miss%",
            "1st-probe%",
            "probes/hit",
        ],
    );
    let mut first_probe = Vec::new();
    for b in SpecBenchmark::all() {
        // Load behaviour, as in the paper's miss ratios: stores dropped.
        // One generation, one pass over all three organizations.
        let reads: Vec<MemRef> = mem_refs(b.generator(3).take(ops))
            .filter(|r| !r.is_write)
            .collect();
        let mut models = build_models(&[&plain_cfg, &assoc_cfg, &col_cfg]);
        let stats: Vec<ModelStats> = Sweep::new().workers(1).run_refs(&mut models, &reads);
        let s = &stats[2];
        let (first, second) = (
            s.extra("first-probe-hits").unwrap_or(0) as f64,
            s.extra("second-probe-hits").unwrap_or(0) as f64,
        );
        let hits = (first + second).max(1.0);
        first_probe.push(first / hits * 100.0);
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(stats[0].demand.read_miss_ratio() * 100.0, 2),
            Value::f(stats[1].demand.read_miss_ratio() * 100.0, 2),
            Value::f(s.demand.miss_ratio() * 100.0, 2),
            Value::f(first / hits * 100.0, 1),
            Value::f((first + 2.0 * second) / hits, 3),
        ]);
    }

    Ok(Report::new(format!(
        "E7 / section 3.1 option 4: column-associative with polynomial rehash ({ops} ops)"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "average first-probe hit fraction: {:.1}%  (paper: around 90%)",
        arithmetic_mean(&first_probe)
    )))
}

pub(super) fn related_work(a: &ExpArgs) -> Result<Report, DriverError> {
    let max_stride = a.u64("max-stride")?;
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let suite = IndexSpec::related_work_suite();

    let mut table = Table::new(
        "placement functions head to head",
        &[
            "scheme",
            "pathological",
            "path%",
            "stride avg%",
            "spec all%",
            "spec bad-3%",
            "spec good%",
        ],
    );
    let build_suite = |suite: &[IndexSpec]| -> Vec<Box<dyn MemoryModel>> {
        suite
            .iter()
            .map(|s| {
                Box::new(Cache::build(geom, s.clone()).expect("cache")) as Box<dyn MemoryModel>
            })
            .collect()
    };

    // Part 1: Figure-1 stride sweep — one trace per stride, every
    // scheme of the suite in one pass (parallel across stride blocks,
    // caches built once per block and reset between strides).
    let per_stride: Vec<Vec<f64>> = par_map_blocked(1..max_stride, |block| {
        let mut models = build_suite(&suite);
        let engine = Sweep::new().workers(1);
        let mut refs: Vec<MemRef> = Vec::new();
        block
            .map(|stride| {
                refs.clear();
                refs.extend(VectorStride::paper_figure1(stride, 16));
                for m in models.iter_mut() {
                    m.reset();
                }
                engine
                    .run_refs(&mut models, &refs)
                    .iter()
                    .map(|s| s.demand.miss_ratio())
                    .collect()
            })
            .collect()
    });
    let strides = per_stride.len() as u64;

    // Part 2: synthetic SPEC95 miss ratios — one generation per
    // benchmark, every scheme in one pass (parallel across benchmarks).
    let benches = SpecBenchmark::all();
    let per_bench: Vec<Vec<f64>> = par_map(&benches, |&b| {
        let refs: Vec<MemRef> = mem_refs(b.generator(5).take(ops)).collect();
        let mut models = build_suite(&suite);
        load_miss_pcts(&mut models, &refs)
    });

    for (si, spec) in suite.iter().enumerate() {
        let pathological = per_stride.iter().filter(|r| r[si] > 0.5).count() as u64;
        let ratio_sum: f64 = per_stride.iter().map(|r| r[si]).sum();
        let mut all = Vec::new();
        let mut bad = Vec::new();
        let mut good = Vec::new();
        for (b, ms) in benches.iter().zip(&per_bench) {
            let m = ms[si];
            all.push(m);
            if b.is_high_conflict() {
                bad.push(m);
            } else {
                good.push(m);
            }
        }

        let label = spec.build(geom).expect("buildable").label();
        table.push_row(vec![
            Value::s(label),
            Value::u(pathological),
            Value::f(pathological as f64 / strides as f64 * 100.0, 1),
            Value::f(ratio_sum / strides as f64 * 100.0, 2),
            Value::f(arithmetic_mean(&all), 2),
            Value::f(arithmetic_mean(&bad), 2),
            Value::f(arithmetic_mean(&good), 2),
        ]);
    }

    Ok(Report::new(format!(
        "E11 / section 2.1 related work: placement functions on {geom} \
         (strides 1..{max_stride}, {ops} ops/benchmark)"
    ))
    .param("max-stride", max_stride)
    .param("ops", ops)
    .table(table)
    .note(
        "Reading guide: prime-modulus fixes power-of-two strides but wastes sets and \
         needs a divider; additive skew and two-field XOR share the 2^(2m) blind spot; \
         random-table and XOR-matrix hashing have no stride guarantee; skewed I-Poly \
         is the only scheme that is simultaneously cheap (XOR tree), balanced, and \
         stride-insensitive — the paper's argument in one table.",
    ))
}

pub(super) fn tiling(a: &ExpArgs) -> Result<Report, DriverError> {
    let n = a.u64("n")?;
    if n == 0 {
        return Err(DriverError::Usage("--n must be positive".into()));
    }
    let geom = paper_l1();
    let pow2_pitch = n * TiledMatMul::ELEM;
    let padded_pitch = (n + 8) * TiledMatMul::ELEM;

    let miss_pct = |spec: &IndexSpec, tile: u64, pitch: u64| -> f64 {
        let mut cache = Cache::build(geom, spec.clone()).expect("cache");
        for r in TiledMatMul::new(n, tile, pitch).block_row() {
            cache.access(r.addr, r.is_write);
        }
        cache.stats().read_miss_ratio() * 100.0
    };

    let conv = IndexSpec::modulo();
    let ipoly = IndexSpec::ipoly_skewed();
    let mut table = Table::new(
        "tiled matmul block-row load miss %",
        &[
            "tile",
            "conv pow2-LDA",
            "conv padded-LDA",
            "ipoly pow2-LDA",
            "ipoly padded",
            "footprint KB",
        ],
    );
    for tile in [4u64, 8, 12, 16, 20, 24, 32] {
        if tile > n {
            continue;
        }
        let mm = TiledMatMul::new(n, tile, pow2_pitch);
        table.push_row(vec![
            Value::u(tile),
            Value::f(miss_pct(&conv, tile, pow2_pitch), 2),
            Value::f(miss_pct(&conv, tile, padded_pitch), 2),
            Value::f(miss_pct(&ipoly, tile, pow2_pitch), 2),
            Value::f(miss_pct(&ipoly, tile, padded_pitch), 2),
            Value::u(mm.tile_footprint() / 1024),
        ]);
    }

    Ok(Report::new(format!(
        "E16 / section 5: tiled {n}x{n} matmul block-row, {geom}, load miss %"
    ))
    .param("n", n)
    .table(table)
    .note(
        "Shape check: column 1 (power-of-two leading dimension, conventional index) \
         should dominate everything else; column 2 shows the manual padding fix; \
         columns 3-4 show I-Poly insensitive to the pitch — the tile size can be \
         picked purely to fit capacity, which is the paper's closing claim.",
    ))
}

/// Parses a comma-separated list with an element parser, mapping
/// failures to usage errors.
fn parse_csv<T>(
    csv: &str,
    what: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, DriverError> {
    let items: Vec<T> = csv
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).ok_or_else(|| DriverError::Usage(format!("invalid {what} value {s:?}"))))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(DriverError::Usage(format!("no {what} values given")));
    }
    Ok(items)
}

pub(super) fn lru_curve(a: &ExpArgs) -> Result<Report, DriverError> {
    let b = parse_benchmark(a.str("bench"))?;
    let ops = a.usize("ops")?;
    let line = a.u64("line")?;
    let sizes = parse_csv(a.str("sizes"), "size", |s| parse_size(s).ok())?;
    let ways = parse_csv(a.str("ways"), "ways", |s| s.parse::<u32>().ok())?;
    let sample = a.u32("sample")?;

    // The size x associativity grid, as (size, sets, ways) cells; cells
    // whose geometry degenerates (ways * line > size) are skipped.
    let mut grid: Vec<(u64, u32, u32)> = Vec::new();
    for &size in &sizes {
        for &w in &ways {
            if w == 0 || size % (line * u64::from(w)) != 0 {
                continue;
            }
            let sets = (size / (line * u64::from(w))) as u32;
            if sets > 0 {
                grid.push((size, sets, w));
            }
        }
    }
    if grid.is_empty() {
        return Err(DriverError::Usage(
            "the size/ways grid is empty; every cell needs ways * line <= size".into(),
        ));
    }
    let set_counts: Vec<u32> = grid.iter().map(|&(_, sets, _)| sets).collect();
    let mut sweep = LruStackSweep::new(line, &set_counts)?;
    if sample > 1 {
        sweep = sweep.with_set_sampling(sample)?;
    }

    // One traversal of the load stream (no materialisation at all):
    // the whole grid's miss counts come out of this single pass. Loads
    // only, as in the paper's miss-ratio tables — and a read-only
    // stream keeps the stack-distance counts exact for the paper's
    // write-through L1 as well.
    for r in mem_refs(b.generator(5).take(ops)) {
        if !r.is_write {
            sweep.observe(r.addr);
        }
    }

    let mut columns = vec!["size".to_owned()];
    columns.extend(ways.iter().map(|w| format!("{w}-way miss%")));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("LRU load miss-ratio curves (modulus indexing)", &col_refs);
    for &size in &sizes {
        let mut row = vec![Value::s(format_size(size))];
        for &w in &ways {
            let cell = grid
                .iter()
                .find(|&&(s, _, gw)| s == size && gw == w)
                .and_then(|&(_, sets, _)| sweep.miss_ratio(sets, w));
            row.push(match cell {
                Some(ratio) => Value::f(ratio * 100.0, 2),
                None => Value::s("-"),
            });
        }
        table.push_row(row);
    }

    let mut report = Report::new(format!(
        "Mattson one-pass LRU miss-ratio curves: {} loads of {} ({} ops), {line}B lines",
        sweep.refs_seen(),
        b.name(),
        ops
    ))
    .param("bench", b.name())
    .param("ops", ops)
    .param("line", line)
    .param("sizes", a.str("sizes"))
    .param("ways", a.str("ways"))
    .param("sample", sample)
    .table(table)
    .note(format!(
        "one stack-distance traversal replaced {} independent LRU replays",
        grid.len()
    ));
    if let Some(note) = sweep.sampling_note() {
        // The numeric form rides in a table so JSON/CSV consumers (the
        // analytic validator among them) get the standard error without
        // scraping the note text.
        if let Some(table) = super::analytic::sampling_table(&sweep) {
            report = report.table(table);
        }
        report = report.note(note);
    }
    Ok(report)
}

/// Renders a byte size with binary-unit suffixes for table labels.
fn format_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}MiB", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}KiB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

fn region(addr: u64) -> &'static str {
    match addr {
        0x0010_0000..=0x00FF_FFFF => "hot",
        0x0100_0000..=0x01FF_FFFF => "conflict-short",
        0x0200_0000..=0x0FFF_FFFF => "conflict-long",
        0x1000_0000..=0x1FFF_FFFF => "stream",
        0x2000_0000..=0x3FFF_FFFF => "store",
        _ => "random",
    }
}

pub(super) fn regions(a: &ExpArgs) -> Result<Report, DriverError> {
    let b = parse_benchmark(a.str("bench"))?;
    let ops = a.usize("ops")?;
    let geom = paper_l1();
    let mut report = Report::new(format!(
        "per-region miss breakdown for {} ({ops} ops)",
        b.name()
    ))
    .param("bench", b.name())
    .param("ops", ops);
    for spec in [IndexSpec::modulo(), IndexSpec::ipoly_skewed()] {
        let mut c = Cache::build(geom, spec.clone()).expect("cache");
        let mut acc: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for r in mem_refs(b.generator(12345).take(ops)) {
            let hit = c.access(r.addr, r.is_write).hit;
            let e = acc.entry(region(r.addr)).or_default();
            e.0 += 1;
            if !hit {
                e.1 += 1;
            }
        }
        let mut table = Table::new(
            format!("{} / {spec}", b.name()),
            &["region", "accesses", "misses", "miss%"],
        );
        for (reg, (n, m)) in &acc {
            table.push_row(vec![
                Value::s(*reg),
                Value::u(*n),
                Value::u(*m),
                Value::f(*m as f64 / *n as f64 * 100.0, 2),
            ]);
        }
        report = report.table(table);
    }
    Ok(report)
}

//! Declarative-config tools: `cac run` and `cac config validate`.
//!
//! `cac run --config <file.toml>` is the universal experiment: build
//! *any* cache organization from a [`SimConfig`] description and replay
//! *any* trace against it — an on-disk trace file (binary or text,
//! auto-detected) or a synthetic workload model. Every §2.1/§4
//! organization of the paper's comparison matrix ships as a config
//! under `examples/*.toml`; `cac config validate` keeps those files
//! building (CI runs it, so a shipped config can never rot).
//!
//! `--config` also takes a comma-separated *grid* of configs. Grid runs
//! are fault tolerant: each cell replays under panic isolation (a
//! poisoned config degrades to a `failed` row without touching its
//! siblings), and `--checkpoint <journal>` persists completed cells so
//! a killed run resumes computing only what is missing — the resumed
//! report is byte-identical to an uninterrupted one.

use super::common::parse_benchmark;
use super::tools::AnySource;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_sim::journal::{fingerprint, Journal};
use cac_sim::model::ModelStats;
use cac_sim::sweep::{ModelOutcome, Sweep};
use cac_sim::SimConfig;
use cac_trace::io::{ChunkSource, IterRefSource};
use cac_trace::{MemRef, TraceOp};
use std::path::Path;
use std::time::Instant;

/// Renders a [`ModelStats`] into report tables: the demand stream, the
/// per-component breakdown, and any organization-specific counters.
fn stats_tables(stats: &ModelStats) -> Vec<Table> {
    let mut tables = Vec::new();
    let d = stats.demand;
    tables.push(
        Table::new("demand stream", &["counter", "value"])
            .row(vec![Value::s("accesses"), Value::u(d.accesses)])
            .row(vec![Value::s("reads"), Value::u(d.reads)])
            .row(vec![Value::s("writes"), Value::u(d.writes)])
            .row(vec![Value::s("hits"), Value::u(d.hits)])
            .row(vec![Value::s("misses"), Value::u(d.misses)])
            .row(vec![
                Value::s("miss ratio %"),
                Value::f(d.miss_ratio() * 100.0, 3),
            ])
            .row(vec![
                Value::s("read miss ratio %"),
                Value::f(d.read_miss_ratio() * 100.0, 3),
            ]),
    );
    if stats.components.len() > 1 || stats.components.first().is_some_and(|c| c.stats != d) {
        let mut t = Table::new(
            "components",
            &[
                "component",
                "accesses",
                "hits",
                "misses",
                "miss%",
                "evictions",
                "writebacks",
                "invalidations",
            ],
        );
        for c in &stats.components {
            t.push_row(vec![
                Value::s(c.name.clone()),
                Value::u(c.stats.accesses),
                Value::u(c.stats.hits),
                Value::u(c.stats.misses),
                Value::f(c.stats.miss_ratio() * 100.0, 3),
                Value::u(c.stats.evictions),
                Value::u(c.stats.writebacks),
                Value::u(c.stats.invalidations),
            ]);
        }
        tables.push(t);
    }
    if !stats.extras.is_empty() {
        let mut t = Table::new("organization counters", &["counter", "value"]);
        for (name, v) in &stats.extras {
            t.push_row(vec![Value::s(name.clone()), Value::u(*v)]);
        }
        tables.push(t);
    }
    tables
}

pub(super) fn run(a: &ExpArgs) -> Result<Report, DriverError> {
    let raw = a.str("config");
    if raw.is_empty() {
        return Err(DriverError::Usage(
            "--config is required (a TOML model description; see examples/*.toml)".into(),
        ));
    }
    let paths: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
        .collect();
    if paths.is_empty() {
        return Err(DriverError::Usage("--config names no files".into()));
    }
    // A single config without a checkpoint keeps the classic detailed
    // report; grids and checkpointed runs get the cell-oriented one.
    if paths.len() > 1 || a.is_set("checkpoint") {
        return run_grid(a, &paths);
    }
    run_single(a, &paths[0])
}

fn run_single(a: &ExpArgs, path: &str) -> Result<Report, DriverError> {
    let chunk = a.usize("chunk")?.max(1);
    let cfg = SimConfig::load(path).map_err(|e| DriverError::Input(e.to_string()))?;
    let mut model = cfg.build()?;

    let trace = a.str("trace").to_owned();
    let mut refs: Vec<MemRef> = Vec::with_capacity(chunk);
    let start = Instant::now();
    let workload: String;
    if trace.is_empty() {
        let bench = parse_benchmark(a.str("bench"))?;
        let ops = a.usize("ops")?;
        let seed = a.u64("seed")?;
        workload = format!("{} x{ops} (seed {seed})", bench.name());
        let mut gen = bench.generator(seed).take(ops);
        loop {
            refs.clear();
            refs.extend((&mut gen).filter_map(|op| op.mem_ref()).take(chunk));
            if refs.is_empty() {
                break;
            }
            model.run_refs(&refs);
        }
    } else {
        let mut source = AnySource::open(&trace)?;
        workload = trace.clone();
        let mut ops: Vec<TraceOp> = Vec::with_capacity(chunk);
        while source.read_chunk(&mut ops, chunk)? > 0 {
            refs.clear();
            refs.extend(ops.iter().filter_map(TraceOp::mem_ref));
            model.run_refs(&refs);
        }
    }
    let elapsed = start.elapsed();
    let stats = model.stats();

    let name = cfg.name.clone().unwrap_or_else(|| path.to_owned());
    let mut report = Report::new(format!("run: {name} — {}", model.describe()))
        .param("config", path)
        .param(
            "workload",
            if trace.is_empty() { &workload } else { &trace },
        );
    for t in stats_tables(&stats) {
        report = report.table(t);
    }
    let melem_s = stats.demand.accesses as f64 / elapsed.as_secs_f64() / 1e6;
    Ok(report.note(format!(
        "replayed {} references from {workload} in {:.1} ms ({melem_s:.1} Melem/s)",
        stats.demand.accesses,
        elapsed.as_secs_f64() * 1e3
    )))
}

/// One grid cell's result: computed, restored from the journal, or
/// failed (config rot or a panic mid-replay).
enum Cell {
    Done(ModelStats),
    Failed(String),
}

/// Replays one freshly built model under panic isolation and returns
/// its outcome.
fn replay_cell(
    a: &ExpArgs,
    trace: &str,
    chunk: usize,
    model: Box<dyn cac_sim::model::MemoryModel>,
) -> Result<ModelOutcome, DriverError> {
    let mut models = vec![model];
    let engine = Sweep::new().workers(1).chunk_ops(chunk);
    let mut outcomes = if trace.is_empty() {
        let bench = parse_benchmark(a.str("bench"))?;
        let ops = a.usize("ops")?;
        let seed = a.u64("seed")?;
        let gen = bench
            .generator(seed)
            .take(ops)
            .filter_map(|op| op.mem_ref());
        engine
            .run_source_isolated(&mut models, IterRefSource::new(gen))
            .unwrap_or_else(|e| match e {})
    } else {
        let source = AnySource::open(trace)?;
        engine.run_source_isolated(&mut models, source)?
    };
    Ok(outcomes.remove(0))
}

/// The fault-tolerant, checkpointable config-grid path of `cac run`.
///
/// Every cell is keyed `<config-path>@<config-content-hash>` so editing
/// a config invalidates exactly that cell, and the journal is bound to
/// a workload fingerprint so resuming against a different trace or
/// synthetic workload is refused. The report deliberately contains no
/// timing: a resumed run must render byte-identically to an
/// uninterrupted one.
fn run_grid(a: &ExpArgs, paths: &[String]) -> Result<Report, DriverError> {
    let chunk = a.usize("chunk")?.max(1);
    let trace = a.str("trace").to_owned();
    let workload = if trace.is_empty() {
        let bench = parse_benchmark(a.str("bench"))?;
        format!(
            "{} x{} (seed {})",
            bench.name(),
            a.usize("ops")?,
            a.u64("seed")?
        )
    } else {
        trace.clone()
    };
    let fp = fingerprint(&["cac run", &workload]);
    let checkpoint = a.str("checkpoint").to_owned();
    let mut journal = if checkpoint.is_empty() {
        None
    } else {
        Some(
            Journal::load(Path::new(&checkpoint), fp)
                .map_err(|e| DriverError::Input(e.to_string()))?,
        )
    };

    let mut cells: Vec<(String, Cell)> = Vec::new();
    for path in paths {
        // The cell key hashes the config *content*, so an edited config
        // recomputes while untouched siblings restore from the journal.
        let key = match std::fs::read(path) {
            Ok(bytes) => {
                let hex: String = format!("{:016x}", fingerprint_bytes(&bytes));
                format!("{path}@{hex}")
            }
            Err(e) => {
                cells.push((
                    path.clone(),
                    Cell::Failed(format!("cannot read config: {e}")),
                ));
                continue;
            }
        };
        if let Some(stats) = journal.as_ref().and_then(|j| j.get(&key)) {
            cells.push((path.clone(), Cell::Done(stats.clone())));
            continue;
        }
        let model = match SimConfig::load(path).and_then(|c| c.build()) {
            Ok(m) => m,
            Err(e) => {
                cells.push((path.clone(), Cell::Failed(e.to_string())));
                continue;
            }
        };
        match replay_cell(a, &trace, chunk, model)? {
            ModelOutcome::Completed(stats) => {
                if let Some(j) = journal.as_mut() {
                    j.record(&key, &stats);
                    j.save(Path::new(&checkpoint))
                        .map_err(|e| DriverError::Input(e.to_string()))?;
                }
                cells.push((path.clone(), Cell::Done(stats)));
            }
            ModelOutcome::Failed { reason } => {
                cells.push((path.clone(), Cell::Failed(reason)));
            }
            // `cac run` sets no sweep budget, so cancellation cannot
            // happen here; treat it defensively as a failure row.
            ModelOutcome::Cancelled { refs_replayed } => {
                cells.push((
                    path.clone(),
                    Cell::Failed(format!("cancelled after {refs_replayed} refs")),
                ));
            }
        }
    }

    let mut table = Table::new(
        "config grid",
        &["config", "status", "accesses", "misses", "miss%", "detail"],
    );
    let mut failures = 0u64;
    for (path, cell) in &cells {
        match cell {
            Cell::Done(stats) => {
                let d = stats.demand;
                table.push_row(vec![
                    Value::s(path.clone()),
                    Value::s("ok"),
                    Value::u(d.accesses),
                    Value::u(d.misses),
                    Value::f(d.miss_ratio() * 100.0, 3),
                    Value::s(""),
                ]);
            }
            Cell::Failed(reason) => {
                failures += 1;
                table.push_row(vec![
                    Value::s(path.clone()),
                    Value::s("FAILED"),
                    Value::u(0),
                    Value::u(0),
                    Value::f(0.0, 3),
                    Value::s(reason.clone()),
                ]);
            }
        }
    }
    // Note no checkpoint-path echo and no timing: the report of a
    // resumed run must be byte-identical to an uninterrupted one,
    // whatever journal file carried it there.
    let mut report = Report::new(format!("run: {} config(s) against {workload}", paths.len()))
        .param("config", a.str("config"))
        .param("workload", &workload)
        .table(table)
        .flag_failures(failures);
    if failures > 0 {
        report = report.note(format!(
            "{failures} of {} cell(s) failed; their rows carry the reason and \
             the healthy cells are unaffected",
            paths.len()
        ));
    }
    Ok(report)
}

/// FNV-1a over raw bytes, for config-content cell keys.
fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(super) fn validate(a: &ExpArgs) -> Result<Report, DriverError> {
    let files = a.list("files");
    if files.is_empty() {
        return Err(DriverError::Usage(
            "usage: cac config validate <file.toml> [<file.toml> ...]".into(),
        ));
    }
    let mut table = Table::new("config validation", &["file", "status", "detail"]);
    let mut failures: Vec<String> = Vec::new();
    for f in &files {
        match SimConfig::load(f).and_then(|c| c.build()) {
            Ok(model) => {
                table.push_row(vec![
                    Value::s(*f),
                    Value::s("ok"),
                    Value::s(model.describe()),
                ]);
            }
            Err(e) => {
                failures.push(format!("{f}: {e}"));
                table.push_row(vec![
                    Value::s(*f),
                    Value::s("INVALID"),
                    Value::s(e.to_string()),
                ]);
            }
        }
    }
    if !failures.is_empty() {
        return Err(DriverError::Failed(format!(
            "{} of {} config(s) invalid:\n  {}",
            failures.len(),
            files.len(),
            failures.join("\n  ")
        )));
    }
    Ok(
        Report::new(format!("config validate: {} file(s) ok", files.len()))
            .param("files", files.join(" "))
            .table(table),
    )
}

//! Declarative-config tools: `cac run` and `cac config validate`.
//!
//! `cac run --config <file.toml>` is the universal experiment: build
//! *any* cache organization from a [`SimConfig`] description and replay
//! *any* trace against it — an on-disk trace file (binary or text,
//! auto-detected) or a synthetic workload model. Every §2.1/§4
//! organization of the paper's comparison matrix ships as a config
//! under `examples/*.toml`; `cac config validate` keeps those files
//! building (CI runs it, so a shipped config can never rot).

use super::common::parse_benchmark;
use super::tools::AnySource;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_sim::model::ModelStats;
use cac_sim::SimConfig;
use cac_trace::io::ChunkSource;
use cac_trace::{MemRef, TraceOp};
use std::time::Instant;

/// Renders a [`ModelStats`] into report tables: the demand stream, the
/// per-component breakdown, and any organization-specific counters.
fn stats_tables(stats: &ModelStats) -> Vec<Table> {
    let mut tables = Vec::new();
    let d = stats.demand;
    tables.push(
        Table::new("demand stream", &["counter", "value"])
            .row(vec![Value::s("accesses"), Value::u(d.accesses)])
            .row(vec![Value::s("reads"), Value::u(d.reads)])
            .row(vec![Value::s("writes"), Value::u(d.writes)])
            .row(vec![Value::s("hits"), Value::u(d.hits)])
            .row(vec![Value::s("misses"), Value::u(d.misses)])
            .row(vec![
                Value::s("miss ratio %"),
                Value::f(d.miss_ratio() * 100.0, 3),
            ])
            .row(vec![
                Value::s("read miss ratio %"),
                Value::f(d.read_miss_ratio() * 100.0, 3),
            ]),
    );
    if stats.components.len() > 1 || stats.components.first().is_some_and(|c| c.stats != d) {
        let mut t = Table::new(
            "components",
            &[
                "component",
                "accesses",
                "hits",
                "misses",
                "miss%",
                "evictions",
                "writebacks",
                "invalidations",
            ],
        );
        for c in &stats.components {
            t.push_row(vec![
                Value::s(c.name.clone()),
                Value::u(c.stats.accesses),
                Value::u(c.stats.hits),
                Value::u(c.stats.misses),
                Value::f(c.stats.miss_ratio() * 100.0, 3),
                Value::u(c.stats.evictions),
                Value::u(c.stats.writebacks),
                Value::u(c.stats.invalidations),
            ]);
        }
        tables.push(t);
    }
    if !stats.extras.is_empty() {
        let mut t = Table::new("organization counters", &["counter", "value"]);
        for (name, v) in &stats.extras {
            t.push_row(vec![Value::s(name.clone()), Value::u(*v)]);
        }
        tables.push(t);
    }
    tables
}

pub(super) fn run(a: &ExpArgs) -> Result<Report, DriverError> {
    let path = a.str("config");
    if path.is_empty() {
        return Err(DriverError::Usage(
            "--config is required (a TOML model description; see examples/*.toml)".into(),
        ));
    }
    let chunk = a.usize("chunk")?.max(1);
    let cfg = SimConfig::load(path)?;
    let mut model = cfg.build()?;

    let trace = a.str("trace").to_owned();
    let mut refs: Vec<MemRef> = Vec::with_capacity(chunk);
    let start = Instant::now();
    let workload: String;
    if trace.is_empty() {
        let bench = parse_benchmark(a.str("bench"))?;
        let ops = a.usize("ops")?;
        let seed = a.u64("seed")?;
        workload = format!("{} x{ops} (seed {seed})", bench.name());
        let mut gen = bench.generator(seed).take(ops);
        loop {
            refs.clear();
            refs.extend((&mut gen).filter_map(|op| op.mem_ref()).take(chunk));
            if refs.is_empty() {
                break;
            }
            model.run_refs(&refs);
        }
    } else {
        let mut source = AnySource::open(&trace)?;
        workload = trace.clone();
        let mut ops: Vec<TraceOp> = Vec::with_capacity(chunk);
        while source.read_chunk(&mut ops, chunk)? > 0 {
            refs.clear();
            refs.extend(ops.iter().filter_map(TraceOp::mem_ref));
            model.run_refs(&refs);
        }
    }
    let elapsed = start.elapsed();
    let stats = model.stats();

    let name = cfg.name.clone().unwrap_or_else(|| path.to_owned());
    let mut report = Report::new(format!("run: {name} — {}", model.describe()))
        .param("config", path)
        .param(
            "workload",
            if trace.is_empty() { &workload } else { &trace },
        );
    for t in stats_tables(&stats) {
        report = report.table(t);
    }
    let melem_s = stats.demand.accesses as f64 / elapsed.as_secs_f64() / 1e6;
    Ok(report.note(format!(
        "replayed {} references from {workload} in {:.1} ms ({melem_s:.1} Melem/s)",
        stats.demand.accesses,
        elapsed.as_secs_f64() * 1e3
    )))
}

pub(super) fn validate(a: &ExpArgs) -> Result<Report, DriverError> {
    let files = a.list("files");
    if files.is_empty() {
        return Err(DriverError::Usage(
            "usage: cac config validate <file.toml> [<file.toml> ...]".into(),
        ));
    }
    let mut table = Table::new("config validation", &["file", "status", "detail"]);
    let mut failures: Vec<String> = Vec::new();
    for f in &files {
        match SimConfig::load(f).and_then(|c| c.build()) {
            Ok(model) => {
                table.push_row(vec![
                    Value::s(*f),
                    Value::s("ok"),
                    Value::s(model.describe()),
                ]);
            }
            Err(e) => {
                failures.push(format!("{f}: {e}"));
                table.push_row(vec![
                    Value::s(*f),
                    Value::s("INVALID"),
                    Value::s(e.to_string()),
                ]);
            }
        }
    }
    if !failures.is_empty() {
        return Err(DriverError::Failed(format!(
            "{} of {} config(s) invalid:\n  {}",
            failures.len(),
            files.len(),
            failures.join("\n  ")
        )));
    }
    Ok(
        Report::new(format!("config validate: {} file(s) ok", files.len()))
            .param("files", files.join(" "))
            .table(table),
    )
}

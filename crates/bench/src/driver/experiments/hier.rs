//! Two-level virtual-real hierarchy studies: `cac holes`,
//! `cac option2`, `cac coherency`, `cac ablation-l2-index`.
//!
//! These exercise the §3.1–§3.3 machinery: the analytical hole model
//! `P_H = (2^{m1} − 1)/2^{m2}` against simulation, the page-size-aware
//! dynamic index switching of option 2, external coherency
//! invalidations on a snooping bus, and an ablation over the L2 index
//! function.

use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map;
use cac_core::holes::HoleModel;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::coherence::SnoopingBus;
use cac_sim::hierarchy::TwoLevelHierarchy;
use cac_sim::pagesize::{DynamicIndexCache, IndexMode, Segment};
use cac_sim::stats::CacheStats;
use cac_sim::vm::PageMapper;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;

pub(super) fn holes(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;

    // Configurations: the worked example of the model (direct-mapped
    // 8KB/256KB, P_H = 0.031), and the paper's simulated setup (8KB 2-way
    // skewed I-Poly L1 over a 1MB 2-way conventionally-indexed L2).
    let configs: [(&str, CacheGeometry, IndexSpec, CacheGeometry, IndexSpec); 2] = [
        (
            "worked example: L1 8KB DM I-Poly / L2 256KB DM I-Poly",
            CacheGeometry::new(8 * 1024, 32, 1).expect("geometry"),
            IndexSpec::ipoly_skewed(),
            CacheGeometry::new(256 * 1024, 32, 1).expect("geometry"),
            IndexSpec::ipoly(),
        ),
        (
            "paper simulation: L1 8KB 2-way skewed I-Poly / L2 1MB 2-way conventional",
            CacheGeometry::new(8 * 1024, 32, 2).expect("geometry"),
            IndexSpec::ipoly_skewed(),
            CacheGeometry::new(1024 * 1024, 32, 2).expect("geometry"),
            IndexSpec::modulo(),
        ),
    ];
    let mut report = Report::new(format!(
        "E6 / section 3.3: hole probability, analytical vs simulated ({ops} ops/benchmark)"
    ))
    .param("ops", ops);
    for (label, l1, l1_spec, l2, l2_spec) in configs {
        let model = HoleModel::from_geometries(l1, l2).expect("model");
        let mut table = Table::new(
            format!(
                "{label}: analytical P_H = {:.4} (paper's 8KB/256KB example: 0.031)",
                model.p_hole_per_l2_miss()
            ),
            &["bench", "L2 misses", "holes", "rate %", "model %"],
        );
        let mut worst: f64 = 0.0;
        let mut total_rate = 0.0;
        for b in SpecBenchmark::all() {
            let mut h = TwoLevelHierarchy::new(
                l1,
                l1_spec.clone(),
                l2,
                l2_spec.clone(),
                PageMapper::randomized(4096, 1 << 30, 42),
            )
            .expect("hierarchy");
            for r in mem_refs(b.generator(7).take(ops)) {
                h.access(r.addr, r.is_write);
            }
            let rate = h.hole_rate() * 100.0;
            worst = worst.max(rate);
            total_rate += rate;
            table.push_row(vec![
                Value::s(b.name()),
                Value::u(h.l2_stats().misses),
                Value::u(h.stats().holes_created),
                Value::f(rate, 3),
                Value::f(model.p_hole_per_l2_miss() * 100.0, 2),
            ]);
        }
        report = report.table(table).note(format!(
            "{label}: average measured rate {:.3}%, worst {:.3}%  \
             (paper, 1MB L2: avg < 0.1%, max 1.2%)",
            total_rate / 18.0,
            worst
        ));
    }
    Ok(report)
}

const BIG_BASE: u64 = 0;
const SMALL_BASE: u64 = 1 << 31;

/// One pass of the phase-A/C kernel: a 64-column walk with a 4KB leading
/// dimension inside the large-page segment — 64 blocks that all collide
/// on one set pair under conventional indexing but fit trivially (they
/// are only a quarter of capacity) under I-Poly.
fn column_kernel() -> impl Iterator<Item = u64> {
    (0..64u64).map(move |i| BIG_BASE + i * 4096)
}

/// One pass of the phase-B extra traffic: a sequential scan of 32 blocks
/// of the small-page segment (well-behaved under any index function).
fn small_segment_scan() -> impl Iterator<Item = u64> {
    (0..32u64).map(move |i| SMALL_BASE + i * 32)
}

#[derive(Debug, Clone, Copy)]
enum Policy {
    StaticConventional,
    StaticIPoly,
    Dynamic,
}

struct DynReport {
    modes: Vec<IndexMode>,
    flushes: u64,
    flushed_lines: u64,
    by_mode: (u64, u64),
}

struct PolicyRun {
    phases: Vec<CacheStats>,
    dynamic: Option<DynReport>,
}

/// Abstracts "a cache plus optional segment-map events" so one phase
/// script drives all three policies.
enum Sim {
    Plain(Box<Cache>),
    Dynamic(Box<DynamicIndexCache>),
}

impl Sim {
    fn read(&mut self, addr: u64) {
        match self {
            Sim::Plain(c) => {
                c.read(addr);
            }
            Sim::Dynamic(c) => {
                c.read(addr);
            }
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            Sim::Plain(c) => c.stats(),
            Sim::Dynamic(c) => c.stats(),
        }
    }
}

fn run_policy(policy: Policy, geom: CacheGeometry, passes: u64) -> PolicyRun {
    let mut sim = match policy {
        Policy::StaticConventional => Sim::Plain(Box::new(
            Cache::build(geom, IndexSpec::modulo()).expect("cache"),
        )),
        Policy::StaticIPoly => Sim::Plain(Box::new(
            Cache::build(geom, IndexSpec::ipoly_skewed()).expect("cache"),
        )),
        Policy::Dynamic => Sim::Dynamic(Box::new(
            DynamicIndexCache::new(geom, IndexSpec::ipoly_skewed(), 256 * 1024)
                .expect("controller"),
        )),
    };
    let mut phases = Vec::new();
    let mut modes = Vec::new();
    let mut checkpoint = CacheStats::default();
    let mut phase_end = |sim: &Sim, phases: &mut Vec<CacheStats>| {
        let total = sim.stats();
        phases.push(total - checkpoint);
        checkpoint = total;
    };

    // Phase A: large pages only.
    if let Sim::Dynamic(d) = &mut sim {
        d.map_segment(Segment::new(BIG_BASE, 1 << 28, 256 * 1024).expect("segment"))
            .expect("map");
        modes.push(d.mode());
    }
    for _ in 0..passes {
        for a in column_kernel() {
            sim.read(a);
        }
    }
    phase_end(&sim, &mut phases);

    // Phase B: a small-page segment appears (mmap of a 4KB-page file).
    if let Sim::Dynamic(d) = &mut sim {
        d.map_segment(Segment::new(SMALL_BASE, 1 << 20, 4096).expect("segment"))
            .expect("map");
        modes.push(d.mode());
    }
    for _ in 0..passes {
        for a in column_kernel() {
            sim.read(a);
        }
        for a in small_segment_scan() {
            sim.read(a);
        }
    }
    phase_end(&sim, &mut phases);

    // Phase C: the small segment goes away.
    if let Sim::Dynamic(d) = &mut sim {
        d.unmap_segment(SMALL_BASE);
        modes.push(d.mode());
    }
    for _ in 0..passes {
        for a in column_kernel() {
            sim.read(a);
        }
    }
    phase_end(&sim, &mut phases);

    let dynamic = match sim {
        Sim::Dynamic(d) => Some(DynReport {
            modes,
            flushes: d.flushes(),
            flushed_lines: d.flushed_lines(),
            by_mode: d.accesses_by_mode(),
        }),
        Sim::Plain(_) => None,
    };
    PolicyRun { phases, dynamic }
}

pub(super) fn option2(a: &ExpArgs) -> Result<Report, DriverError> {
    let passes = a.u64("passes")?;
    let geom = CacheGeometry::new(8 * 1024, 32, 2).expect("geometry");

    let policies = [
        Policy::StaticConventional,
        Policy::StaticIPoly,
        Policy::Dynamic,
    ];
    let runs = par_map(&policies, |&p| run_policy(p, geom, passes));

    let mut table = Table::new(
        "miss ratio (%) by phase",
        &["policy", "phase A", "phase B", "phase C"],
    );
    for (name, run) in [
        ("static conventional", &runs[0]),
        ("static I-Poly (option 3)", &runs[1]),
        ("dynamic (option 2)", &runs[2]),
    ] {
        let mut row = vec![Value::s(name)];
        row.extend(
            run.phases
                .iter()
                .map(|s| Value::f(s.miss_ratio() * 100.0, 2)),
        );
        table.push_row(row);
    }

    let dyn_report = runs[2].dynamic.as_ref().expect("dynamic policy report");
    let modes: Vec<&str> = dyn_report
        .modes
        .iter()
        .map(|m| match m {
            IndexMode::Conventional => "conv",
            IndexMode::IPoly => "ipoly",
        })
        .collect();
    let (conv_acc, ipoly_acc) = dyn_report.by_mode;
    Ok(Report::new(format!(
        "E14 / section 3.1 option 2: page-size-aware index switching \
         ({passes} passes/phase, {geom})"
    ))
    .param("passes", passes)
    .table(table)
    .note(format!(
        "dynamic controller: modes per phase = {modes:?}, flushes = {}, lines discarded = {}",
        dyn_report.flushes, dyn_report.flushed_lines
    ))
    .note(format!(
        "accesses by mode: conventional {conv_acc}, ipoly {ipoly_acc}"
    ))
    .note(
        "Shape check: option 2 matches I-Poly whenever it may (A, C) and conventional \
         when it must (B); the only extra cost is the flush at each transition.",
    ))
}

const NODES: usize = 4;
/// Shared region for the coherency study: 64 blocks at 1MB.
const SHARED_BASE: u64 = 1 << 20;

fn build_bus(l1_spec: IndexSpec) -> SnoopingBus {
    let nodes = (0..NODES)
        .map(|_| {
            TwoLevelHierarchy::new(
                CacheGeometry::new(8 * 1024, 32, 2).expect("geometry"),
                l1_spec.clone(),
                CacheGeometry::new(256 * 1024, 32, 2).expect("geometry"),
                IndexSpec::modulo(),
                PageMapper::identity(),
            )
            .expect("hierarchy")
        })
        .collect();
    SnoopingBus::new(nodes).expect("bus")
}

/// One round of traffic: every node sweeps its private column-strided
/// array (pathological under conventional indexing), then the round's
/// writer updates the shared region that all nodes then read.
fn run_bus(bus: &mut SnoopingBus, rounds: u64) {
    for round in 0..rounds {
        for node in 0..NODES {
            let base = (node as u64) << 32;
            for i in 0..64u64 {
                bus.read(node, base + i * 4096).unwrap();
            }
        }
        let writer = (round % NODES as u64) as usize;
        for blk in 0..16u64 {
            bus.write(writer, SHARED_BASE + blk * 32).unwrap();
        }
        for node in 0..NODES {
            for blk in 0..16u64 {
                bus.read(node, SHARED_BASE + blk * 32).unwrap();
            }
        }
    }
}

pub(super) fn coherency(a: &ExpArgs) -> Result<Report, DriverError> {
    let rounds = a.u64("rounds")?;
    let mut table = Table::new(
        "coherence holes by L1 indexing",
        &[
            "L1 indexing",
            "L1 miss%",
            "repl holes",
            "alias holes",
            "coher holes",
            "snoop hit%",
        ],
    );
    for (name, spec) in [
        ("conventional", IndexSpec::modulo()),
        ("skewed I-Poly", IndexSpec::ipoly_skewed()),
    ] {
        let mut bus = build_bus(spec);
        run_bus(&mut bus, rounds);
        if !bus.check_invariants() {
            return Err(DriverError::Failed("inclusion violated on the bus".into()));
        }

        let mut miss_pct = 0.0;
        let (mut repl, mut alias, mut coher) = (0u64, 0u64, 0u64);
        for i in 0..NODES {
            let node = bus.node(i).unwrap();
            miss_pct += node.l1_stats().miss_ratio() * 100.0 / NODES as f64;
            let s = node.stats();
            repl += s.holes_created;
            alias += s.alias_invalidations;
            coher += s.external_invalidations_l1;
        }
        table.push_row(vec![
            Value::s(name),
            Value::f(miss_pct, 2),
            Value::u(repl),
            Value::u(alias),
            Value::u(coher),
            Value::f(bus.stats().snoop_hit_rate() * 100.0, 1),
        ]);
    }

    Ok(Report::new(format!(
        "E15 / section 3.3 cause 3: coherence holes, {NODES} nodes, {rounds} rounds"
    ))
    .param("rounds", rounds)
    .table(table)
    .note(
        "Shape check: the two rows differ wildly in L1 miss ratio (the private \
         column walk is pathological under conventional indexing) but agree on \
         coherence holes — external invalidations depend on sharing, not on the \
         index function, which is why the paper sets them aside (section 3.3).",
    ))
}

pub(super) fn ablation_l2_index(a: &ExpArgs) -> Result<Report, DriverError> {
    let blocks = a.u64("blocks")?;
    let rounds = a.u64("rounds")?;

    let l1 = CacheGeometry::new(8 * 1024, 32, 1).expect("geometry");
    let l2 = CacheGeometry::new(256 * 1024, 32, 1).expect("geometry");
    // The §3.3 worked example: P_H = (2^m1 - 1)/2^m2 = 255/8192.
    let p_h = 255.0 / 8192.0;

    let mut table = Table::new(
        "hole rate vs L2 index function",
        &["L2 index", "L2 misses", "holes created", "hole rate"],
    );
    for (name, l2_spec) in [
        ("conventional", IndexSpec::modulo()),
        ("I-Poly", IndexSpec::ipoly()),
        ("XOR-fold", IndexSpec::xor()),
        ("random-table", IndexSpec::rand_table()),
    ] {
        let mut h = TwoLevelHierarchy::new(
            l1,
            IndexSpec::ipoly_skewed(),
            l2,
            l2_spec,
            PageMapper::randomized(4096, 1 << 28, 7),
        )
        .expect("hierarchy");
        for round in 0..rounds {
            for i in 0..blocks {
                h.read(i * 32 + (round % 2) * 8);
            }
        }
        if !h.check_inclusion() {
            return Err(DriverError::Failed("inclusion violated".into()));
        }
        table.push_row(vec![
            Value::s(name),
            Value::u(h.l2_stats().misses),
            Value::u(h.stats().holes_created),
            Value::f(h.hole_rate(), 4),
        ]);
    }

    Ok(Report::new(format!(
        "A6: hole rate vs L2 index function (8KB DM I-Poly L1 / 256KB DM L2, \
         {blocks}-block stream x {rounds} rounds, randomized 4KB pages)"
    ))
    .param("blocks", blocks)
    .param("rounds", rounds)
    .table(table)
    .note(format!(
        "analytical P_H (upper bound, assumes every L2 victim is L1-resident): {p_h:.4}"
    ))
    .note(
        "Finding: all rates sit within ~2x of the analytical estimate, but they are \
         NOT identical — the model's assumption that the L2 victim is L1-resident \
         with uniform probability 2^(m1-m2) holds well for a conventional L2 on \
         streaming traffic (victims are old) and degrades when a pseudo-random L2 \
         index makes eviction correlate with recency (hot hashed sets evict young \
         blocks, which are exactly the L1-resident ones). The absolute effect stays \
         negligible either way, which is what the paper's conclusion relies on.",
    ))
}

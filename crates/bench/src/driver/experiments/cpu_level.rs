//! Processor-level studies: `cac options`, `cac predictor`,
//! `cac ablation-predictor`, `cac ablation-related-ipc`.
//!
//! These drive the §4 out-of-order processor model, so they measure IPC
//! (not just miss ratio): the §3.1 translation-option comparison, the
//! §3.4 address-predictability claim, and two ablations around the
//! predictor table size and the related-work schemes' IPC.

use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map;
use crate::table2::TRACE_SLACK;
use crate::{arithmetic_mean, geometric_mean};
use cac_core::{AddressPredictor, IndexSpec};
use cac_cpu::{CpuConfig, Processor, TranslationModel};
use cac_trace::spec::SpecBenchmark;
use cac_trace::TraceOp;

struct Measurement {
    ipc: f64,
    miss: f64,
    tlb_miss: Option<f64>,
}

fn run_one(trace: &[TraceOp], config: CpuConfig, ops: u64) -> Measurement {
    let mut cpu = Processor::new(config).expect("valid configuration");
    let stats = cpu.run(trace.iter().copied(), ops);
    Measurement {
        ipc: stats.ipc(),
        miss: stats.load_miss_ratio_pct(),
        tlb_miss: stats.tlb.map(|t| t.miss_ratio() * 100.0),
    }
}

pub(super) fn options(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.u64("ops")?;

    type ConfigFactory = Box<dyn Fn() -> CpuConfig + Send + Sync>;
    let configs: Vec<(&str, ConfigFactory)> = vec![
        (
            "conv8",
            Box::new(|| CpuConfig::paper_baseline(IndexSpec::modulo()).unwrap()),
        ),
        (
            "opt1",
            Box::new(|| {
                CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
                    .unwrap()
                    .with_physical_indexing(TranslationModel::physically_indexed())
            }),
        ),
        (
            "opt3",
            Box::new(|| CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).unwrap()),
        ),
        (
            "opt3cp",
            Box::new(|| {
                CpuConfig::paper_baseline(IndexSpec::ipoly_skewed())
                    .unwrap()
                    .with_xor_in_critical_path()
            }),
        ),
    ];

    let mut ipcs: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut misses: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut tlb_misses: Vec<f64> = Vec::new();

    let mut table = Table::new(
        "translation options for an 8KB 2-way skewed I-Poly L1",
        &[
            "bench",
            "conv8 IPC",
            "opt1 IPC",
            "opt1 TLB%",
            "opt3 IPC",
            "opt3CP IPC",
            "opt3 miss%",
        ],
    );
    // One worker per benchmark, each driving all four processor
    // configurations (the per-benchmark CPU simulations dominate the
    // runtime of this experiment). The instruction stream is
    // materialised once per benchmark and shared by all four.
    let benches = SpecBenchmark::all();
    let per_bench: Vec<Vec<Measurement>> = par_map(&benches, |&b| {
        let trace: Vec<TraceOp> = b.generator(11).take(ops as usize + TRACE_SLACK).collect();
        configs
            .iter()
            .map(|(_, c)| run_one(&trace, c(), ops))
            .collect()
    });
    for (b, ms) in benches.iter().zip(per_bench) {
        for (i, m) in ms.iter().enumerate() {
            ipcs[i].push(m.ipc);
            misses[i].push(m.miss);
        }
        if let Some(t) = ms[1].tlb_miss {
            tlb_misses.push(t);
        }
        table.push_row(vec![
            Value::s(b.name()),
            Value::f(ms[0].ipc, 2),
            Value::f(ms[1].ipc, 2),
            Value::f(ms[1].tlb_miss.unwrap_or(0.0), 2),
            Value::f(ms[2].ipc, 2),
            Value::f(ms[3].ipc, 2),
            Value::f(ms[2].miss, 2),
        ]);
    }
    table.push_row(vec![
        Value::s("geo-mean"),
        Value::f(geometric_mean(&ipcs[0]), 2),
        Value::f(geometric_mean(&ipcs[1]), 2),
        Value::f(arithmetic_mean(&tlb_misses), 2),
        Value::f(geometric_mean(&ipcs[2]), 2),
        Value::f(geometric_mean(&ipcs[3]), 2),
        Value::f(arithmetic_mean(&misses[2]), 2),
    ]);

    let opt1_cost = (geometric_mean(&ipcs[2]) / geometric_mean(&ipcs[1]) - 1.0) * 100.0;
    let cp_cost = (geometric_mean(&ipcs[2]) / geometric_mean(&ipcs[3]) - 1.0) * 100.0;
    Ok(Report::new(format!(
        "E13 / section 3.1: translation options for an 8KB 2-way skewed I-Poly L1 \
         ({ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "virtual-real (opt 3) outperforms physical indexing (opt 1) by {opt1_cost:.1}% IPC \
         (the extra load stage + TLB walks); putting the XOR on the critical path instead \
         costs only {cp_cost:.1}% — the paper's argument for option 3 plus address prediction."
    )))
}

pub(super) fn predictor_accuracy(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let mut table = Table::new(
        "address-prediction rates (1K-entry table)",
        &["bench", "loads", "usable %", "precision %", "raw %"],
    );
    let mut usable = Vec::new();
    for b in SpecBenchmark::all() {
        let mut p = AddressPredictor::paper_default();
        let mut loads = 0u64;
        for op in b.generator(11).take(ops) {
            if op.is_load() {
                p.observe(op.pc, op.addr.expect("loads have addresses"));
                loads += 1;
            }
        }
        let s = p.stats();
        usable.push(s.usable_rate() * 100.0);
        table.push_row(vec![
            Value::s(b.name()),
            Value::u(loads),
            Value::f(s.usable_rate() * 100.0, 1),
            Value::f(s.confidence_precision() * 100.0, 1),
            Value::f(s.raw_rate() * 100.0, 1),
        ]);
    }
    Ok(Report::new(format!(
        "E9 / section 3.4: address-prediction rates ({ops} ops/benchmark, 1K-entry table)"
    ))
    .param("ops", ops)
    .table(table)
    .note(format!(
        "average usable prediction rate: {:.1}%  (paper, citing [9]: about 75%)",
        arithmetic_mean(&usable)
    )))
}

pub(super) fn ablation_predictor(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let mut table = Table::new(
        "predictor table size vs usable prediction rate",
        &["entries", "usable %", "note"],
    );
    for entries in [16usize, 64, 256, 1024, 4096] {
        let mut rates = Vec::new();
        for b in SpecBenchmark::all() {
            let mut p = AddressPredictor::new(entries).expect("power of two");
            for op in b.generator(11).take(ops) {
                if op.is_load() {
                    p.observe(op.pc, op.addr.expect("loads have addresses"));
                }
            }
            rates.push(p.stats().usable_rate() * 100.0);
        }
        let note = if entries == 1024 {
            "paper's choice"
        } else {
            ""
        };
        table.push_row(vec![
            Value::u(entries as u64),
            Value::f(arithmetic_mean(&rates), 2),
            Value::s(note),
        ]);
    }
    Ok(Report::new(format!(
        "A3: predictor table size vs usable prediction rate ({ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table))
}

pub(super) fn ablation_related_ipc(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.u64("ops")?;
    let bad = [
        SpecBenchmark::Tomcatv,
        SpecBenchmark::Swim,
        SpecBenchmark::Wave5,
    ];

    let mut table = Table::new(
        "IPC of the high-conflict programs under every placement scheme",
        &[
            "scheme",
            "tomcatv",
            "swim",
            "wave5",
            "geo-mean",
            "miss avg%",
        ],
    );
    for spec in IndexSpec::related_work_suite() {
        let mut ipcs = Vec::new();
        let mut misses = Vec::new();
        for b in bad {
            let config = CpuConfig::paper_baseline(spec.clone()).expect("config");
            let mut cpu = Processor::new(config).expect("processor");
            let stats = cpu.run(b.generator(11), ops);
            ipcs.push(stats.ipc());
            misses.push(stats.load_miss_ratio_pct());
        }
        table.push_row(vec![
            Value::s(spec.name()),
            Value::f(ipcs[0], 2),
            Value::f(ipcs[1], 2),
            Value::f(ipcs[2], 2),
            Value::f(geometric_mean(&ipcs), 2),
            Value::f(misses.iter().sum::<f64>() / misses.len() as f64, 2),
        ]);
    }
    Ok(Report::new(format!(
        "A4: IPC of the high-conflict programs under every placement scheme \
         (8KB 2-way L1, {ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table))
}

//! Placement-robustness ablations beyond the paper:
//! `cac ablation-poly`, `cac ablation-address-bits`,
//! `cac ablation-replacement`, `cac ablation-write-policy`.

use super::common::paper_l1;
use crate::arithmetic_mean;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map;
use cac_core::IndexSpec;
use cac_gf2::irreducible::{irreducibles, is_irreducible};
use cac_gf2::xor_tree::min_fan_in_poly;
use cac_gf2::Poly;
use cac_sim::cache::{Cache, CacheBuilder, WritePolicy};
use cac_sim::model::{MemoryModel, ModelStats};
use cac_sim::replacement::ReplacementPolicy;
use cac_sim::sweep::Sweep;
use cac_trace::kernels::mem_refs;
use cac_trace::spec::SpecBenchmark;
use cac_trace::MemRef;

/// Replays the whole suite against a list of cache builders, generating
/// each benchmark's workload ONCE and feeding every configuration from
/// it in a single pass. Returns per-benchmark, per-configuration
/// counter deltas (outer = benchmark, in `SpecBenchmark::all` order).
fn suite_sweep(builders: &[CacheBuilder], ops: usize, seed: u64) -> Vec<Vec<ModelStats>> {
    let benches = SpecBenchmark::all();
    par_map(&benches, |&b| {
        let refs: Vec<MemRef> = mem_refs(b.generator(seed).take(ops)).collect();
        let mut models: Vec<Box<dyn MemoryModel>> = builders
            .iter()
            .map(|builder| {
                Box::new(builder.clone().build().expect("cache")) as Box<dyn MemoryModel>
            })
            .collect();
        Sweep::new().workers(1).run_refs(&mut models, &refs)
    })
}

/// Suite-average load miss % for every placement spec, decode-once.
fn suite_miss_many(specs: &[IndexSpec], ops: usize, seed: u64) -> Vec<f64> {
    let builders: Vec<CacheBuilder> = specs
        .iter()
        .map(|s| Cache::builder(paper_l1()).index_spec(s.clone()))
        .collect();
    let per_bench = suite_sweep(&builders, ops, seed);
    (0..specs.len())
        .map(|si| {
            let pcts: Vec<f64> = per_bench
                .iter()
                .map(|ms| ms[si].demand.read_miss_ratio() * 100.0)
                .collect();
            arithmetic_mean(&pcts)
        })
        .collect()
}

pub(super) fn poly_choice(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let m = paper_l1().index_bits();

    // A reducible degree-7 polynomial with odd weight (so it is not
    // trivially bad): (x+1)(x^6+x+1) = x^7+x^6+x^2+1.
    let reducible = Poly::from_bits(0b1100_0101);
    if is_irreducible(reducible) {
        return Err(DriverError::Failed("reducible control poly drifted".into()));
    }
    let arbitrary_irreducible = irreducibles(m).last().expect("exists");

    let mut table = Table::new(
        "polynomial choice, suite-average load miss ratio (%)",
        &["polynomial", "P", "miss %"],
    );
    let rows = [
        ("min-fan-in irreducible", Some(min_fan_in_poly(m, 14))),
        ("last irreducible", Some(arbitrary_irreducible)),
        ("reducible (x+1)(x^6+x+1)", Some(reducible)),
        ("x^7 (= conventional)", Some(Poly::monomial(m))),
        ("conventional baseline", None),
    ];
    let specs: Vec<IndexSpec> = rows
        .iter()
        .map(|(_, poly)| match poly {
            Some(p) => IndexSpec::ipoly_with(vec![*p], 19),
            None => IndexSpec::modulo(),
        })
        .collect();
    for ((label, poly), miss) in rows.iter().zip(suite_miss_many(&specs, ops, 99)) {
        table.push_row(vec![
            Value::s(*label),
            Value::s(poly.map(|p| p.to_string()).unwrap_or_default()),
            Value::f(miss, 2),
        ]);
    }

    Ok(Report::new(format!(
        "A1: polynomial choice, suite-average load miss ratio (%), {ops} ops/benchmark"
    ))
    .param("ops", ops)
    .table(table))
}

pub(super) fn address_bits(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let mut table = Table::new(
        "I-Poly address-bit budget vs suite miss ratio",
        &["address bits", "miss %", "note"],
    );
    const BITS: [u32; 7] = [13, 14, 15, 16, 19, 24, 32];
    let mut specs: Vec<IndexSpec> = BITS
        .iter()
        .map(|&bits| IndexSpec::IPoly {
            skewed: true,
            address_bits: Some(bits),
            polys: None,
        })
        .collect();
    specs.push(IndexSpec::modulo());
    let misses = suite_miss_many(&specs, ops, 99);
    for (&bits, &miss) in BITS.iter().zip(&misses) {
        let note = match bits {
            13 => "v = m + 1, minimum",
            19 => "paper's choice",
            _ => "",
        };
        table.push_row(vec![
            Value::u(u64::from(bits)),
            Value::f(miss, 2),
            Value::s(note),
        ]);
    }
    table.push_row(vec![
        Value::s("conventional"),
        Value::f(misses[BITS.len()], 2),
        Value::s(""),
    ]);

    Ok(Report::new(format!(
        "A2: I-Poly address-bit budget vs suite miss ratio ({ops} ops/benchmark)"
    ))
    .param("ops", ops)
    .table(table)
    .note("m = 7 index bits + 5 offset bits; v = address_bits - 5")
    .note("only bits below a 4KB page boundary (12) are available without translation tricks"))
}

pub(super) fn replacement(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let geom = paper_l1();

    let mut table = Table::new(
        "replacement policy x placement, suite-average load miss %",
        &[
            "policy",
            "conv all",
            "conv bad-3",
            "ipoly-sk all",
            "ipoly-sk bad-3",
        ],
    );
    // All 6 (policy x placement) configurations replay each
    // benchmark's stream in one generate-once pass.
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
    ];
    let specs = [IndexSpec::modulo(), IndexSpec::ipoly_skewed()];
    let builders: Vec<CacheBuilder> = policies
        .iter()
        .flat_map(|&(_, policy)| {
            specs.iter().map(move |spec| {
                Cache::builder(geom)
                    .index_spec(spec.clone())
                    .replacement(policy)
                    .seed(42)
            })
        })
        .collect();
    let per_bench = suite_sweep(&builders, ops, 5);
    let benches = SpecBenchmark::all();
    for (pi, (pname, _)) in policies.iter().enumerate() {
        let mut cells = Vec::new();
        for si in 0..specs.len() {
            let ci = pi * specs.len() + si;
            let mut all = Vec::new();
            let mut bad = Vec::new();
            for (b, ms) in benches.iter().zip(&per_bench) {
                let m = ms[ci].demand.read_miss_ratio() * 100.0;
                all.push(m);
                if b.is_high_conflict() {
                    bad.push(m);
                }
            }
            cells.push(arithmetic_mean(&all));
            cells.push(arithmetic_mean(&bad));
        }
        table.push_row(vec![
            Value::s(*pname),
            Value::f(cells[0], 2),
            Value::f(cells[1], 2),
            Value::f(cells[2], 2),
            Value::f(cells[3], 2),
        ]);
    }

    Ok(Report::new(format!(
        "A7: replacement policy x placement, suite-average load miss % \
         ({ops} ops/benchmark, {geom})",
        geom = paper_l1()
    ))
    .param("ops", ops)
    .table(table)
    .note(
        "Reading guide: two effects separate the columns. On the conventional \
         cache, *random* replacement actually helps the pathological programs \
         (it breaks the deterministic thrash cycle LRU gets locked into), a \
         classic result. Under skewed I-Poly, conflicts are already randomised \
         and recency is informative again, so LRU is clearly best and the cheap \
         policies give back about 1.5 points. The per-line-timestamp LRU used \
         here is exactly what a skewed cache can implement (no per-set state \
         exists; see DESIGN.md).",
    ))
}

pub(super) fn write_policy(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.usize("ops")?;
    let geom = paper_l1();

    let mut table = Table::new(
        "write policy x placement, suite averages",
        &[
            "configuration",
            "load miss%",
            "write miss%",
            "writebacks/kop",
        ],
    );
    // All 4 (write policy x placement) configurations, generate-once.
    let policies = [
        (
            "write-through/no-allocate",
            WritePolicy::WriteThroughNoAllocate,
        ),
        ("write-back/allocate", WritePolicy::WriteBackAllocate),
    ];
    let specs = [
        ("conventional", IndexSpec::modulo()),
        ("skewed I-Poly", IndexSpec::ipoly_skewed()),
    ];
    let builders: Vec<CacheBuilder> = policies
        .iter()
        .flat_map(|&(_, policy)| {
            specs.iter().map(move |(_, spec)| {
                Cache::builder(geom)
                    .index_spec(spec.clone())
                    .write_policy(policy)
            })
        })
        .collect();
    let per_bench = suite_sweep(&builders, ops, 5);
    for (pi, (pname, _)) in policies.iter().enumerate() {
        for (si, (sname, _)) in specs.iter().enumerate() {
            let ci = pi * specs.len() + si;
            let mut load_miss = Vec::new();
            let mut write_miss = Vec::new();
            let mut wb_per_kop = Vec::new();
            for ms in &per_bench {
                let s = ms[ci].demand;
                load_miss.push(s.read_miss_ratio() * 100.0);
                if s.writes > 0 {
                    write_miss.push(s.write_misses as f64 / s.writes as f64 * 100.0);
                }
                wb_per_kop.push(s.writebacks as f64 / (s.accesses as f64 / 1000.0));
            }
            table.push_row(vec![
                Value::s(format!("{pname} + {sname}")),
                Value::f(arithmetic_mean(&load_miss), 2),
                Value::f(arithmetic_mean(&write_miss), 2),
                Value::f(arithmetic_mean(&wb_per_kop), 2),
            ]);
        }
    }

    Ok(Report::new(format!(
        "A5: write policy x placement, suite averages ({ops} ops/benchmark, {geom})",
        geom = paper_l1()
    ))
    .param("ops", ops)
    .table(table)
    .note(
        "Reading guide: write-allocate pulls store lines into the cache, which \
         amplifies conflicts under conventional indexing and is close to free under \
         I-Poly — placement robustness buys freedom in the write-policy choice too.",
    ))
}

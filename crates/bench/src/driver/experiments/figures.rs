//! E1 — **Figure 1** of the paper (`cac fig1`) and the generalised
//! stride sweep (`cac sweep`).
//!
//! For every stride `1 ≤ S < max_stride` (in 8-byte elements), a trace
//! of repeated sweeps over a 64-element vector drives 8KB 2-way caches
//! that differ only in their index function. The histogram of
//! per-stride miss ratios reproduces the paper's log-frequency bars;
//! the observations to check:
//!
//! * `a2` (modulo) and `a2-Hx-Sk` (skewed XOR) show pathological
//!   behaviour (miss ratio > 50%) on more than 6% of strides;
//! * `a2-Hp-Sk` (skewed I-Poly) exhibits no significant conflicts on
//!   any stride.

use super::common::{paper_l1, parse_schemes};
use crate::chart::grouped;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map_blocked;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::journal::{fingerprint, Journal};
use cac_sim::model::MemoryModel;
use cac_sim::sweep::Sweep;
use cac_trace::stride::VectorStride;
use cac_trace::MemRef;
use std::path::Path;

/// Runs a stride sweep through the decode-once engine: strides are
/// fanned out across the machine in blocks; each block builds its
/// scheme caches ONCE (LUT compilation dominates short-trace sweeps)
/// and, per stride, generates the trace ONCE, resets the models and
/// replays all of them in a single pass. Returns per-stride miss
/// ratios in scheme order.
fn stride_sweep(
    geom: CacheGeometry,
    schemes: &[IndexSpec],
    max_stride: u64,
    passes: u64,
) -> Vec<Vec<f64>> {
    par_map_blocked(1..max_stride, |block| {
        let mut models: Vec<Box<dyn MemoryModel>> = schemes
            .iter()
            .map(|spec| {
                Box::new(Cache::build(geom, spec.clone()).expect("validated scheme"))
                    as Box<dyn MemoryModel>
            })
            .collect();
        let engine = Sweep::new().workers(1);
        let mut refs: Vec<MemRef> = Vec::new();
        block
            .map(|stride| {
                refs.clear();
                refs.extend(VectorStride::paper_figure1(stride, passes));
                for m in models.iter_mut() {
                    m.reset();
                }
                engine
                    .run_refs(&mut models, &refs)
                    .iter()
                    .map(|s| s.demand.miss_ratio())
                    .collect()
            })
            .collect()
    })
}

/// Checkpoint-aware variant of [`stride_sweep`]: strides run
/// sequentially, each (stride, scheme) cell's stats are journaled, and
/// a resumed run replays only the missing cells. Deterministic replay
/// makes the resumed output byte-identical to an uninterrupted run.
fn stride_sweep_checkpointed(
    geom: CacheGeometry,
    schemes: &[IndexSpec],
    max_stride: u64,
    passes: u64,
    checkpoint: &str,
) -> Result<Vec<Vec<f64>>, DriverError> {
    let fp = fingerprint(&[
        "cac sweep",
        &schemes
            .iter()
            .map(IndexSpec::name)
            .collect::<Vec<_>>()
            .join(","),
        &geom.to_string(),
        &max_stride.to_string(),
        &passes.to_string(),
    ]);
    let path = Path::new(checkpoint);
    let mut journal = Journal::load(path, fp).map_err(|e| DriverError::Input(e.to_string()))?;

    let mut models: Vec<Box<dyn MemoryModel>> = schemes
        .iter()
        .map(|spec| {
            Box::new(Cache::build(geom, spec.clone()).expect("validated scheme"))
                as Box<dyn MemoryModel>
        })
        .collect();
    let engine = Sweep::new().workers(1);
    let mut refs: Vec<MemRef> = Vec::new();
    let mut out = Vec::with_capacity((max_stride - 1) as usize);
    let mut dirty = 0u64;
    for stride in 1..max_stride {
        let keys: Vec<String> = schemes
            .iter()
            .map(|s| format!("s{stride}/{}", s.name()))
            .collect();
        let cached: Option<Vec<f64>> = keys
            .iter()
            .map(|k| journal.get(k).map(|s| s.demand.miss_ratio()))
            .collect();
        if let Some(ratios) = cached {
            out.push(ratios);
            continue;
        }
        refs.clear();
        refs.extend(VectorStride::paper_figure1(stride, passes));
        for m in models.iter_mut() {
            m.reset();
        }
        let stats = engine.run_refs(&mut models, &refs);
        for (key, s) in keys.iter().zip(&stats) {
            journal.record(key, s);
        }
        dirty += 1;
        // Amortize the rewrite: a kill loses at most 64 strides.
        if dirty.is_multiple_of(64) {
            journal
                .save(path)
                .map_err(|e| DriverError::Input(e.to_string()))?;
        }
        out.push(stats.iter().map(|s| s.demand.miss_ratio()).collect());
    }
    if dirty > 0 {
        journal
            .save(path)
            .map_err(|e| DriverError::Input(e.to_string()))?;
    }
    Ok(out)
}

/// A labelled placement-scheme constructor.
type Scheme = (&'static str, fn() -> IndexSpec);

/// The four Figure-1 placement schemes, with the paper's labels.
const SCHEMES: [Scheme; 4] = [
    ("a2", IndexSpec::modulo),
    ("a2-Hx-Sk", IndexSpec::xor_skewed),
    ("a2-Hp", IndexSpec::ipoly),
    ("a2-Hp-Sk", IndexSpec::ipoly_skewed),
];

pub(super) fn fig1(a: &ExpArgs) -> Result<Report, DriverError> {
    let max_stride = a.u64("max-stride")?;
    let passes = a.u64("passes")?;
    if max_stride < 2 {
        return Err(DriverError::Usage("--max-stride must be at least 2".into()));
    }
    let geom = paper_l1();

    // Each stride is an independent simulation of all four schemes:
    // one trace generation and one replay pass per stride, with the
    // caches built once per stride block (see `stride_sweep`).
    let schemes: Vec<IndexSpec> = SCHEMES.iter().map(|(_, spec)| spec()).collect();
    let per_stride = stride_sweep(geom, &schemes, max_stride, passes);

    // histogram[scheme][bin]: bins of width 0.1 over (0,1].
    let mut histogram = [[0u64; 10]; 4];
    let mut pathological = [0u64; 4];
    let strides = per_stride.len() as u64;
    for ratios in &per_stride {
        for (si, &ratio) in ratios.iter().enumerate() {
            let bin = ((ratio * 10.0).ceil() as usize).clamp(1, 10) - 1;
            histogram[si][bin] += 1;
            if ratio > 0.5 {
                pathological[si] += 1;
            }
        }
    }

    let mut hist_table = Table::new(
        "miss-ratio histogram (strides per bin)",
        &["bin", "a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"],
    );
    for bin in 0..10 {
        let label = format!("{:.1}-{:.1}", bin as f64 / 10.0, (bin + 1) as f64 / 10.0);
        let mut row = vec![Value::s(label)];
        row.extend(histogram.iter().map(|h| Value::u(h[bin])));
        hist_table.push_row(row);
    }

    let mut path_table = Table::new(
        "pathological strides (miss ratio > 50%)",
        &["scheme", "count", "strides", "pct"],
    );
    for (si, (name, _)) in SCHEMES.iter().enumerate() {
        path_table.push_row(vec![
            Value::s(*name),
            Value::u(pathological[si]),
            Value::u(strides),
            Value::f(pathological[si] as f64 / strides as f64 * 100.0, 2),
        ]);
    }

    // The paper's log-frequency figure: columns = miss-ratio bins, one
    // bar per indexing scheme.
    let categories: Vec<String> = (0..10)
        .map(|b| format!("miss {:.1}-{:.1}", b as f64 / 10.0, (b + 1) as f64 / 10.0))
        .collect();
    let cat_refs: Vec<&str> = categories.iter().map(String::as_str).collect();
    let series: Vec<(&str, Vec<f64>)> = SCHEMES
        .iter()
        .enumerate()
        .map(|(si, (name, _))| (*name, histogram[si].iter().map(|&c| c as f64).collect()))
        .collect();
    let chart = grouped(
        "Figure 1: frequency distribution of per-stride miss ratios",
        &cat_refs,
        &series,
        true,
        48,
    );

    Ok(Report::new(format!(
        "E1 / Figure 1: miss-ratio distribution over strides 1..{max_stride} \
         ({passes} passes, 64x8B vector, {geom})"
    ))
    .param("max-stride", max_stride)
    .param("passes", passes)
    .table(hist_table)
    .table(path_table)
    .note("paper: a2 and a2-Hx-Sk > 6% of strides pathological; a2-Hp-Sk none")
    .text_block(chart))
}

pub(super) fn sweep(a: &ExpArgs) -> Result<Report, DriverError> {
    let schemes = parse_schemes(a.str("schemes"))?;
    let max_stride = a.u64("max-stride")?;
    let passes = a.u64("passes")?;
    if max_stride < 2 {
        return Err(DriverError::Usage("--max-stride must be at least 2".into()));
    }
    let geom = cac_core::CacheGeometry::new(a.u64("size")?, a.u64("line")?, a.u32("ways")?)?;
    // Validate every scheme against the geometry before the sweep.
    for s in &schemes {
        s.build(geom)?;
    }

    // As in fig1: one trace generation and one pass per stride, caches
    // built once per block. With --checkpoint the strides run
    // sequentially against a crash-safe journal instead.
    let raw = if a.is_set("checkpoint") {
        stride_sweep_checkpointed(geom, &schemes, max_stride, passes, a.str("checkpoint"))?
    } else {
        stride_sweep(geom, &schemes, max_stride, passes)
    };
    let per_stride: Vec<Vec<f64>> = raw
        .into_iter()
        .map(|ratios| ratios.into_iter().map(|r| r * 100.0).collect())
        .collect();

    let mut columns = vec!["stride".to_owned()];
    columns.extend(schemes.iter().map(|s| format!("{} miss%", s.name())));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("per-stride miss ratios", &col_refs);
    for (i, ratios) in per_stride.iter().enumerate() {
        let mut row = vec![Value::u(i as u64 + 1)];
        row.extend(ratios.iter().map(|&r| Value::f(r, 2)));
        table.push_row(row);
    }

    Ok(Report::new(format!(
        "stride sweep: {} on {geom}, strides 1..{max_stride}, {passes} passes",
        schemes
            .iter()
            .map(IndexSpec::name)
            .collect::<Vec<_>>()
            .join("+")
    ))
    .param("schemes", a.str("schemes"))
    .param("max-stride", max_stride)
    .param("passes", passes)
    .table(table))
}

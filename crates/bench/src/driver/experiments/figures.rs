//! E1 — **Figure 1** of the paper (`cac fig1`) and the generalised
//! stride sweep (`cac sweep`).
//!
//! For every stride `1 ≤ S < max_stride` (in 8-byte elements), a trace
//! of repeated sweeps over a 64-element vector drives 8KB 2-way caches
//! that differ only in their index function. The histogram of
//! per-stride miss ratios reproduces the paper's log-frequency bars;
//! the observations to check:
//!
//! * `a2` (modulo) and `a2-Hx-Sk` (skewed XOR) show pathological
//!   behaviour (miss ratio > 50%) on more than 6% of strides;
//! * `a2-Hp-Sk` (skewed I-Poly) exhibits no significant conflicts on
//!   any stride.

use super::common::{paper_l1, parse_schemes};
use crate::chart::grouped;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::parallel::par_map_blocked;
use cac_core::{CacheGeometry, IndexSpec};
use cac_sim::cache::Cache;
use cac_sim::journal::{fingerprint, Journal};
use cac_sim::model::MemoryModel;
use cac_sim::sweep::Sweep;
use cac_trace::stride::VectorStride;
use cac_trace::MemRef;
use std::path::Path;

/// Runs a stride sweep through the decode-once engine: strides are
/// fanned out across the machine in blocks; each block builds its
/// scheme caches ONCE (LUT compilation dominates short-trace sweeps)
/// and, per stride, generates the trace ONCE, resets the models and
/// replays all of them in a single pass. Returns per-stride miss
/// ratios in scheme order.
fn stride_sweep(
    geom: CacheGeometry,
    schemes: &[IndexSpec],
    max_stride: u64,
    passes: u64,
) -> Vec<Vec<f64>> {
    par_map_blocked(1..max_stride, |block| {
        let mut models: Vec<Box<dyn MemoryModel>> = schemes
            .iter()
            .map(|spec| {
                Box::new(Cache::build(geom, spec.clone()).expect("validated scheme"))
                    as Box<dyn MemoryModel>
            })
            .collect();
        let engine = Sweep::new().workers(1);
        let mut refs: Vec<MemRef> = Vec::new();
        block
            .map(|stride| {
                refs.clear();
                refs.extend(VectorStride::paper_figure1(stride, passes));
                for m in models.iter_mut() {
                    m.reset();
                }
                engine
                    .run_refs(&mut models, &refs)
                    .iter()
                    .map(|s| s.demand.miss_ratio())
                    .collect()
            })
            .collect()
    })
}

/// Checkpoint-aware variant of [`stride_sweep`]: strides run
/// sequentially, each (stride, scheme) cell's stats are journaled, and
/// a resumed run replays only the missing cells. Deterministic replay
/// makes the resumed output byte-identical to an uninterrupted run.
fn stride_sweep_checkpointed(
    geom: CacheGeometry,
    schemes: &[IndexSpec],
    max_stride: u64,
    passes: u64,
    checkpoint: &str,
) -> Result<Vec<Vec<f64>>, DriverError> {
    let fp = fingerprint(&[
        "cac sweep",
        &schemes
            .iter()
            .map(IndexSpec::name)
            .collect::<Vec<_>>()
            .join(","),
        &geom.to_string(),
        &max_stride.to_string(),
        &passes.to_string(),
    ]);
    let path = Path::new(checkpoint);
    let mut journal = Journal::load(path, fp).map_err(|e| DriverError::Input(e.to_string()))?;

    let mut models: Vec<Box<dyn MemoryModel>> = schemes
        .iter()
        .map(|spec| {
            Box::new(Cache::build(geom, spec.clone()).expect("validated scheme"))
                as Box<dyn MemoryModel>
        })
        .collect();
    let engine = Sweep::new().workers(1);
    let mut refs: Vec<MemRef> = Vec::new();
    let mut out = Vec::with_capacity((max_stride - 1) as usize);
    let mut dirty = 0u64;
    for stride in 1..max_stride {
        let keys: Vec<String> = schemes
            .iter()
            .map(|s| format!("s{stride}/{}", s.name()))
            .collect();
        let cached: Option<Vec<f64>> = keys
            .iter()
            .map(|k| journal.get(k).map(|s| s.demand.miss_ratio()))
            .collect();
        if let Some(ratios) = cached {
            out.push(ratios);
            continue;
        }
        refs.clear();
        refs.extend(VectorStride::paper_figure1(stride, passes));
        for m in models.iter_mut() {
            m.reset();
        }
        let stats = engine.run_refs(&mut models, &refs);
        for (key, s) in keys.iter().zip(&stats) {
            journal.record(key, s);
        }
        dirty += 1;
        // Amortize the rewrite: a kill loses at most 64 strides.
        if dirty.is_multiple_of(64) {
            journal
                .save(path)
                .map_err(|e| DriverError::Input(e.to_string()))?;
        }
        out.push(stats.iter().map(|s| s.demand.miss_ratio()).collect());
    }
    if dirty > 0 {
        journal
            .save(path)
            .map_err(|e| DriverError::Input(e.to_string()))?;
    }
    Ok(out)
}

/// A labelled placement-scheme constructor.
type Scheme = (&'static str, fn() -> IndexSpec);

/// The four Figure-1 placement schemes, with the paper's labels.
const SCHEMES: [Scheme; 4] = [
    ("a2", IndexSpec::modulo),
    ("a2-Hx-Sk", IndexSpec::xor_skewed),
    ("a2-Hp", IndexSpec::ipoly),
    ("a2-Hp-Sk", IndexSpec::ipoly_skewed),
];

pub(super) fn fig1(a: &ExpArgs) -> Result<Report, DriverError> {
    let max_stride = a.u64("max-stride")?;
    let passes = a.u64("passes")?;
    if max_stride < 2 {
        return Err(DriverError::Usage("--max-stride must be at least 2".into()));
    }
    let geom = paper_l1();

    // Each stride is an independent simulation of all four schemes:
    // one trace generation and one replay pass per stride, with the
    // caches built once per stride block (see `stride_sweep`).
    let schemes: Vec<IndexSpec> = SCHEMES.iter().map(|(_, spec)| spec()).collect();
    let per_stride = stride_sweep(geom, &schemes, max_stride, passes);

    // histogram[scheme][bin]: bins of width 0.1 over (0,1].
    let mut histogram = [[0u64; 10]; 4];
    let mut pathological = [0u64; 4];
    let strides = per_stride.len() as u64;
    for ratios in &per_stride {
        for (si, &ratio) in ratios.iter().enumerate() {
            let bin = ((ratio * 10.0).ceil() as usize).clamp(1, 10) - 1;
            histogram[si][bin] += 1;
            if ratio > 0.5 {
                pathological[si] += 1;
            }
        }
    }

    let mut hist_table = Table::new(
        "miss-ratio histogram (strides per bin)",
        &["bin", "a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"],
    );
    for bin in 0..10 {
        let label = format!("{:.1}-{:.1}", bin as f64 / 10.0, (bin + 1) as f64 / 10.0);
        let mut row = vec![Value::s(label)];
        row.extend(histogram.iter().map(|h| Value::u(h[bin])));
        hist_table.push_row(row);
    }

    let mut path_table = Table::new(
        "pathological strides (miss ratio > 50%)",
        &["scheme", "count", "strides", "pct"],
    );
    for (si, (name, _)) in SCHEMES.iter().enumerate() {
        path_table.push_row(vec![
            Value::s(*name),
            Value::u(pathological[si]),
            Value::u(strides),
            Value::f(pathological[si] as f64 / strides as f64 * 100.0, 2),
        ]);
    }

    // The paper's log-frequency figure: columns = miss-ratio bins, one
    // bar per indexing scheme.
    let categories: Vec<String> = (0..10)
        .map(|b| format!("miss {:.1}-{:.1}", b as f64 / 10.0, (b + 1) as f64 / 10.0))
        .collect();
    let cat_refs: Vec<&str> = categories.iter().map(String::as_str).collect();
    let series: Vec<(&str, Vec<f64>)> = SCHEMES
        .iter()
        .enumerate()
        .map(|(si, (name, _))| (*name, histogram[si].iter().map(|&c| c as f64).collect()))
        .collect();
    let chart = grouped(
        "Figure 1: frequency distribution of per-stride miss ratios",
        &cat_refs,
        &series,
        true,
        48,
    );

    Ok(Report::new(format!(
        "E1 / Figure 1: miss-ratio distribution over strides 1..{max_stride} \
         ({passes} passes, 64x8B vector, {geom})"
    ))
    .param("max-stride", max_stride)
    .param("passes", passes)
    .table(hist_table)
    .table(path_table)
    .note("paper: a2 and a2-Hx-Sk > 6% of strides pathological; a2-Hp-Sk none")
    .text_block(chart))
}

/// One cell of a (possibly pruned) sweep row: the simulated miss ratio,
/// or the analytic prediction a pruned cell was screened out on.
enum SweepCell {
    /// Simulated miss ratio (fraction, not percent).
    Simulated(f64),
    /// Skipped by the analytic screen; carries the predicted ratio.
    Pruned(f64),
}

/// Analytic screening variant of [`stride_sweep`]: per stride, one
/// stack-distance pass predicts every scheme's miss ratio (exactly for
/// modulus placement, via the binomial birthday model for hashed
/// placement), cells predicted worse than the stride's best by more
/// than `band` are skipped, and only the survivors replay. Survivor
/// cells are byte-identical to the unpruned sweep's (same engine, same
/// trace, same reset discipline).
///
/// With `checkpoint` set, every cell — simulated or pruned — lands in
/// the crash-safe journal (pruned cells via the shared
/// `analytic-pruned`/`predicted-bits` extras convention), and a resumed
/// run restores a stride only when all of its scheme cells are present.
/// The journal's fingerprint folds in the prune mode and band, so a
/// pruned journal can never silently continue a full sweep or a sweep
/// with a different band.
fn stride_sweep_pruned(
    geom: CacheGeometry,
    schemes: &[IndexSpec],
    max_stride: u64,
    passes: u64,
    band: f64,
    checkpoint: Option<&str>,
) -> Result<Vec<Vec<SweepCell>>, DriverError> {
    use cac_corpus::{pruned_stats, PRUNED_FLAG, PRUNED_PREDICTED};
    use cac_sim::analytic::{prune_dominated, AnalyticModel};
    use cac_sim::sweep::LruStackSweep;

    let mut journal = match checkpoint {
        Some(path) => {
            let fp = fingerprint(&[
                "cac sweep",
                &schemes
                    .iter()
                    .map(IndexSpec::name)
                    .collect::<Vec<_>>()
                    .join(","),
                &geom.to_string(),
                &max_stride.to_string(),
                &passes.to_string(),
                "prune=analytic",
                &format!("band={band}"),
            ]);
            let j = Journal::load(Path::new(path), fp)
                .map_err(|e| DriverError::Input(e.to_string()))?;
            Some((j, Path::new(path)))
        }
        None => None,
    };
    let restore = |stats: &cac_sim::model::ModelStats| {
        if stats.extra(PRUNED_FLAG) == Some(1) {
            SweepCell::Pruned(f64::from_bits(stats.extra(PRUNED_PREDICTED).unwrap_or(0)))
        } else {
            SweepCell::Simulated(stats.demand.miss_ratio())
        }
    };

    let mut models: Vec<Box<dyn MemoryModel>> = schemes
        .iter()
        .map(|spec| {
            Box::new(Cache::build(geom, spec.clone()).expect("validated scheme"))
                as Box<dyn MemoryModel>
        })
        .collect();
    let engine = Sweep::new().workers(1);
    let mut refs: Vec<MemRef> = Vec::new();
    let mut out = Vec::with_capacity((max_stride - 1) as usize);
    let mut dirty = 0u64;
    for stride in 1..max_stride {
        let keys: Vec<String> = schemes
            .iter()
            .map(|s| format!("s{stride}/{}", s.name()))
            .collect();
        if let Some((j, _)) = &journal {
            // Restore the stride only if every scheme cell resolved;
            // partial rows recompute whole (screening is per-stride).
            let cached: Option<Vec<SweepCell>> =
                keys.iter().map(|k| j.get(k).map(restore)).collect();
            if let Some(row) = cached {
                out.push(row);
                continue;
            }
        }
        refs.clear();
        refs.extend(VectorStride::paper_figure1(stride, passes));
        // One stack-distance pass covers both the exact modulus curve
        // and the fully-associative histogram the hashed-placement
        // model needs (the Figure-1 stride traces are read-only, so the
        // stack counts are exact).
        let mut stack =
            LruStackSweep::new(geom.block(), &[1, geom.num_sets()]).map_err(DriverError::from)?;
        for r in &refs {
            stack.observe(r.addr);
        }
        let model = AnalyticModel::from_sweep(&stack).expect("1-set family configured");
        let predicted: Vec<f64> = schemes
            .iter()
            .map(|s| {
                if s.name() == "modulo" {
                    stack
                        .miss_ratio(geom.num_sets(), geom.ways())
                        .expect("configured set count")
                } else {
                    model
                        .predict(geom.num_sets(), geom.ways())
                        .expect("refs observed")
                }
            })
            .collect();
        let keep = prune_dominated(&predicted, band);
        let mut row = Vec::with_capacity(schemes.len());
        for (i, (&kept, &p)) in keep.iter().zip(&predicted).enumerate() {
            if kept {
                let m = &mut models[i];
                m.reset();
                let stats = engine.run_refs(std::slice::from_mut(m), &refs);
                if let Some((j, _)) = &mut journal {
                    j.record(&keys[i], &stats[0]);
                }
                row.push(SweepCell::Simulated(stats[0].demand.miss_ratio()));
            } else {
                if let Some((j, _)) = &mut journal {
                    j.record(&keys[i], &pruned_stats(p));
                }
                row.push(SweepCell::Pruned(p));
            }
        }
        out.push(row);
        if let Some((j, path)) = &journal {
            dirty += 1;
            // Amortize the rewrite: a kill loses at most 64 strides.
            if dirty.is_multiple_of(64) {
                j.save(path)
                    .map_err(|e| DriverError::Input(e.to_string()))?;
            }
        }
    }
    if let Some((j, path)) = &journal {
        if dirty > 0 {
            j.save(path)
                .map_err(|e| DriverError::Input(e.to_string()))?;
        }
    }
    Ok(out)
}

pub(super) fn sweep(a: &ExpArgs) -> Result<Report, DriverError> {
    let schemes = parse_schemes(a.str("schemes"))?;
    let max_stride = a.u64("max-stride")?;
    let passes = a.u64("passes")?;
    if max_stride < 2 {
        return Err(DriverError::Usage("--max-stride must be at least 2".into()));
    }
    let prune = match a.str("prune") {
        "" => false,
        "analytic" => true,
        other => {
            return Err(DriverError::Usage(format!(
                "--prune supports only \"analytic\", got {other:?}"
            )))
        }
    };
    let band_pct = a.str("prune-band").parse::<f64>().map_err(|_| {
        DriverError::Usage(format!(
            "--prune-band expects a number, got {:?}",
            a.str("prune-band")
        ))
    })?;
    let geom = cac_core::CacheGeometry::new(a.u64("size")?, a.u64("line")?, a.u32("ways")?)?;
    // Validate every scheme against the geometry before the sweep.
    for s in &schemes {
        s.build(geom)?;
    }

    // As in fig1: one trace generation and one pass per stride, caches
    // built once per block. With --checkpoint the strides run
    // sequentially against a crash-safe journal instead; with --prune
    // the analytic tier screens cells before any replay. The two
    // compose: a pruned checkpointed sweep journals pruned cells
    // alongside simulated ones and resumes either kind.
    let cells: Vec<Vec<SweepCell>> = if prune {
        let checkpoint = a.is_set("checkpoint").then(|| a.str("checkpoint"));
        stride_sweep_pruned(
            geom,
            &schemes,
            max_stride,
            passes,
            band_pct / 100.0,
            checkpoint,
        )?
    } else {
        let raw = if a.is_set("checkpoint") {
            stride_sweep_checkpointed(geom, &schemes, max_stride, passes, a.str("checkpoint"))?
        } else {
            stride_sweep(geom, &schemes, max_stride, passes)
        };
        raw.into_iter()
            .map(|row| row.into_iter().map(SweepCell::Simulated).collect())
            .collect()
    };

    let mut columns = vec!["stride".to_owned()];
    columns.extend(schemes.iter().map(|s| format!("{} miss%", s.name())));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new("per-stride miss ratios", &col_refs);
    let mut pruned_cells = 0u64;
    let mut total_cells = 0u64;
    for (i, row_cells) in cells.iter().enumerate() {
        let mut row = vec![Value::u(i as u64 + 1)];
        for cell in row_cells {
            total_cells += 1;
            row.push(match cell {
                SweepCell::Simulated(r) => Value::f(r * 100.0, 2),
                SweepCell::Pruned(p) => {
                    pruned_cells += 1;
                    Value::s(format!("PRUNED(predicted={:.2})", p * 100.0))
                }
            });
        }
        table.push_row(row);
    }

    let mut report = Report::new(format!(
        "stride sweep: {} on {geom}, strides 1..{max_stride}, {passes} passes",
        schemes
            .iter()
            .map(IndexSpec::name)
            .collect::<Vec<_>>()
            .join("+")
    ))
    .param("schemes", a.str("schemes"))
    .param("max-stride", max_stride)
    .param("passes", passes)
    .table(table);
    if prune {
        report = report.note(format!(
            "analytic screen: {pruned_cells} of {total_cells} cells pruned \
             (predicted worse than the stride's best by more than \
             {band_pct:.1} miss-% points) and never replayed"
        ));
    }
    Ok(report)
}

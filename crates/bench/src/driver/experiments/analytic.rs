//! The analytic screening tier: `cac analytic predict` and
//! `cac analytic validate`.
//!
//! `predict` runs **one** stack-distance traversal of a workload (a
//! synthetic benchmark or a trace file) and reads the whole
//! size × associativity grid off the closed-form
//! [`cac_sim::analytic`] models — no replay at all. `validate` is the
//! tier's armor: it replays the same workload through each given
//! config's **primary cache** (geometry + placement — the exact cell
//! the sweep pruner screens), compares prediction against that ground
//! truth per config, and **exits 1** when the mean absolute error
//! exceeds the documented bound — the same equivalence-suite pattern
//! that protects every other fast path in this repo.

use super::common::parse_benchmark;
use super::tools::AnySource;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_core::{parse_size, CacheGeometry};
use cac_sim::analytic::{birthday_collision_probability, expected_overflow_blocks, AnalyticModel};
use cac_sim::sweep::LruStackSweep;
use cac_sim::SimConfig;
use cac_trace::io::{RefSource, DEFAULT_CHUNK_OPS};
use cac_trace::kernels::mem_refs;
use cac_trace::MemRef;

/// Streams the workload's **loads** into a stack sweep: the trace file
/// when `trace` is set, the synthetic benchmark otherwise. Loads only,
/// matching `cac lru-curve` — a read-only stream keeps the
/// stack-distance counts exact for the paper's write-through L1.
fn observe_loads(a: &ExpArgs, sweep: &mut LruStackSweep) -> Result<(), DriverError> {
    if a.is_set("trace") {
        let mut source = AnySource::open(a.str("trace"))?;
        let mut buf: Vec<MemRef> = Vec::with_capacity(DEFAULT_CHUNK_OPS);
        while source.read_ref_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
            for r in &buf {
                if !r.is_write {
                    sweep.observe(r.addr);
                }
            }
        }
    } else {
        let b = parse_benchmark(a.str("bench"))?;
        let ops = a.usize("ops")?;
        for r in mem_refs(b.generator(5).take(ops)) {
            if !r.is_write {
                sweep.observe(r.addr);
            }
        }
    }
    if sweep.refs_seen() == 0 {
        return Err(DriverError::Input("the workload contains no loads".into()));
    }
    Ok(())
}

/// Parses a comma-separated list with an element parser, mapping
/// failures to usage errors.
fn parse_csv<T>(
    csv: &str,
    what: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, DriverError> {
    let items: Vec<T> = csv
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).ok_or_else(|| DriverError::Usage(format!("invalid {what} value {s:?}"))))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(DriverError::Usage(format!("no {what} values given")));
    }
    Ok(items)
}

/// Renders a byte size with binary-unit suffixes for table labels.
fn format_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}MiB", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}KiB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// A report-ready "set sampling" table (k, refs, worst-case standard
/// error) so sampling caveats reach JSON/CSV consumers, not just the
/// text notes. `None` when the sweep is exact.
pub(super) fn sampling_table(sweep: &LruStackSweep) -> Option<Table> {
    let se = sweep.sampling_standard_error()?;
    Some(
        Table::new(
            "set sampling",
            &["k", "refs seen", "refs sampled", "worst-case SE (miss-%)"],
        )
        .row(vec![
            Value::u(sweep.sampling()),
            Value::u(sweep.refs_seen()),
            Value::u(sweep.refs_sampled()),
            Value::f(se * 100.0, 3),
        ]),
    )
}

pub(super) fn predict(a: &ExpArgs) -> Result<Report, DriverError> {
    let line = a.u64("line")?;
    let sizes = parse_csv(a.str("sizes"), "size", |s| parse_size(s).ok())?;
    let ways = parse_csv(a.str("ways"), "ways", |s| s.parse::<u32>().ok())?;

    // One fully-associative stack-distance traversal feeds every
    // prediction below.
    let mut sweep = LruStackSweep::new(line, &[1])?;
    observe_loads(a, &mut sweep)?;
    let model = AnalyticModel::from_sweep(&sweep).expect("1-set family configured");
    let footprint = model.footprint_blocks();

    let mut columns = vec!["size".to_owned()];
    columns.extend(ways.iter().map(|w| format!("{w}-way miss%")));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut grid = Table::new("predicted miss-ratio grid (hashed placement)", &col_refs);
    for &size in &sizes {
        let mut row = vec![Value::s(format_size(size))];
        for &w in &ways {
            let cell = geometry(size, line, w)
                .and_then(|g| model.predict(g.num_sets(), w).map(|r| r * 100.0));
            row.push(match cell {
                Some(pct) => Value::f(pct, 2),
                None => Value::s("-"),
            });
        }
        grid.push_row(row);
    }

    let mut bounds = Table::new(
        "birthday conflict bounds",
        &[
            "size",
            "ways",
            "sets",
            "footprint blocks",
            "load factor",
            "P(collision)",
            "expected overflow blocks",
        ],
    );
    for &size in &sizes {
        for &w in &ways {
            let Some(g) = geometry(size, line, w) else {
                continue;
            };
            bounds.push_row(vec![
                Value::s(format_size(size)),
                Value::u(u64::from(w)),
                Value::u(u64::from(g.num_sets())),
                Value::u(footprint),
                Value::f(g.load_factor(footprint), 3),
                Value::f(birthday_collision_probability(g.num_sets(), footprint), 4),
                Value::f(expected_overflow_blocks(g.num_sets(), w, footprint), 1),
            ]);
        }
    }

    let workload = if a.is_set("trace") {
        a.str("trace").to_owned()
    } else {
        format!("{} ({} ops)", a.str("bench"), a.str("ops"))
    };
    Ok(Report::new(format!(
        "analytic predictions: {} loads of {workload}, {line}B lines, no replay",
        sweep.refs_seen()
    ))
    .param("bench", a.str("bench"))
    .param("ops", a.str("ops"))
    .param("line", line)
    .param("sizes", a.str("sizes"))
    .param("ways", a.str("ways"))
    .param("trace", a.str("trace"))
    .table(grid)
    .table(bounds)
    .note(
        "model: an access at fully-associative stack depth d misses a (s, w) \
         hashed cache with probability P(Binomial(d, 1/s) >= w); exact for s = 1. \
         Validate against simulation with `cac analytic validate`.",
    ))
}

/// The grid geometry for one (size, ways) cell, or `None` when the cell
/// degenerates (ways * line > size or a non-power-of-two set count).
fn geometry(size: u64, line: u64, ways: u32) -> Option<CacheGeometry> {
    if ways == 0 || !size.is_multiple_of(line * u64::from(ways)) {
        return None;
    }
    CacheGeometry::new(size, line, ways).ok()
}

/// Materializes the workload's loads for validate, which needs the same
/// stream twice (stack sweeps and model replay).
fn collect_loads(a: &ExpArgs) -> Result<Vec<MemRef>, DriverError> {
    let mut loads: Vec<MemRef> = Vec::new();
    if a.is_set("trace") {
        let mut source = AnySource::open(a.str("trace"))?;
        let mut buf: Vec<MemRef> = Vec::with_capacity(DEFAULT_CHUNK_OPS);
        while source.read_ref_chunk(&mut buf, DEFAULT_CHUNK_OPS)? > 0 {
            loads.extend(buf.iter().filter(|r| !r.is_write));
        }
    } else {
        let b = parse_benchmark(a.str("bench"))?;
        let ops = a.usize("ops")?;
        loads.extend(mem_refs(b.generator(5).take(ops)).filter(|r| !r.is_write));
    }
    if loads.is_empty() {
        return Err(DriverError::Input("the workload contains no loads".into()));
    }
    Ok(loads)
}

/// One validated config: label, primary geometry/scheme, and the three
/// miss ratios (percent) — the analytic prediction, the simulated
/// primary cache it is gated against, and the full organization
/// (informational; sidecars and extra levels are out of the analytic
/// tier's scope).
struct ValidatedConfig {
    label: String,
    geometry: CacheGeometry,
    scheme: String,
    predicted: f64,
    primary: f64,
    organization: f64,
}

pub(super) fn validate(a: &ExpArgs) -> Result<Report, DriverError> {
    let paths = a.list("configs");
    if paths.is_empty() {
        return Err(DriverError::Usage(
            "analytic validate needs at least one config file".into(),
        ));
    }
    let bound_pct = a.str("bound").parse::<f64>().map_err(|_| {
        DriverError::Usage(format!(
            "--bound expects a number, got {:?}",
            a.str("bound")
        ))
    })?;
    let sample = a.u32("sample")?;

    // Load every config up front; configs without a cache array (the
    // poison fixture) cannot be predicted and are a usage error.
    let mut configs: Vec<(String, SimConfig, CacheGeometry, cac_core::IndexSpec)> = Vec::new();
    for path in &paths {
        let cfg = SimConfig::load(path).map_err(|e| DriverError::Input(e.to_string()))?;
        let geometry = cfg.primary_geometry().ok_or_else(|| {
            DriverError::Usage(format!("{path}: config has no cache geometry to predict"))
        })?;
        let index = cfg.primary_index().expect("geometry implies an index");
        let label = cfg.name.clone().unwrap_or_else(|| (*path).to_owned());
        configs.push((label, cfg, geometry, index));
    }

    let loads = collect_loads(a)?;

    // Ground truth: the primary cache array replayed under its actual
    // placement — exactly the (geometry, scheme) cell the analytic tier
    // claims to predict (and the pruner screens). The full organization
    // (sidecars, extra levels) replays alongside for the informational
    // column; one decode-once engine pass covers both model sets.
    let mut models: Vec<Box<dyn cac_sim::model::MemoryModel>> = Vec::new();
    for (_, cfg, g, index) in &configs {
        models.push(Box::new(
            cac_sim::cache::Cache::build(*g, index.clone())
                .map_err(|e| DriverError::Input(e.to_string()))?,
        ));
        models.push(cfg.build().map_err(|e| DriverError::Input(e.to_string()))?);
    }
    let stats = cac_sim::sweep::Sweep::new().run_refs(&mut models, &loads);
    let primary_sim: Vec<f64> = stats
        .iter()
        .step_by(2)
        .map(|s| s.demand.miss_ratio() * 100.0)
        .collect();
    let organization_sim: Vec<f64> = stats
        .iter()
        .skip(1)
        .step_by(2)
        .map(|s| s.demand.miss_ratio() * 100.0)
        .collect();

    // Predictions: one stack-distance traversal per distinct line size
    // covers the fully-associative histogram (the binomial model's
    // input) and the exact Mattson curves (the modulus estimator).
    let mut lines: Vec<u64> = configs.iter().map(|(_, _, g, _)| g.block()).collect();
    lines.sort_unstable();
    lines.dedup();
    let mut validated: Vec<ValidatedConfig> = Vec::new();
    let mut sampling: Option<Table> = None;
    let mut effective_bound = bound_pct;
    for &line in &lines {
        let mut set_counts: Vec<u32> = vec![1];
        set_counts.extend(
            configs
                .iter()
                .filter(|(_, _, g, _)| g.block() == line)
                .map(|(_, _, g, _)| g.num_sets()),
        );
        let mut sweep = LruStackSweep::new(line, &set_counts)?;
        if sample > 1 {
            sweep = sweep.with_set_sampling(sample)?;
        }
        for r in &loads {
            sweep.observe(r.addr);
        }
        if let Some(se) = sweep.sampling_standard_error() {
            // Sampling noise affects the predictions themselves; widen
            // the acceptance bound by the worst-case standard error.
            effective_bound = effective_bound.max(bound_pct + se * 100.0);
            if sampling.is_none() {
                sampling = sampling_table(&sweep);
            }
        }
        let model = AnalyticModel::from_sweep(&sweep).expect("1-set family configured");
        for (i, (label, _, g, index)) in configs.iter().enumerate() {
            if g.block() != line {
                continue;
            }
            // Modulus placement: the exact Mattson curve (stack
            // inclusion) IS the analytic estimator. Hashed placement:
            // the binomial birthday model.
            let predicted = if index.name() == "modulo" {
                sweep
                    .miss_ratio(g.num_sets(), g.ways())
                    .expect("configured set count")
            } else {
                model
                    .predict(g.num_sets(), g.ways())
                    .expect("refs observed")
            };
            validated.push(ValidatedConfig {
                label: label.clone(),
                geometry: *g,
                scheme: index.name().to_owned(),
                predicted: predicted * 100.0,
                primary: primary_sim[i],
                organization: organization_sim[i],
            });
        }
    }

    let mut per_config = Table::new(
        "model vs simulation",
        &[
            "config",
            "geometry",
            "scheme",
            "simulated miss%",
            "predicted miss%",
            "abs error",
            "organization miss%",
            "verdict",
        ],
    );
    let mut sum_err = 0.0f64;
    let mut max_err = 0.0f64;
    for v in &validated {
        let err = (v.predicted - v.primary).abs();
        sum_err += err;
        max_err = max_err.max(err);
        per_config.push_row(vec![
            Value::s(v.label.clone()),
            Value::s(v.geometry.to_string()),
            Value::s(v.scheme.clone()),
            Value::f(v.primary, 2),
            Value::f(v.predicted, 2),
            Value::f(err, 2),
            Value::f(v.organization, 2),
            Value::s(if err <= effective_bound {
                "ok"
            } else {
                "EXCEEDS"
            }),
        ]);
    }
    let mean_err = sum_err / validated.len() as f64;

    // Rank inversions: config pairs the model orders opposite to the
    // simulation by more than the bound — the failure mode that would
    // make dominance pruning unsound.
    let mut inversions = 0u64;
    let mut worst_gap = 0.0f64;
    for i in 0..validated.len() {
        for j in i + 1..validated.len() {
            let (a, b) = (&validated[i], &validated[j]);
            let sim_gap = (a.primary - b.primary).abs();
            let inverted = (a.predicted - b.predicted) * (a.primary - b.primary) < 0.0;
            if inverted && sim_gap > effective_bound {
                inversions += 1;
                worst_gap = worst_gap.max(sim_gap);
            }
        }
    }

    let summary = Table::new(
        "summary",
        &[
            "configs",
            "mean abs error",
            "max abs error",
            "bound",
            "rank inversions",
            "worst inversion gap",
            "loads",
            "verdict",
        ],
    )
    .row(vec![
        Value::u(validated.len() as u64),
        Value::f(mean_err, 3),
        Value::f(max_err, 3),
        Value::f(effective_bound, 2),
        Value::u(inversions),
        Value::f(worst_gap, 2),
        Value::u(loads.len() as u64),
        Value::s(if mean_err <= effective_bound {
            "PASS"
        } else {
            "FAIL"
        }),
    ]);

    let failed = u64::from(mean_err > effective_bound);
    let mut report = Report::new(format!(
        "analytic validation: {} configs, mean |error| {:.3} miss-% \
         (bound {:.2})",
        validated.len(),
        mean_err,
        effective_bound
    ))
    .param("configs", paths.join(","))
    .param("trace", a.str("trace"))
    .param("bench", a.str("bench"))
    .param("ops", a.str("ops"))
    .param("sample", sample)
    .param("bound", bound_pct)
    .table(per_config)
    .table(summary);
    if let Some(t) = sampling {
        report = report.table(t);
    }
    report = report.note(
        "ground truth (`simulated miss%`): the primary cache (geometry + \
         placement) replayed alone on the loads — the exact cell the sweep \
         pruner screens. Predicted: exact Mattson curve for modulus \
         placement, binomial birthday model for hashed placement. \
         `organization miss%` replays the full configured organization \
         (victim/stream sidecars, hierarchies) and is informational only: \
         sidecar and multi-level effects are outside the analytic tier's \
         scope. Rank inversions count config pairs the model orders opposite \
         to simulation by more than the bound.",
    );
    Ok(report.flag_failures(failed))
}

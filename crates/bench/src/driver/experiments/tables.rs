//! E2–E4 — the paper's Tables 1–3 (`cac table1`, `cac table2`,
//! `cac table3`).
//!
//! Table 1 is a configuration sanity harness; Tables 2 and 3 run the 18
//! SPEC95 workload models through the out-of-order processor under the
//! seven measured configurations (16KB/8KB conventional with and
//! without address prediction, skewed I-Poly with the XOR on and off
//! the critical path) and report IPC plus load miss ratio, next to the
//! paper's published rows.

use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use crate::table2::{run_all, summarize, Summary, Table2Row};
use cac_core::IndexSpec;
use cac_cpu::CpuConfig;

pub(super) fn table1(_a: &ExpArgs) -> Result<Report, DriverError> {
    let c = CpuConfig::paper_baseline(IndexSpec::ipoly_skewed()).expect("valid configuration");
    let units = Table::new(
        "functional units and instruction latency",
        &["Functional Unit", "Latency", "Repeat rate"],
    )
    .row(vec![
        Value::s("1 Simple Integer"),
        Value::s("1"),
        Value::s("1"),
    ])
    .row(vec![
        Value::s("1 Complex Integer"),
        Value::s("9/67"),
        Value::s("1/67"),
    ])
    .row(vec![
        Value::s("2 Effective Address"),
        Value::s("1"),
        Value::s("1"),
    ])
    .row(vec![Value::s("1 Simple FP"), Value::s("4"), Value::s("1")])
    .row(vec![
        Value::s("1 FP Multiplication"),
        Value::s("4"),
        Value::s("1"),
    ])
    .row(vec![
        Value::s("1 FP Div and SQR"),
        Value::s("16/35"),
        Value::s("16/35"),
    ]);

    if c.fetch_width != 4 || c.rob_entries != 32 || c.mshrs != 8 {
        return Err(DriverError::Failed(
            "paper baseline drifted from Table 1 / §4 parameters".into(),
        ));
    }
    Ok(
        Report::new("E2 / Table 1: functional units and instruction latency")
            .table(units)
            .note(format!(
                "processor: {}-way fetch/issue/commit, ROB {}, {}+{} physical registers",
                c.fetch_width, c.rob_entries, c.int_phys_regs, c.fp_phys_regs
            ))
            .note(format!(
                "memory: {} ports, {} MSHRs, {} L1, hit {} cycles, miss {} cycles, \
             bus {} cycles/line, BHT {} entries",
                c.mem_ports,
                c.mshrs,
                c.cache_geometry,
                c.hit_latency,
                c.miss_penalty,
                c.bus_cycles_per_line,
                c.bht_entries
            ))
            .note("all Table 1 / §4 parameters verified"),
    )
}

const TABLE2_COLUMNS: [&str; 10] = [
    "bench", "16K", "miss", "8K", "8K+p", "miss", "Hp", "miss", "HpCP", "+pred",
];

fn measured_row(label: &str, r: &Table2Row) -> Vec<Value> {
    vec![
        Value::s(label),
        Value::f(r.conv16_ipc, 2),
        Value::f(r.conv16_miss, 2),
        Value::f(r.conv8_ipc, 2),
        Value::f(r.conv8_ipc_pred, 2),
        Value::f(r.conv8_miss, 2),
        Value::f(r.ipoly_ipc, 2),
        Value::f(r.ipoly_miss, 2),
        Value::f(r.ipoly_cp_ipc, 2),
        Value::f(r.ipoly_cp_ipc_pred, 2),
    ]
}

fn summary_row(label: &str, s: &Summary) -> Vec<Value> {
    vec![
        Value::s(label),
        Value::f(s.conv16_ipc, 2),
        Value::f(s.conv16_miss, 2),
        Value::f(s.conv8_ipc, 2),
        Value::f(s.conv8_ipc_pred, 2),
        Value::f(s.conv8_miss, 2),
        Value::f(s.ipoly_ipc, 2),
        Value::f(s.ipoly_miss, 2),
        Value::f(s.ipoly_cp_ipc, 2),
        Value::f(s.ipoly_cp_ipc_pred, 2),
    ]
}

/// Pushes a measured row followed by the paper's published row.
fn push_with_paper(table: &mut Table, r: &Table2Row) {
    table.push_row(measured_row(r.bench.name(), r));
    let p = r.bench.paper_row();
    table.push_row(vec![
        Value::s("  (paper)"),
        Value::f(p.conv16_ipc, 2),
        Value::f(p.conv16_miss, 2),
        Value::f(p.conv8_ipc, 2),
        Value::f(p.conv8_ipc_pred, 2),
        Value::f(p.conv8_miss, 2),
        Value::f(p.ipoly_ipc, 2),
        Value::f(p.ipoly_miss, 2),
        Value::f(p.ipoly_cp_ipc, 2),
        Value::f(p.ipoly_cp_ipc_pred, 2),
    ]);
}

pub(super) fn table2(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.u64("ops")?;
    let rows = run_all(ops, 12345);
    let mut table = Table::new(
        "IPC and load miss ratio (measured over paper)",
        &TABLE2_COLUMNS,
    );
    for r in &rows {
        push_with_paper(&mut table, r);
    }
    let ints: Vec<_> = rows.iter().filter(|r| !r.bench.is_fp()).collect();
    let fps: Vec<_> = rows.iter().filter(|r| r.bench.is_fp()).collect();
    let all: Vec<_> = rows.iter().collect();
    let summary = Table::new("averages (geo-mean IPC, arith-mean miss)", &TABLE2_COLUMNS)
        .row(summary_row("Int avg", &summarize(&ints)))
        .row(summary_row("Fp avg", &summarize(&fps)))
        .row(summary_row("Combined", &summarize(&all)));

    let conv: Vec<f64> = rows.iter().map(|r| r.conv8_miss).collect();
    let ipoly: Vec<f64> = rows.iter().map(|r| r.ipoly_miss).collect();
    Ok(Report::new(format!(
        "E3 / Table 2: IPC and load miss ratio ({ops} instructions per configuration)"
    ))
    .param("ops", ops)
    .table(table)
    .table(summary)
    .note("paper combined: 1.36 10.47 | 1.27 1.28 16.53 | 1.33 9.68 | 1.29 1.33")
    .note(format!(
        "miss-ratio stddev: conv {:.2} -> ipoly {:.2}  (paper: 18.49 -> 5.16)",
        crate::std_dev(&conv),
        crate::std_dev(&ipoly)
    )))
}

pub(super) fn table3(a: &ExpArgs) -> Result<Report, DriverError> {
    let ops = a.u64("ops")?;
    let rows = run_all(ops, 12345);
    let bad: Vec<_> = rows.iter().filter(|r| r.bench.is_high_conflict()).collect();
    let good: Vec<_> = rows
        .iter()
        .filter(|r| !r.bench.is_high_conflict())
        .collect();
    let mut table = Table::new(
        "high-conflict programs (measured over paper)",
        &TABLE2_COLUMNS,
    );
    for r in &bad {
        push_with_paper(&mut table, r);
    }
    let sb = summarize(&bad);
    let sg = summarize(&good);
    let summary = Table::new("averages", &TABLE2_COLUMNS)
        .row(summary_row("Avg-bad", &sb))
        .row(summary_row("Avg-good", &sg));

    let gain_nopred = (sb.ipoly_cp_ipc / sb.conv8_ipc - 1.0) * 100.0;
    let gain_pred = (sb.ipoly_cp_ipc_pred / sb.conv8_ipc - 1.0) * 100.0;
    let vs_double = (sb.ipoly_cp_ipc_pred / sb.conv16_ipc - 1.0) * 100.0;
    let good_delta = (sg.ipoly_cp_ipc_pred / sg.conv8_ipc - 1.0) * 100.0;
    Ok(Report::new(format!(
        "E4 / Table 3: high-conflict programs ({ops} instructions per configuration)"
    ))
    .param("ops", ops)
    .table(table)
    .table(summary)
    .note("paper Avg-bad:  1.28  30.80 |  1.11  1.13  54.61 |  1.46  14.40 |  1.42  1.49")
    .note("paper Avg-good: 1.38   6.40 |  1.30  1.32   8.91 |  1.30   8.74 |  1.27  1.30")
    .note(format!(
        "bad-program IPC gain over conv-8KB: {gain_nopred:+.1}% without prediction (paper: +27%)"
    ))
    .note(format!(
        "bad-program IPC gain over conv-8KB: {gain_pred:+.1}% with prediction (paper: +33%)"
    ))
    .note(format!(
        "bad-program IPC vs doubling to 16KB: {vs_double:+.1}% (paper: +16%)"
    ))
    .note(format!(
        "good-program IPC change (I-Poly in CP, with prediction): {good_delta:+.1}% \
         (paper: about -1.7% without prediction)"
    )))
}

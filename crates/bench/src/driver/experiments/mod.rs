//! The experiment implementations behind the `cac` subcommands.
//!
//! Each submodule ports the logic of one group of retired standalone
//! binaries into functions from [`ExpArgs`](crate::driver::args::ExpArgs)
//! to [`Report`](crate::driver::report::Report); [`REGISTRY`] binds them
//! to subcommand names, legacy binary names, and declared parameters.
//!
//! Parameter declaration order matters: it is the positional-argument
//! order of the retired binaries, which the compatibility shims rely on.

mod ablations;
mod analytic;
mod benchmarks;
mod cache_level;
mod common;
mod configs;
mod corpus;
mod cpu_level;
mod figures;
mod hardware;
mod hier;
mod tables;
mod tools;

use crate::driver::args::{param, vparam};
use crate::driver::Experiment;

pub use cache_level::organization_matrix;

/// Every registered experiment, in help-display order.
pub const REGISTRY: &[Experiment] = &[
    // ----- paper figures & tables ------------------------------------
    Experiment {
        name: "fig1",
        legacy_bin: Some("fig1_stride_sweep"),
        group: "paper figures & tables",
        summary: "Figure 1: per-stride miss-ratio distribution of the four schemes",
        params: &[
            param("max-stride", "4096", "sweep strides 1..max (8B elements)"),
            param("passes", "16", "passes over the 64-element vector"),
        ],
        run: figures::fig1,
    },
    Experiment {
        name: "table1",
        legacy_bin: Some("table1_config"),
        group: "paper figures & tables",
        summary: "Table 1: functional units and processor parameters, verified",
        params: &[],
        run: tables::table1,
    },
    Experiment {
        name: "table2",
        legacy_bin: Some("table2_ipc"),
        group: "paper figures & tables",
        summary: "Table 2: IPC and load miss ratio, 18 workloads x 7 configurations",
        params: &[param("ops", "200000", "instructions per configuration")],
        run: tables::table2,
    },
    Experiment {
        name: "table3",
        legacy_bin: Some("table3_bad_programs"),
        group: "paper figures & tables",
        summary: "Table 3: the high-conflict programs and the headline IPC gains",
        params: &[param("ops", "200000", "instructions per configuration")],
        run: tables::table3,
    },
    // ----- cache-level studies ---------------------------------------
    Experiment {
        name: "missratio",
        legacy_bin: Some("missratio_comparison"),
        group: "cache-level studies",
        summary: "section 2.1: conventional vs I-Poly vs fully-associative miss ratios",
        params: &[param("ops", "400000", "ops per benchmark")],
        run: cache_level::missratio,
    },
    Experiment {
        name: "organizations",
        legacy_bin: Some("organizations_comparison"),
        group: "cache-level studies",
        summary: "section 2.1: every named 8KB cache organization, head to head",
        params: &[param("ops", "200000", "ops per benchmark")],
        run: cache_level::organizations,
    },
    Experiment {
        name: "column",
        legacy_bin: Some("column_assoc"),
        group: "cache-level studies",
        summary: "section 3.1 option 4: column-associative with polynomial rehash",
        params: &[param("ops", "400000", "ops per benchmark")],
        run: cache_level::column_assoc,
    },
    Experiment {
        name: "related",
        legacy_bin: Some("related_work_indexing"),
        group: "cache-level studies",
        summary: "section 2.1 related work: all placement functions on both evaluations",
        params: &[
            param("max-stride", "4096", "sweep strides 1..max"),
            param("ops", "150000", "ops per benchmark"),
        ],
        run: cache_level::related_work,
    },
    Experiment {
        name: "tiling",
        legacy_bin: Some("tiling_conflicts"),
        group: "cache-level studies",
        summary: "section 5: tiled matmul tile-size sweep, conventional vs I-Poly",
        params: &[param("n", "128", "matrix dimension")],
        run: cache_level::tiling,
    },
    Experiment {
        name: "lru-curve",
        legacy_bin: None,
        group: "cache-level studies",
        summary: "Mattson one-pass LRU miss-ratio curves over a size x associativity grid",
        params: &[
            param("bench", "swim", "workload model name"),
            param("ops", "400000", "ops to replay"),
            param("line", "32", "line size (bytes)"),
            param(
                "sizes",
                "1KiB,2KiB,4KiB,8KiB,16KiB,32KiB,64KiB",
                "comma-separated capacities",
            ),
            param("ways", "1,2,4,8", "comma-separated associativities"),
            param("sample", "1", "1-in-K set sampling (1 = exact)"),
        ],
        run: cache_level::lru_curve,
    },
    Experiment {
        name: "regions",
        legacy_bin: Some("debug_regions"),
        group: "cache-level studies",
        summary: "debugging aid: per-region miss breakdown for one benchmark",
        params: &[
            param("bench", "swim", "workload model name"),
            param("ops", "400000", "ops to replay"),
        ],
        run: cache_level::regions,
    },
    // ----- analytic screening ----------------------------------------
    Experiment {
        name: "analytic-predict",
        legacy_bin: None,
        group: "analytic screening",
        summary: "closed-form miss-ratio grid from one stack-distance pass, no replay",
        params: &[
            param("bench", "swim", "workload model name"),
            param("ops", "400000", "ops to observe"),
            param("line", "32", "line size (bytes)"),
            param(
                "sizes",
                "1KiB,2KiB,4KiB,8KiB,16KiB,32KiB,64KiB",
                "comma-separated capacities",
            ),
            param("ways", "1,2,4,8", "comma-separated associativities"),
            param("trace", "", "trace file (overrides the synthetic workload)"),
        ],
        run: analytic::predict,
    },
    Experiment {
        name: "analytic-validate",
        legacy_bin: None,
        group: "analytic screening",
        summary: "model-vs-simulation error over config files; exit 1 beyond the bound",
        params: &[
            vparam(
                "configs",
                "",
                "config files (one per argument; shell globs expand)",
            ),
            param("trace", "", "trace file (overrides the synthetic workload)"),
            param("bench", "tomcatv", "synthetic workload model"),
            param("ops", "200000", "synthetic workload length (ops)"),
            param("sample", "1", "1-in-K set sampling (1 = exact)"),
            param("bound", "5", "mean abs error bound (miss-% points)"),
        ],
        run: analytic::validate,
    },
    // ----- processor-level studies -----------------------------------
    Experiment {
        name: "options",
        legacy_bin: Some("options_comparison"),
        group: "processor-level studies",
        summary: "section 3.1: translation options (physical vs virtual-real) by IPC",
        params: &[param("ops", "120000", "instructions per benchmark")],
        run: cpu_level::options,
    },
    Experiment {
        name: "predictor",
        legacy_bin: Some("predictor_accuracy"),
        group: "processor-level studies",
        summary: "section 3.4: memory address predictability of the workload suite",
        params: &[param("ops", "400000", "ops per benchmark")],
        run: cpu_level::predictor_accuracy,
    },
    // ----- two-level hierarchy ---------------------------------------
    Experiment {
        name: "holes",
        legacy_bin: Some("holes_model"),
        group: "two-level hierarchy",
        summary: "section 3.3: hole probability, analytical model vs simulation",
        params: &[param("ops", "400000", "ops per benchmark")],
        run: hier::holes,
    },
    Experiment {
        name: "option2",
        legacy_bin: Some("option2_pagesize"),
        group: "two-level hierarchy",
        summary: "section 3.1 option 2: page-size-aware dynamic index switching",
        params: &[param("passes", "64", "kernel passes per phase")],
        run: hier::option2,
    },
    Experiment {
        name: "coherency",
        legacy_bin: Some("coherency_holes"),
        group: "two-level hierarchy",
        summary: "section 3.3 cause 3: external coherency holes on a snooping bus",
        params: &[param("rounds", "256", "traffic rounds")],
        run: hier::coherency,
    },
    // ----- hardware cost ---------------------------------------------
    Experiment {
        name: "xor-tree",
        legacy_bin: Some("xor_tree_cost"),
        group: "hardware cost",
        summary: "section 3.4: XOR-tree fan-in and the carry-lookahead slack argument",
        params: &[],
        run: hardware::xor_tree,
    },
    Experiment {
        name: "interleave",
        legacy_bin: Some("interleave_bandwidth"),
        group: "hardware cost",
        summary: "Rau [19]: bank-selection functions in interleaved memory",
        params: &[
            param("banks", "16", "number of memory banks"),
            param("busy", "6", "bank busy time (cycles)"),
            param("max-stride", "128", "sweep strides 1..=max"),
            param("accesses", "2048", "accesses per stride"),
        ],
        run: hardware::interleave,
    },
    // ----- ablations -------------------------------------------------
    Experiment {
        name: "ablation-poly",
        legacy_bin: Some("ablation_poly_choice"),
        group: "ablations",
        summary: "A1: irreducible vs reducible vs degenerate polynomial choice",
        params: &[param("ops", "200000", "ops per benchmark")],
        run: ablations::poly_choice,
    },
    Experiment {
        name: "ablation-address-bits",
        legacy_bin: Some("ablation_address_bits"),
        group: "ablations",
        summary: "A2: I-Poly hash input width vs miss ratio",
        params: &[param("ops", "200000", "ops per benchmark")],
        run: ablations::address_bits,
    },
    Experiment {
        name: "ablation-predictor",
        legacy_bin: Some("ablation_predictor"),
        group: "ablations",
        summary: "A3: address-predictor table size sweep",
        params: &[param("ops", "200000", "ops per benchmark")],
        run: cpu_level::ablation_predictor,
    },
    Experiment {
        name: "ablation-related-ipc",
        legacy_bin: Some("ablation_related_ipc"),
        group: "ablations",
        summary: "A4: related-work schemes through the full processor model",
        params: &[param("ops", "100000", "instructions per benchmark")],
        run: cpu_level::ablation_related_ipc,
    },
    Experiment {
        name: "ablation-write-policy",
        legacy_bin: Some("ablation_write_policy"),
        group: "ablations",
        summary: "A5: write policy x placement interaction",
        params: &[param("ops", "150000", "ops per benchmark")],
        run: ablations::write_policy,
    },
    Experiment {
        name: "ablation-l2-index",
        legacy_bin: Some("ablation_l2_index"),
        group: "ablations",
        summary: "A6: does the L2 index function change the hole rate?",
        params: &[
            param("blocks", "16384", "streamed blocks per round"),
            param("rounds", "6", "rounds over the stream"),
        ],
        run: hier::ablation_l2_index,
    },
    Experiment {
        name: "ablation-replacement",
        legacy_bin: Some("ablation_replacement"),
        group: "ablations",
        summary: "A7: LRU vs FIFO vs random replacement under skew",
        params: &[param("ops", "150000", "ops per benchmark")],
        run: ablations::replacement,
    },
    // ----- trace tools -----------------------------------------------
    Experiment {
        name: "sweep",
        legacy_bin: None,
        group: "trace tools",
        summary: "generalised stride sweep: any schemes, any geometry, CSV-friendly",
        params: &[
            param(
                "schemes",
                "modulo,xor-skew,ipoly,ipoly-skew",
                "comma-separated scheme list",
            ),
            param("max-stride", "512", "sweep strides 1..max"),
            param("passes", "16", "passes over the vector"),
            param("size", "8192", "cache capacity (bytes)"),
            param("line", "32", "line size (bytes)"),
            param("ways", "2", "associativity"),
            param(
                "checkpoint",
                "",
                "journal file for crash-safe kill-and-resume",
            ),
            param(
                "prune",
                "",
                "analytic = screen cells with the analytic tier before replay",
            ),
            param(
                "prune-band",
                "5",
                "pruning error band (miss-% points; with --prune)",
            ),
        ],
        run: figures::sweep,
    },
    Experiment {
        name: "replay",
        legacy_bin: None,
        group: "trace tools",
        summary: "stream a trace file through a configurable cache",
        params: &[
            param("trace", "", "trace file (binary or text, auto-detected)"),
            param("scheme", "ipoly-skew", "placement scheme"),
            param("size", "8192", "cache capacity (bytes)"),
            param("line", "32", "line size (bytes)"),
            param("ways", "2", "associativity"),
            param("chunk", "8192", "ops per replay chunk"),
            param(
                "mode",
                "strict",
                "strict | lenient (skip damaged binary blocks)",
            ),
        ],
        run: tools::replay,
    },
    Experiment {
        name: "trace-gen",
        legacy_bin: None,
        group: "trace tools",
        summary: "generate a workload-model trace file (binary or text)",
        params: &[
            param("bench", "swim", "workload model name"),
            param("ops", "1000000", "ops to generate"),
            param("out", "", "output file path (required)"),
            param("format", "binary", "binary | text"),
            param("seed", "12345", "generator seed"),
            param(
                "inject",
                "",
                "fault spec, e.g. flip=200,seed=7,truncate=4096,io-error=99",
            ),
        ],
        run: tools::trace_gen,
    },
    Experiment {
        name: "trace-convert",
        legacy_bin: None,
        group: "trace tools",
        summary: "convert a trace between text and binary formats",
        params: &[
            param("input", "", "input trace (format auto-detected)"),
            param("output", "", "output file path"),
            param("to", "", "target format (default: the other one)"),
        ],
        run: tools::trace_convert,
    },
    Experiment {
        name: "trace-info",
        legacy_bin: None,
        group: "trace tools",
        summary: "summarise a trace file (op mix, address range)",
        params: &[
            param("input", "", "trace file to inspect"),
            param(
                "verify",
                "false",
                "audit block framing and checksums (lenient walk)",
            ),
        ],
        run: tools::trace_info,
    },
    // ----- corpus tier -----------------------------------------------
    Experiment {
        name: "corpus-add",
        legacy_bin: None,
        group: "corpus tier",
        summary: "ingest a trace into a corpus (any format -> columnar store)",
        params: &[
            param("dir", "", "corpus directory (created on first add)"),
            param("name", "", "corpus-unique trace name"),
            param("input", "", "trace file to ingest (format auto-detected)"),
        ],
        run: corpus::corpus_add,
    },
    Experiment {
        name: "corpus-ls",
        legacy_bin: None,
        group: "corpus tier",
        summary: "list a corpus's stored traces (counts, sizes, content hashes)",
        params: &[param("dir", "", "corpus directory")],
        run: corpus::corpus_ls,
    },
    Experiment {
        name: "corpus-verify",
        legacy_bin: None,
        group: "corpus tier",
        summary: "audit every stored trace: hashes, checksums, record counts",
        params: &[param("dir", "", "corpus directory")],
        run: corpus::corpus_verify,
    },
    Experiment {
        name: "corpus-run",
        legacy_bin: None,
        group: "corpus tier",
        summary: "sweep every stored trace x config grid, recomputing only changed cells",
        params: &[
            param("dir", "", "corpus directory"),
            vparam(
                "configs",
                "",
                "config files (one per argument; shell globs expand)",
            ),
            param(
                "prune",
                "",
                "analytic = screen dominated configs before replay",
            ),
            param(
                "prune-band",
                "5",
                "pruning error band (miss-% points; with --prune)",
            ),
            param("workers", "1", "sweep worker threads"),
            param("chunk", "8192", "ops per replay chunk"),
            param("retry", "0", "retry attempts for transient failures"),
            param(
                "backoff-ms",
                "0",
                "base backoff delay between retries (deterministic jittered exponential)",
            ),
            param("retry-seed", "0", "seed for the backoff jitter stream"),
            param(
                "cell-budget",
                "",
                "per-cell replay budget (<N>[refs] or <X>secs); over-budget cells degrade to analytic estimates",
            ),
            param(
                "skip-threshold",
                "0",
                "lenient-decode skipped blocks tolerated per trace before the attempt fails",
            ),
            param(
                "explain",
                "false",
                "append the work-accounting table (replayed/restored/pruned)",
            ),
            param(
                "runner",
                "",
                "runner id for multi-runner fleets (distinct per concurrent process; default pid-<pid>)",
            ),
        ],
        run: corpus::corpus_run,
    },
    Experiment {
        name: "corpus-fsck",
        legacy_bin: None,
        group: "corpus tier",
        summary: "audit manifest/pool/journal consistency; --repair fixes the mechanically-safe subset",
        params: &[
            param("dir", "", "corpus directory"),
            param(
                "repair",
                "false",
                "repair orphaned temps, stale cells/claims, torn journal lines, duplicate quarantines",
            ),
        ],
        run: corpus::corpus_fsck,
    },
    Experiment {
        name: "corpus-chaos",
        legacy_bin: None,
        group: "corpus tier",
        summary: "fault-injection harness: run the fleet under seeded faults and audit convergence",
        params: &[
            param("dir", "", "corpus directory"),
            vparam(
                "configs",
                "",
                "config files (one per argument; shell globs expand)",
            ),
            param(
                "fault",
                "flip=200,seed=42",
                "fault spec: flip=<ppm>,seed=<n>,truncate=<off>,io-error=<off>",
            ),
            param(
                "faulty-attempts",
                "1",
                "leading attempts (per trace) that see the fault; more than --retry makes it persistent",
            ),
            param("trace", "", "restrict injection to this trace name (default: all)"),
            param("workers", "1", "sweep worker threads"),
            param("chunk", "8192", "ops per replay chunk"),
            param("retry", "2", "retry attempts for transient failures"),
            param("backoff-ms", "0", "base backoff delay between retries"),
            param("retry-seed", "0", "seed for the backoff jitter stream"),
            param(
                "cell-budget",
                "",
                "per-cell replay budget (<N>[refs] or <X>secs)",
            ),
            param(
                "skip-threshold",
                "0",
                "lenient-decode skipped blocks tolerated per trace",
            ),
        ],
        run: corpus::corpus_chaos,
    },
    // ----- benchmarks ------------------------------------------------
    Experiment {
        name: "bench-corpus",
        legacy_bin: None,
        group: "benchmarks",
        summary: "columnar streaming vs in-memory sweep throughput + incremental rerun speedup",
        params: &[
            param("bench", "swim", "workload model name"),
            param("ops", "1000000", "ops to generate"),
            param("seed", "12345", "generator seed"),
            param("chunk", "8192", "refs per replay chunk"),
            param(
                "repeat",
                "1",
                "runs per timed region; tables report the median",
            ),
        ],
        run: corpus::bench_corpus,
    },
    Experiment {
        name: "bench-sweep",
        legacy_bin: None,
        group: "benchmarks",
        summary: "sweep-engine throughput over the organization matrix (JSON-friendly)",
        params: &[
            param("bench", "swim", "workload model name"),
            param("ops", "1000000", "ops to generate"),
            param("seed", "12345", "generator seed"),
            param("workers", "0", "sweep worker threads (0 = auto)"),
            param("chunk", "8192", "refs per broadcast chunk"),
            param(
                "repeat",
                "1",
                "runs per timed region; tables report the median",
            ),
            param(
                "baseline",
                "true",
                "also time per-config replay (false to skip)",
            ),
        ],
        run: benchmarks::bench_sweep,
    },
    // ----- declarative configs ---------------------------------------
    Experiment {
        name: "run",
        legacy_bin: None,
        group: "declarative configs",
        summary: "replay a trace (file or synthetic) against a TOML-configured model",
        params: &[
            param(
                "config",
                "",
                "model description(s), comma-separated (TOML; see examples/*.toml)",
            ),
            param(
                "trace",
                "",
                "trace file (binary or text; default: synthetic workload)",
            ),
            param(
                "bench",
                "swim",
                "synthetic workload model when no trace is given",
            ),
            param("ops", "1000000", "synthetic workload length (ops)"),
            param("seed", "12345", "synthetic workload seed"),
            param("chunk", "8192", "ops per replay chunk"),
            param(
                "checkpoint",
                "",
                "journal file for crash-safe kill-and-resume",
            ),
        ],
        run: configs::run,
    },
    Experiment {
        name: "config-validate",
        legacy_bin: None,
        group: "declarative configs",
        summary: "parse and build config files, failing loudly on any rot",
        params: &[vparam(
            "files",
            "",
            "config files (one per argument; shell globs expand)",
        )],
        run: configs::validate,
    },
];

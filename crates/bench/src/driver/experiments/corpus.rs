//! The corpus tier's subcommands: `cac corpus add/ls/verify/run` and
//! `cac bench corpus`.
//!
//! `corpus run` is the fleet sweep: every stored trace × every config
//! file, through [`cac_corpus::run`]'s incremental engine. Its default
//! report is deliberately free of timings and cached/computed
//! distinctions — a rerun that restores every cell from the result
//! journal must render **byte-identical** to the cold run (CI diffs the
//! two). `--explain true` appends the work-accounting table for humans
//! and for the CI assertion that a no-op rerun replayed nothing.

use super::common::parse_benchmark;
use super::organization_matrix;
use super::tools::parse_bool;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_corpus::run::{run as corpus_run_engine, CellOutcome, RunOptions, RunReport};
use cac_corpus::supervisor::{CellBudget, ChaosPlan, RetryPolicy};
use cac_corpus::{Corpus, CorpusError};
use cac_sim::model::MemoryModel;
use cac_sim::sweep::Sweep;
use cac_trace::fault::FaultSpec;
use cac_trace::io::commitfs::{FaultFs, FaultPlan};
use cac_trace::io::{write_trace_columnar, ColumnarTraceReader};
use cac_trace::MemRef;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable carrying a [`FaultPlan`] spec (e.g.
/// `crash-op=9,seed=3`). When set, `corpus run` routes its journal and
/// manifest commits through the fault-injecting write layer — the CI
/// kill-mid-commit smoke drives crash recovery through the real binary
/// this way.
pub(super) const FAULT_FS_ENV: &str = "CAC_FAULT_FS";

/// Maps corpus-tier errors onto driver exit semantics: bad inputs
/// (missing files, damaged manifests/traces) exit 3, simulator-side
/// failures exit 1.
fn driver_err(e: CorpusError) -> DriverError {
    match e {
        CorpusError::Sim(e) => DriverError::Failed(e.to_string()),
        other => DriverError::Input(other.to_string()),
    }
}

fn require_dir(a: &ExpArgs) -> Result<PathBuf, DriverError> {
    let dir = a.str("dir");
    if dir.is_empty() {
        return Err(DriverError::Usage(
            "--dir is required (the corpus directory)".into(),
        ));
    }
    Ok(PathBuf::from(dir))
}

pub(super) fn corpus_add(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let name = a.str("name");
    let input = a.str("input");
    if name.is_empty() || input.is_empty() {
        return Err(DriverError::Usage(
            "usage: cac corpus add --dir <corpus> --name <trace-name> --input <trace-file>".into(),
        ));
    }
    let mut corpus = Corpus::open_or_init(&dir).map_err(driver_err)?;
    let entry = corpus.add(name, Path::new(input)).map_err(driver_err)?;
    Ok(Report::new(format!("corpus add: {name}"))
        .param("dir", dir.display())
        .param("name", name)
        .param("input", input)
        .table(
            Table::new(
                "stored",
                &["name", "file", "hash", "ops", "refs", "blocks", "bytes"],
            )
            .row(vec![
                Value::s(&entry.name),
                Value::s(&entry.file),
                Value::s(format!("{:016x}", entry.hash)),
                Value::u(entry.ops),
                Value::u(entry.refs),
                Value::u(entry.blocks),
                Value::u(entry.bytes),
            ]),
        ))
}

pub(super) fn corpus_ls(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let corpus = Corpus::open(&dir).map_err(driver_err)?;
    let mut table = Table::new(
        "traces",
        &[
            "name", "ops", "refs", "blocks", "bytes", "bytes/op", "hash", "status",
        ],
    );
    let mut quarantined = 0u64;
    for e in corpus.entries() {
        let status = match corpus.quarantined(&e.name) {
            Some(q) => {
                quarantined += 1;
                format!("QUARANTINED [{}]: {}", q.class, q.reason)
            }
            None => "ok".to_owned(),
        };
        table.push_row(vec![
            Value::s(&e.name),
            Value::u(e.ops),
            Value::u(e.refs),
            Value::u(e.blocks),
            Value::u(e.bytes),
            Value::f(e.bytes as f64 / e.ops.max(1) as f64, 2),
            Value::s(format!("{:016x}", e.hash)),
            Value::s(status),
        ]);
    }
    let mut report = Report::new(format!(
        "corpus ls: {} trace(s) in {}",
        corpus.entries().len(),
        dir.display()
    ))
    .param("dir", dir.display())
    .table(table);
    if quarantined > 0 {
        report = report.note(format!(
            "{quarantined} trace(s) quarantined; `corpus run` skips them \
             (re-add from a clean source to clear)"
        ));
    }
    Ok(report)
}

pub(super) fn corpus_verify(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let corpus = Corpus::open(&dir).map_err(driver_err)?;
    let reports = corpus.verify();
    let mut table = Table::new("verification", &["trace", "verdict", "detail"]);
    let mut damaged = 0u64;
    for r in &reports {
        if !r.ok {
            damaged += 1;
        }
        table.push_row(vec![
            Value::s(&r.name),
            Value::s(if r.ok { "ok" } else { "DAMAGED" }),
            Value::s(&r.detail),
        ]);
    }
    let mut report = Report::new(format!("corpus verify: {}", dir.display()))
        .param("dir", dir.display())
        .table(table);
    for q in corpus.manifest().quarantine.iter() {
        report = report.note(format!(
            "quarantined: {} [{}] — {}",
            q.name, q.class, q.reason
        ));
    }
    if damaged > 0 {
        report = report.flag_failures(damaged).note(format!(
            "{damaged} of {} trace(s) failed verification; re-add them from clean sources",
            reports.len()
        ));
    } else {
        report = report.note(format!(
            "all {} trace(s) verified: hashes, checksums and counts intact",
            reports.len()
        ));
    }
    Ok(report)
}

pub(super) fn corpus_fsck(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let repair = parse_bool("repair", a.str("repair"))?;
    // Not-a-corpus surfaces as CorpusError::Manifest -> Input (exit 3);
    // problems left unrepaired flag failures below (exit 1).
    let audit = cac_corpus::fsck::fsck(&dir, repair).map_err(driver_err)?;

    let inventory = Table::new("store", &["traces", "cells", "claims"]).row(vec![
        Value::u(audit.traces as u64),
        Value::u(audit.cells as u64),
        Value::u(audit.claims as u64),
    ]);
    let mut report = Report::new(format!("corpus fsck: {}", dir.display()))
        .param("dir", dir.display())
        .param("repair", repair)
        .table(inventory);

    if !audit.problems.is_empty() {
        let mut table = Table::new("problems", &["kind", "subject", "detail", "action"]);
        for p in &audit.problems {
            let action = if p.repaired {
                "repaired"
            } else if !p.repairable {
                "manual (re-add the trace)"
            } else if repair {
                "repair failed"
            } else {
                "repairable (rerun with --repair true)"
            };
            table.push_row(vec![
                Value::s(p.kind),
                Value::s(&p.subject),
                Value::s(&p.detail),
                Value::s(action),
            ]);
        }
        report = report.table(table);
    }

    let unrepaired = audit.unrepaired() as u64;
    if unrepaired > 0 {
        report = report.flag_failures(unrepaired).note(format!(
            "{unrepaired} problem(s) outstanding of {} found (exit 1)",
            audit.problems.len()
        ));
    } else if audit.problems.is_empty() {
        report = report.note("store is consistent: manifest, pool and journal agree");
    } else {
        report = report.note(format!(
            "all {} problem(s) repaired; the store is consistent now",
            audit.problems.len()
        ));
    }
    Ok(report)
}

/// Parses the shared supervision flags (`--retry`, `--retry-seed`,
/// `--backoff-ms`, `--cell-budget`, `--skip-threshold`) into run
/// options.
fn supervision_opts(a: &ExpArgs, opts: &mut RunOptions) -> Result<(), DriverError> {
    opts.retry = RetryPolicy {
        attempts: a.u32("retry")?,
        base_ms: a.u64("backoff-ms")?,
        seed: a.u64("retry-seed")?,
    };
    let budget = a.str("cell-budget");
    if !budget.is_empty() {
        opts.budget = Some(CellBudget::parse(budget).map_err(DriverError::Usage)?);
    }
    opts.skip_threshold = a.u64("skip-threshold")?;
    Ok(())
}

/// Renders one result cell's `(status, accesses, misses, miss %)`
/// columns. The rendering is a pure function of journaled cell content
/// — no timings, no cached/fresh markers — so a fully-restored rerun is
/// byte-identical to the cold run. `FAILED`/`DEGRADED`/`QUARANTINED`
/// cells count toward `failures` (report exits 1).
fn render_cell(cell: &CellOutcome, failures: &mut u64) -> [Value; 4] {
    match cell {
        CellOutcome::Done { stats, .. } => [
            Value::s("ok"),
            Value::u(stats.demand.accesses),
            Value::u(stats.demand.misses),
            Value::f(stats.demand.miss_ratio() * 100.0, 3),
        ],
        CellOutcome::Pruned { predicted, .. } => [
            Value::s("pruned"),
            Value::s("-"),
            Value::s("-"),
            Value::s(format!("PRUNED(predicted={:.2})", predicted * 100.0)),
        ],
        CellOutcome::Degraded { estimate, se, .. } => [
            Value::s("degraded"),
            Value::s("-"),
            Value::s("-"),
            Value::s(format!(
                "DEGRADED(estimate={:.2}, se={:.2})",
                estimate * 100.0,
                se * 100.0
            )),
        ],
        CellOutcome::Failed { reason, class, .. } => {
            *failures += 1;
            [
                Value::s("FAILED"),
                Value::s("-"),
                Value::s("-"),
                Value::s(format!("FAILED[{class}]({reason})")),
            ]
        }
        CellOutcome::Quarantined { reason } => {
            *failures += 1;
            [
                Value::s("QUARANTINED"),
                Value::s("-"),
                Value::s("-"),
                Value::s(format!("QUARANTINED({reason})")),
            ]
        }
    }
}

/// Renders the matrix table plus the count of failure-carrying cells.
fn render_matrix(report_data: &RunReport) -> (Table, u64) {
    let mut matrix = Table::new(
        "results",
        &["trace", "config", "status", "accesses", "misses", "miss %"],
    );
    let mut failures = 0u64;
    for row in &report_data.rows {
        for (config, cell) in report_data.configs.iter().zip(&row.cells) {
            let [status, accesses, misses, ratio] = render_cell(cell, &mut failures);
            matrix.push_row(vec![
                Value::s(&row.trace),
                Value::s(config),
                status,
                accesses,
                misses,
                ratio,
            ]);
        }
    }
    (matrix, failures)
}

/// Renders the per-trace health table for traces with supervision
/// events (retries, skipped blocks, quarantines). Empty when the fleet
/// was healthy — so healthy cold/warm reruns still render identically.
fn render_health(report_data: &RunReport) -> Option<Table> {
    let mut table = Table::new(
        "trace health",
        &[
            "trace",
            "attempts",
            "backoff ms",
            "skipped blocks",
            "status",
        ],
    );
    let mut any = false;
    for h in &report_data.health {
        let unhealthy = h.attempts > 1 || h.skipped.any() || h.quarantined.is_some();
        if !unhealthy {
            continue;
        }
        any = true;
        let backoffs = if h.backoffs_ms.is_empty() {
            "-".to_owned()
        } else {
            h.backoffs_ms
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("+")
        };
        table.push_row(vec![
            Value::s(&h.trace),
            Value::u(u64::from(h.attempts)),
            Value::s(backoffs),
            Value::u(h.skipped.blocks),
            Value::s(if h.note.is_empty() {
                "ok"
            } else {
                h.note.as_str()
            }),
        ]);
    }
    any.then_some(table)
}

fn work_table(report_data: &RunReport) -> Table {
    let s = report_data.summary;
    Table::new("work", &["what", "cells"])
        .row(vec![Value::s("replayed"), Value::u(s.replayed)])
        .row(vec![
            Value::s("restored from journal"),
            Value::u(s.restored),
        ])
        .row(vec![Value::s("pruned (this run)"), Value::u(s.pruned)])
        .row(vec![Value::s("failed"), Value::u(s.failed)])
        .row(vec![
            Value::s("degraded (over budget)"),
            Value::u(s.degraded),
        ])
        .row(vec![
            Value::s("quarantined (skipped)"),
            Value::u(s.quarantined),
        ])
        .row(vec![Value::s("retried attempts"), Value::u(s.retried)])
        .row(vec![
            Value::s("traces screened analytically"),
            Value::u(s.screened_traces),
        ])
}

pub(super) fn corpus_run(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let config_paths: Vec<String> = a.list("configs").iter().map(|s| s.to_string()).collect();
    if config_paths.is_empty() {
        return Err(DriverError::Usage(
            "at least one --configs file is required (e.g. examples/*.toml)".into(),
        ));
    }
    let prune = match a.str("prune") {
        "" => false,
        "analytic" => true,
        other => {
            return Err(DriverError::Usage(format!(
                "unknown prune mode {other:?}; valid: analytic"
            )))
        }
    };
    let band_pct: f64 = a
        .str("prune-band")
        .parse()
        .map_err(|_| DriverError::Usage("--prune-band expects a number (miss-% points)".into()))?;
    if !(0.0..=100.0).contains(&band_pct) {
        return Err(DriverError::Usage(
            "--prune-band must be between 0 and 100 (miss-% points)".into(),
        ));
    }
    let explain = parse_bool("explain", a.str("explain"))?;
    let mut opts = RunOptions {
        workers: a.usize("workers")?.max(1),
        chunk: a.usize("chunk")?.max(1),
        prune,
        prune_band: band_pct / 100.0,
        ..RunOptions::default()
    };
    supervision_opts(a, &mut opts)?;
    let runner = a.str("runner");
    if !runner.is_empty() {
        opts.runner = Some(runner.to_owned());
    }
    if let Ok(spec) = std::env::var(FAULT_FS_ENV) {
        if !spec.trim().is_empty() {
            let plan = FaultPlan::parse(&spec)
                .map_err(|e| DriverError::Usage(format!("{FAULT_FS_ENV}: {e}")))?;
            opts.fs = Arc::new(FaultFs::new(plan));
        }
    }

    let mut corpus = Corpus::open(&dir).map_err(driver_err)?;
    let report_data = corpus_run_engine(&mut corpus, &config_paths, &opts).map_err(driver_err)?;

    let (matrix, mut failures) = render_matrix(&report_data);
    let mut report = Report::new(format!(
        "corpus run: {} trace(s) x {} config(s)",
        report_data.rows.len(),
        report_data.configs.len()
    ))
    .param("dir", dir.display())
    .param("configs", config_paths.join(","))
    .param("prune", a.str("prune"))
    .table(matrix);
    if prune {
        report = report.param("prune-band", a.str("prune-band"));
    }
    if let Some(budget) = opts.budget {
        report = report.param("cell-budget", budget);
    }
    if let Some(health) = render_health(&report_data) {
        report = report.table(health);
    }
    let skipped = report_data.skipped_blocks();
    if skipped > 0 {
        failures += skipped;
        report = report.note(format!(
            "lenient decode skipped {skipped} block(s) across the corpus; \
             results may under-count (exit 1)"
        ));
    }
    if failures > 0 {
        report = report.flag_failures(failures).note(
            "failed cells are journaled and their traces quarantined; \
             re-add a trace from a clean source to recompute its row",
        );
    }
    if explain {
        report = report
            .param("explain", "true")
            .table(work_table(&report_data));
    }
    Ok(report)
}

pub(super) fn corpus_chaos(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let config_paths: Vec<String> = a.list("configs").iter().map(|s| s.to_string()).collect();
    if config_paths.is_empty() {
        return Err(DriverError::Usage(
            "at least one --configs file is required (e.g. examples/*.toml)".into(),
        ));
    }
    let spec = FaultSpec::parse(a.str("fault")).map_err(DriverError::Usage)?;
    let faulty_attempts = a.u32("faulty-attempts")?;
    let target = a.str("trace");
    let mut opts = RunOptions {
        workers: a.usize("workers")?.max(1),
        chunk: a.usize("chunk")?.max(1),
        // The harness must never contaminate real incremental state:
        // scratch journals, no persisted quarantine.
        persist_quarantine: false,
        ..RunOptions::default()
    };
    supervision_opts(a, &mut opts)?;

    let mut corpus = Corpus::open(&dir).map_err(driver_err)?;
    let baseline_journal = dir.join("chaos-baseline.journal");
    let injected_journal = dir.join("chaos-injected.journal");
    std::fs::remove_file(&baseline_journal).ok();
    std::fs::remove_file(&injected_journal).ok();

    // Undisturbed reference run with the same supervision settings.
    let mut baseline_opts = opts.clone();
    baseline_opts.journal = Some(baseline_journal);
    let baseline =
        corpus_run_engine(&mut corpus, &config_paths, &baseline_opts).map_err(driver_err)?;

    // The same fleet under injected faults.
    let mut injected_opts = opts.clone();
    injected_opts.journal = Some(injected_journal);
    injected_opts.chaos = Some(ChaosPlan {
        spec,
        faulty_attempts,
        trace: (!target.is_empty()).then(|| target.to_owned()),
    });
    let injected =
        corpus_run_engine(&mut corpus, &config_paths, &injected_opts).map_err(driver_err)?;

    // Convergence audit: every injected cell must either be
    // byte-identical to the undisturbed run or carry an explicit
    // degraded/failed/quarantined classification — never silently
    // wrong, never silently missing.
    let mut identical = 0u64;
    let mut unhealthy = 0u64;
    let mut diverged: Vec<String> = Vec::new();
    for (brow, irow) in baseline.rows.iter().zip(&injected.rows) {
        for (j, (bc, ic)) in brow.cells.iter().zip(&irow.cells).enumerate() {
            let cell_name = || format!("{} x {}", irow.trace, injected.configs[j]);
            match (bc, ic) {
                (CellOutcome::Done { stats: bs, .. }, CellOutcome::Done { stats: is, .. }) => {
                    if bs == is {
                        identical += 1;
                    } else {
                        diverged.push(format!("{}: stats differ under injection", cell_name()));
                    }
                }
                (
                    CellOutcome::Pruned { predicted: bp, .. },
                    CellOutcome::Pruned { predicted: ip, .. },
                ) => {
                    if bp.to_bits() == ip.to_bits() {
                        identical += 1;
                    } else {
                        diverged.push(format!(
                            "{}: prune prediction differs under injection",
                            cell_name()
                        ));
                    }
                }
                (
                    CellOutcome::Degraded {
                        estimate: be,
                        se: bse,
                        ..
                    },
                    CellOutcome::Degraded {
                        estimate: ie,
                        se: ise,
                        ..
                    },
                ) if be.to_bits() == ie.to_bits() && bse.to_bits() == ise.to_bits() => {
                    identical += 1;
                }
                (
                    _,
                    CellOutcome::Degraded { .. }
                    | CellOutcome::Failed { .. }
                    | CellOutcome::Quarantined { .. },
                ) => unhealthy += 1,
                (b, i) => diverged.push(format!(
                    "{}: {} became {} under injection",
                    cell_name(),
                    cell_kind(b),
                    cell_kind(i)
                )),
            }
        }
    }
    if let Some(first) = diverged.first() {
        return Err(DriverError::Failed(format!(
            "chaos divergence: {} cell(s) silently changed under injection; first: {first}",
            diverged.len()
        )));
    }

    let (matrix, _) = render_matrix(&injected);
    let quarantined: Vec<&cac_corpus::TraceHealth> = injected
        .health
        .iter()
        .filter(|h| h.quarantined.is_some())
        .collect();
    let mut report = Report::new(format!(
        "corpus chaos: {} trace(s) x {} config(s) under fault injection",
        injected.rows.len(),
        injected.configs.len()
    ))
    .param("dir", dir.display())
    .param("fault", a.str("fault"))
    .param("faulty-attempts", faulty_attempts)
    .param("retry", a.str("retry"))
    .table(matrix);
    if !target.is_empty() {
        report = report.param("trace", target);
    }
    if let Some(health) = render_health(&injected) {
        report = report.table(health);
    }
    report = report.table(
        Table::new("convergence", &["what", "cells"])
            .row(vec![
                Value::s("byte-identical to undisturbed run"),
                Value::u(identical),
            ])
            .row(vec![
                Value::s("degraded / failed / quarantined"),
                Value::u(unhealthy),
            ])
            .row(vec![Value::s("silently diverged"), Value::u(0)]),
    );
    report = report.table(work_table(&injected));
    for h in &quarantined {
        report = report.note(format!(
            "quarantine (not persisted by chaos): {} — {}",
            h.trace,
            h.quarantined.as_deref().unwrap_or("")
        ));
    }
    if unhealthy > 0 {
        report = report.flag_failures(unhealthy).note(format!(
            "converged: {identical} cell(s) byte-identical, {unhealthy} \
             classified unhealthy, 0 silently dropped (exit 1)"
        ));
    } else {
        report = report.note(format!(
            "converged: all {identical} cell(s) byte-identical to the \
             undisturbed run despite injection"
        ));
    }
    Ok(report)
}

fn cell_kind(c: &CellOutcome) -> &'static str {
    match c {
        CellOutcome::Done { .. } => "ok",
        CellOutcome::Pruned { .. } => "pruned",
        CellOutcome::Degraded { .. } => "degraded",
        CellOutcome::Failed { .. } => "failed",
        CellOutcome::Quarantined { .. } => "quarantined",
    }
}

/// Median of a non-empty sample set (lower-middle for even counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

pub(super) fn bench_corpus(a: &ExpArgs) -> Result<Report, DriverError> {
    let bench = parse_benchmark(a.str("bench"))?;
    let ops = a.usize("ops")?;
    let seed = a.u64("seed")?;
    let chunk = a.usize("chunk")?.max(1);
    let repeat = a.usize("repeat")?.max(1);
    if ops == 0 {
        return Err(DriverError::Usage("--ops must be positive".into()));
    }

    let scratch = std::env::temp_dir().join(format!("cac-bench-corpus-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch)
        .map_err(|e| DriverError::Failed(format!("cannot create scratch dir: {e}")))?;
    let result = bench_corpus_inner(a, bench, ops, seed, chunk, repeat, &scratch);
    std::fs::remove_dir_all(&scratch).ok();
    result
}

fn bench_corpus_inner(
    a: &ExpArgs,
    bench: cac_trace::SpecBenchmark,
    ops: usize,
    seed: u64,
    chunk: usize,
    repeat: usize,
    scratch: &Path,
) -> Result<Report, DriverError> {
    let organizations = organization_matrix();

    // Stage the workload once: in-memory references for the baseline,
    // and the same ops as a stored columnar file for the streaming side.
    let trace_file = scratch.join("bench.cact");
    {
        let file = File::create(&trace_file)
            .map_err(|e| DriverError::Failed(format!("cannot create trace file: {e}")))?;
        let w = std::io::BufWriter::new(file);
        write_trace_columnar(w, bench.generator(seed).take(ops))?;
    }
    let refs: Vec<MemRef> = {
        let reader = ColumnarTraceReader::new(BufReader::new(
            File::open(&trace_file).map_err(|e| DriverError::Failed(e.to_string()))?,
        ))
        .map_err(|e| DriverError::Failed(e.to_string()))?;
        let mut refs = Vec::new();
        for op in reader {
            if let Some(r) = op
                .map_err(|e| DriverError::Failed(e.to_string()))?
                .mem_ref()
            {
                refs.push(r);
            }
        }
        refs
    };
    let trace_bytes = std::fs::metadata(&trace_file).map(|m| m.len()).unwrap_or(0);
    let model_refs = (refs.len() * organizations.len()) as u64;

    let build_models = || -> Result<Vec<Box<dyn MemoryModel>>, DriverError> {
        organizations
            .iter()
            .map(|(_, cfg)| cfg.build().map_err(DriverError::from))
            .collect()
    };
    let engine = Sweep::new().workers(1).chunk_ops(chunk);

    // The two arms are interleaved per repeat and their order alternates
    // — back-to-back pairs see the same background load, and neither arm
    // always runs second (under CPU-quota throttling the second of two
    // sustained runs is systematically slower). In-memory sweep is the
    // ≥90% gate's reference throughput; the streaming sweep runs the
    // same models over the columnar file, so the gap between the two is
    // the decode cost.
    let mut memory_runs = Vec::with_capacity(repeat);
    let mut stream_runs = Vec::with_capacity(repeat);
    let run_memory = |runs: &mut Vec<f64>| -> Result<(), DriverError> {
        let mut models = build_models()?;
        let start = Instant::now();
        engine.run_refs(&mut models, &refs);
        runs.push(start.elapsed().as_secs_f64());
        Ok(())
    };
    let run_stream = |runs: &mut Vec<f64>| -> Result<(), DriverError> {
        let mut models = build_models()?;
        let source = ColumnarTraceReader::new(BufReader::new(
            File::open(&trace_file).map_err(|e| DriverError::Failed(e.to_string()))?,
        ))
        .map_err(|e| DriverError::Failed(e.to_string()))?;
        let start = Instant::now();
        engine
            .run_source(&mut models, source)
            .map_err(|e| DriverError::Failed(e.to_string()))?;
        runs.push(start.elapsed().as_secs_f64());
        Ok(())
    };
    for r in 0..repeat {
        if r % 2 == 0 {
            run_memory(&mut memory_runs)?;
            run_stream(&mut stream_runs)?;
        } else {
            run_stream(&mut stream_runs)?;
            run_memory(&mut memory_runs)?;
        }
    }
    let memory_secs = median(&mut memory_runs);
    let stream_secs = median(&mut stream_runs);
    let stream_fraction = memory_secs / stream_secs.max(1e-9);

    // Incremental speedup: a cold corpus run replays every cell, the
    // warm rerun restores them all from the journal.
    let corpus_dir = scratch.join("corpus");
    let mut corpus = Corpus::init(&corpus_dir).map_err(driver_err)?;
    corpus.add("bench", &trace_file).map_err(driver_err)?;
    let config_paths: Vec<String> = [
        ("dm.toml", "name = \"dm\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 1\n"),
        ("2way.toml", "name = \"2way\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\n"),
        (
            "ipoly.toml",
            "name = \"ipoly\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\nindex = \"ipoly\"\n",
        ),
        (
            "skew.toml",
            "name = \"skew\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\nindex = \"ipoly-skew\"\n",
        ),
    ]
    .iter()
    .map(|(name, body)| {
        let p = scratch.join(name);
        std::fs::write(&p, body).map_err(|e| DriverError::Failed(e.to_string()))?;
        Ok(p.to_string_lossy().into_owned())
    })
    .collect::<Result<_, DriverError>>()?;
    let opts = RunOptions {
        workers: 1,
        chunk,
        ..RunOptions::default()
    };
    let start = Instant::now();
    let cold = corpus_run_engine(&mut corpus, &config_paths, &opts).map_err(driver_err)?;
    let cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = corpus_run_engine(&mut corpus, &config_paths, &opts).map_err(driver_err)?;
    let warm_secs = start.elapsed().as_secs_f64();

    let mut table = Table::new(
        "corpus throughput",
        &["metric", "refs", "model-refs", "seconds", "refs/sec"],
    );
    table.push_row(vec![
        Value::s("in-memory sweep (run_refs)"),
        Value::u(refs.len() as u64),
        Value::u(model_refs),
        Value::f(memory_secs, 3),
        Value::f(model_refs as f64 / memory_secs.max(1e-9), 0),
    ]);
    table.push_row(vec![
        Value::s("columnar streaming sweep (run_source)"),
        Value::u(refs.len() as u64),
        Value::u(model_refs),
        Value::f(stream_secs, 3),
        Value::f(model_refs as f64 / stream_secs.max(1e-9), 0),
    ]);

    let incr = Table::new("incremental rerun", &["run", "cells replayed", "seconds"])
        .row(vec![
            Value::s("cold (empty journal)"),
            Value::u(cold.summary.replayed),
            Value::f(cold_secs, 3),
        ])
        .row(vec![
            Value::s("warm (all cells journaled)"),
            Value::u(warm.summary.replayed),
            Value::f(warm_secs, 3),
        ]);

    let mut report = Report::new(format!(
        "bench corpus: {} refs x {} organizations, columnar store",
        refs.len(),
        organizations.len()
    ))
    .param("bench", bench.name())
    .param("ops", ops)
    .param("seed", seed)
    .param("chunk", chunk)
    .param("repeat", repeat)
    .table(table)
    .table(incr)
    .note(format!(
        "columnar file: {trace_bytes} bytes for {ops} ops ({:.2} bytes/op)",
        trace_bytes as f64 / ops.max(1) as f64
    ))
    .note(format!(
        "streaming sustains {:.1}% of in-memory sweep throughput (gate: >= 90%)",
        stream_fraction * 100.0
    ))
    .note(format!(
        "incremental speedup: warm rerun {:.0}x faster than cold ({} -> {} replayed cells)",
        cold_secs / warm_secs.max(1e-9),
        cold.summary.replayed,
        warm.summary.replayed
    ));
    if repeat > 1 {
        report = report.note(format!(
            "timings are the median of {repeat} runs per measured region"
        ));
    }
    if warm.summary.replayed != 0 {
        report = report
            .flag_failures(warm.summary.replayed)
            .note("BUG: warm rerun replayed cells; the incremental store is not caching");
    }
    let _ = a;
    Ok(report)
}

//! The corpus tier's subcommands: `cac corpus add/ls/verify/run` and
//! `cac bench corpus`.
//!
//! `corpus run` is the fleet sweep: every stored trace × every config
//! file, through [`cac_corpus::run`]'s incremental engine. Its default
//! report is deliberately free of timings and cached/computed
//! distinctions — a rerun that restores every cell from the result
//! journal must render **byte-identical** to the cold run (CI diffs the
//! two). `--explain true` appends the work-accounting table for humans
//! and for the CI assertion that a no-op rerun replayed nothing.

use super::common::parse_benchmark;
use super::organization_matrix;
use super::tools::parse_bool;
use crate::driver::args::ExpArgs;
use crate::driver::report::{Report, Table, Value};
use crate::driver::DriverError;
use cac_corpus::run::{run as corpus_run_engine, CellOutcome, RunOptions};
use cac_corpus::{Corpus, CorpusError};
use cac_sim::model::MemoryModel;
use cac_sim::sweep::Sweep;
use cac_trace::io::{write_trace_columnar, ColumnarTraceReader};
use cac_trace::MemRef;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Maps corpus-tier errors onto driver exit semantics: bad inputs
/// (missing files, damaged manifests/traces) exit 3, simulator-side
/// failures exit 1.
fn driver_err(e: CorpusError) -> DriverError {
    match e {
        CorpusError::Sim(e) => DriverError::Failed(e.to_string()),
        other => DriverError::Input(other.to_string()),
    }
}

fn require_dir(a: &ExpArgs) -> Result<PathBuf, DriverError> {
    let dir = a.str("dir");
    if dir.is_empty() {
        return Err(DriverError::Usage(
            "--dir is required (the corpus directory)".into(),
        ));
    }
    Ok(PathBuf::from(dir))
}

pub(super) fn corpus_add(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let name = a.str("name");
    let input = a.str("input");
    if name.is_empty() || input.is_empty() {
        return Err(DriverError::Usage(
            "usage: cac corpus add --dir <corpus> --name <trace-name> --input <trace-file>".into(),
        ));
    }
    let mut corpus = Corpus::open_or_init(&dir).map_err(driver_err)?;
    let entry = corpus.add(name, Path::new(input)).map_err(driver_err)?;
    Ok(Report::new(format!("corpus add: {name}"))
        .param("dir", dir.display())
        .param("name", name)
        .param("input", input)
        .table(
            Table::new(
                "stored",
                &["name", "file", "hash", "ops", "refs", "blocks", "bytes"],
            )
            .row(vec![
                Value::s(&entry.name),
                Value::s(&entry.file),
                Value::s(format!("{:016x}", entry.hash)),
                Value::u(entry.ops),
                Value::u(entry.refs),
                Value::u(entry.blocks),
                Value::u(entry.bytes),
            ]),
        ))
}

pub(super) fn corpus_ls(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let corpus = Corpus::open(&dir).map_err(driver_err)?;
    let mut table = Table::new(
        "traces",
        &["name", "ops", "refs", "blocks", "bytes", "bytes/op", "hash"],
    );
    for e in corpus.entries() {
        table.push_row(vec![
            Value::s(&e.name),
            Value::u(e.ops),
            Value::u(e.refs),
            Value::u(e.blocks),
            Value::u(e.bytes),
            Value::f(e.bytes as f64 / e.ops.max(1) as f64, 2),
            Value::s(format!("{:016x}", e.hash)),
        ]);
    }
    Ok(Report::new(format!(
        "corpus ls: {} trace(s) in {}",
        corpus.entries().len(),
        dir.display()
    ))
    .param("dir", dir.display())
    .table(table))
}

pub(super) fn corpus_verify(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let corpus = Corpus::open(&dir).map_err(driver_err)?;
    let reports = corpus.verify();
    let mut table = Table::new("verification", &["trace", "verdict", "detail"]);
    let mut damaged = 0u64;
    for r in &reports {
        if !r.ok {
            damaged += 1;
        }
        table.push_row(vec![
            Value::s(&r.name),
            Value::s(if r.ok { "ok" } else { "DAMAGED" }),
            Value::s(&r.detail),
        ]);
    }
    let mut report = Report::new(format!("corpus verify: {}", dir.display()))
        .param("dir", dir.display())
        .table(table);
    if damaged > 0 {
        report = report.flag_failures(damaged).note(format!(
            "{damaged} of {} trace(s) failed verification; re-add them from clean sources",
            reports.len()
        ));
    } else {
        report = report.note(format!(
            "all {} trace(s) verified: hashes, checksums and counts intact",
            reports.len()
        ));
    }
    Ok(report)
}

pub(super) fn corpus_run(a: &ExpArgs) -> Result<Report, DriverError> {
    let dir = require_dir(a)?;
    let config_paths: Vec<String> = a.list("configs").iter().map(|s| s.to_string()).collect();
    if config_paths.is_empty() {
        return Err(DriverError::Usage(
            "at least one --configs file is required (e.g. examples/*.toml)".into(),
        ));
    }
    let prune = match a.str("prune") {
        "" => false,
        "analytic" => true,
        other => {
            return Err(DriverError::Usage(format!(
                "unknown prune mode {other:?}; valid: analytic"
            )))
        }
    };
    let band_pct: f64 = a
        .str("prune-band")
        .parse()
        .map_err(|_| DriverError::Usage("--prune-band expects a number (miss-% points)".into()))?;
    if !(0.0..=100.0).contains(&band_pct) {
        return Err(DriverError::Usage(
            "--prune-band must be between 0 and 100 (miss-% points)".into(),
        ));
    }
    let explain = parse_bool("explain", a.str("explain"))?;
    let opts = RunOptions {
        workers: a.usize("workers")?.max(1),
        chunk: a.usize("chunk")?.max(1),
        prune,
        prune_band: band_pct / 100.0,
    };

    let corpus = Corpus::open(&dir).map_err(driver_err)?;
    let report_data = corpus_run_engine(&corpus, &config_paths, &opts).map_err(driver_err)?;

    // The matrix table renders from journaled cell content only — no
    // timings, no cached/fresh markers — so a fully-restored rerun is
    // byte-identical to the cold run.
    let mut matrix = Table::new(
        "results",
        &["trace", "config", "status", "accesses", "misses", "miss %"],
    );
    let mut failures = 0u64;
    for row in &report_data.rows {
        for (config, cell) in report_data.configs.iter().zip(&row.cells) {
            let (status, accesses, misses, ratio) = match cell {
                CellOutcome::Done { stats, .. } => (
                    Value::s("ok"),
                    Value::u(stats.demand.accesses),
                    Value::u(stats.demand.misses),
                    Value::f(stats.demand.miss_ratio() * 100.0, 3),
                ),
                CellOutcome::Pruned { predicted, .. } => (
                    Value::s("pruned"),
                    Value::s("-"),
                    Value::s("-"),
                    Value::s(format!("PRUNED(predicted={:.2})", predicted * 100.0)),
                ),
                CellOutcome::Failed { reason } => {
                    failures += 1;
                    (
                        Value::s("FAILED"),
                        Value::s("-"),
                        Value::s("-"),
                        Value::s(format!("FAILED({reason})")),
                    )
                }
            };
            matrix.push_row(vec![
                Value::s(&row.trace),
                Value::s(config),
                status,
                accesses,
                misses,
                ratio,
            ]);
        }
    }
    let mut report = Report::new(format!(
        "corpus run: {} trace(s) x {} config(s)",
        report_data.rows.len(),
        report_data.configs.len()
    ))
    .param("dir", dir.display())
    .param("configs", config_paths.join(","))
    .param("prune", a.str("prune"))
    .table(matrix);
    if prune {
        report = report.param("prune-band", a.str("prune-band"));
    }
    if failures > 0 {
        report = report
            .flag_failures(failures)
            .note("failed cells are not journaled; the next run retries them");
    }
    if explain {
        let s = report_data.summary;
        report = report.param("explain", "true").table(
            Table::new("work", &["what", "cells"])
                .row(vec![Value::s("replayed"), Value::u(s.replayed)])
                .row(vec![
                    Value::s("restored from journal"),
                    Value::u(s.restored),
                ])
                .row(vec![Value::s("pruned (this run)"), Value::u(s.pruned)])
                .row(vec![Value::s("failed"), Value::u(s.failed)])
                .row(vec![
                    Value::s("traces screened analytically"),
                    Value::u(s.screened_traces),
                ]),
        );
    }
    Ok(report)
}

/// Median of a non-empty sample set (lower-middle for even counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

pub(super) fn bench_corpus(a: &ExpArgs) -> Result<Report, DriverError> {
    let bench = parse_benchmark(a.str("bench"))?;
    let ops = a.usize("ops")?;
    let seed = a.u64("seed")?;
    let chunk = a.usize("chunk")?.max(1);
    let repeat = a.usize("repeat")?.max(1);
    if ops == 0 {
        return Err(DriverError::Usage("--ops must be positive".into()));
    }

    let scratch = std::env::temp_dir().join(format!("cac-bench-corpus-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch)
        .map_err(|e| DriverError::Failed(format!("cannot create scratch dir: {e}")))?;
    let result = bench_corpus_inner(a, bench, ops, seed, chunk, repeat, &scratch);
    std::fs::remove_dir_all(&scratch).ok();
    result
}

fn bench_corpus_inner(
    a: &ExpArgs,
    bench: cac_trace::SpecBenchmark,
    ops: usize,
    seed: u64,
    chunk: usize,
    repeat: usize,
    scratch: &Path,
) -> Result<Report, DriverError> {
    let organizations = organization_matrix();

    // Stage the workload once: in-memory references for the baseline,
    // and the same ops as a stored columnar file for the streaming side.
    let trace_file = scratch.join("bench.cact");
    {
        let file = File::create(&trace_file)
            .map_err(|e| DriverError::Failed(format!("cannot create trace file: {e}")))?;
        let w = std::io::BufWriter::new(file);
        write_trace_columnar(w, bench.generator(seed).take(ops))?;
    }
    let refs: Vec<MemRef> = {
        let reader = ColumnarTraceReader::new(BufReader::new(
            File::open(&trace_file).map_err(|e| DriverError::Failed(e.to_string()))?,
        ))
        .map_err(|e| DriverError::Failed(e.to_string()))?;
        let mut refs = Vec::new();
        for op in reader {
            if let Some(r) = op
                .map_err(|e| DriverError::Failed(e.to_string()))?
                .mem_ref()
            {
                refs.push(r);
            }
        }
        refs
    };
    let trace_bytes = std::fs::metadata(&trace_file).map(|m| m.len()).unwrap_or(0);
    let model_refs = (refs.len() * organizations.len()) as u64;

    let build_models = || -> Result<Vec<Box<dyn MemoryModel>>, DriverError> {
        organizations
            .iter()
            .map(|(_, cfg)| cfg.build().map_err(DriverError::from))
            .collect()
    };
    let engine = Sweep::new().workers(1).chunk_ops(chunk);

    // The two arms are interleaved per repeat and their order alternates
    // — back-to-back pairs see the same background load, and neither arm
    // always runs second (under CPU-quota throttling the second of two
    // sustained runs is systematically slower). In-memory sweep is the
    // ≥90% gate's reference throughput; the streaming sweep runs the
    // same models over the columnar file, so the gap between the two is
    // the decode cost.
    let mut memory_runs = Vec::with_capacity(repeat);
    let mut stream_runs = Vec::with_capacity(repeat);
    let run_memory = |runs: &mut Vec<f64>| -> Result<(), DriverError> {
        let mut models = build_models()?;
        let start = Instant::now();
        engine.run_refs(&mut models, &refs);
        runs.push(start.elapsed().as_secs_f64());
        Ok(())
    };
    let run_stream = |runs: &mut Vec<f64>| -> Result<(), DriverError> {
        let mut models = build_models()?;
        let source = ColumnarTraceReader::new(BufReader::new(
            File::open(&trace_file).map_err(|e| DriverError::Failed(e.to_string()))?,
        ))
        .map_err(|e| DriverError::Failed(e.to_string()))?;
        let start = Instant::now();
        engine
            .run_source(&mut models, source)
            .map_err(|e| DriverError::Failed(e.to_string()))?;
        runs.push(start.elapsed().as_secs_f64());
        Ok(())
    };
    for r in 0..repeat {
        if r % 2 == 0 {
            run_memory(&mut memory_runs)?;
            run_stream(&mut stream_runs)?;
        } else {
            run_stream(&mut stream_runs)?;
            run_memory(&mut memory_runs)?;
        }
    }
    let memory_secs = median(&mut memory_runs);
    let stream_secs = median(&mut stream_runs);
    let stream_fraction = memory_secs / stream_secs.max(1e-9);

    // Incremental speedup: a cold corpus run replays every cell, the
    // warm rerun restores them all from the journal.
    let corpus_dir = scratch.join("corpus");
    let mut corpus = Corpus::init(&corpus_dir).map_err(driver_err)?;
    corpus.add("bench", &trace_file).map_err(driver_err)?;
    let config_paths: Vec<String> = [
        ("dm.toml", "name = \"dm\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 1\n"),
        ("2way.toml", "name = \"2way\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\n"),
        (
            "ipoly.toml",
            "name = \"ipoly\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\nindex = \"ipoly\"\n",
        ),
        (
            "skew.toml",
            "name = \"skew\"\n[cache]\nsize = \"8KiB\"\nline = 32\nways = 2\nindex = \"ipoly-skew\"\n",
        ),
    ]
    .iter()
    .map(|(name, body)| {
        let p = scratch.join(name);
        std::fs::write(&p, body).map_err(|e| DriverError::Failed(e.to_string()))?;
        Ok(p.to_string_lossy().into_owned())
    })
    .collect::<Result<_, DriverError>>()?;
    let opts = RunOptions {
        workers: 1,
        chunk,
        ..RunOptions::default()
    };
    let start = Instant::now();
    let cold = corpus_run_engine(&corpus, &config_paths, &opts).map_err(driver_err)?;
    let cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = corpus_run_engine(&corpus, &config_paths, &opts).map_err(driver_err)?;
    let warm_secs = start.elapsed().as_secs_f64();

    let mut table = Table::new(
        "corpus throughput",
        &["metric", "refs", "model-refs", "seconds", "refs/sec"],
    );
    table.push_row(vec![
        Value::s("in-memory sweep (run_refs)"),
        Value::u(refs.len() as u64),
        Value::u(model_refs),
        Value::f(memory_secs, 3),
        Value::f(model_refs as f64 / memory_secs.max(1e-9), 0),
    ]);
    table.push_row(vec![
        Value::s("columnar streaming sweep (run_source)"),
        Value::u(refs.len() as u64),
        Value::u(model_refs),
        Value::f(stream_secs, 3),
        Value::f(model_refs as f64 / stream_secs.max(1e-9), 0),
    ]);

    let incr = Table::new("incremental rerun", &["run", "cells replayed", "seconds"])
        .row(vec![
            Value::s("cold (empty journal)"),
            Value::u(cold.summary.replayed),
            Value::f(cold_secs, 3),
        ])
        .row(vec![
            Value::s("warm (all cells journaled)"),
            Value::u(warm.summary.replayed),
            Value::f(warm_secs, 3),
        ]);

    let mut report = Report::new(format!(
        "bench corpus: {} refs x {} organizations, columnar store",
        refs.len(),
        organizations.len()
    ))
    .param("bench", bench.name())
    .param("ops", ops)
    .param("seed", seed)
    .param("chunk", chunk)
    .param("repeat", repeat)
    .table(table)
    .table(incr)
    .note(format!(
        "columnar file: {trace_bytes} bytes for {ops} ops ({:.2} bytes/op)",
        trace_bytes as f64 / ops.max(1) as f64
    ))
    .note(format!(
        "streaming sustains {:.1}% of in-memory sweep throughput (gate: >= 90%)",
        stream_fraction * 100.0
    ))
    .note(format!(
        "incremental speedup: warm rerun {:.0}x faster than cold ({} -> {} replayed cells)",
        cold_secs / warm_secs.max(1e-9),
        cold.summary.replayed,
        warm.summary.replayed
    ));
    if repeat > 1 {
        report = report.note(format!(
            "timings are the median of {repeat} runs per measured region"
        ));
    }
    if warm.summary.replayed != 0 {
        report = report
            .flag_failures(warm.summary.replayed)
            .note("BUG: warm rerun replayed cells; the incremental store is not caching");
    }
    let _ = a;
    Ok(report)
}

//! The experiment report model.
//!
//! Every experiment produces a [`Report`] — a titled set of named
//! [`Table`]s plus free-form notes — instead of printing ad-hoc text.
//! One report renders to all the output formats the `cac` CLI offers:
//!
//! * [`Report::to_text`] — aligned human-readable tables (the format the
//!   retired per-experiment binaries printed);
//! * [`Report::to_json`] — a machine-readable document for dashboards
//!   and regression tooling;
//! * [`Report::to_csv`] — flat rows for spreadsheets and plotting.
//!
//! # Example
//!
//! ```
//! use cac_bench::driver::report::{Report, Table, Value};
//!
//! let report = Report::new("demo")
//!     .param("ops", "1000")
//!     .table(
//!         Table::new("miss ratios", &["scheme", "miss %"])
//!             .row(vec![Value::s("conv"), Value::f(13.84, 2)])
//!             .row(vec![Value::s("ipoly"), Value::f(7.14, 2)]),
//!     )
//!     .note("paper: conv 13.84, ipoly 7.14");
//! assert!(report.to_text().contains("13.84"));
//! assert!(report.to_json().contains("\"miss ratios\""));
//! assert!(report.to_csv().starts_with("scheme,miss %"));
//! ```

use std::fmt::Write as _;

/// One cell of a report table.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string cell.
    Str(String),
    /// An unsigned integer cell.
    UInt(u64),
    /// A signed integer cell.
    Int(i64),
    /// A float cell with a fixed number of decimals for text/CSV
    /// rendering (JSON always carries the full value).
    Float(f64, u8),
}

impl Value {
    /// String cell.
    pub fn s(v: impl Into<String>) -> Value {
        Value::Str(v.into())
    }

    /// Unsigned-integer cell.
    pub fn u(v: u64) -> Value {
        Value::UInt(v)
    }

    /// Signed-integer cell.
    pub fn i(v: i64) -> Value {
        Value::Int(v)
    }

    /// Float cell rendered with `decimals` places in text and CSV.
    pub fn f(v: f64, decimals: u8) -> Value {
        Value::Float(v, decimals)
    }

    /// Text/CSV rendering of the cell.
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::UInt(v) => v.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v, d) => format!("{v:.prec$}", prec = *d as usize),
        }
    }

    /// The cell as an `f64`, if numeric (used by tests and tooling that
    /// compare measured numbers without reparsing text).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Str(_) => None,
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            Value::Float(v, _) => Some(*v),
        }
    }

    fn to_json(&self) -> String {
        match self {
            Value::Str(s) => json_string(s),
            Value::UInt(v) => v.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v, _) => json_f64(*v),
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// A named table: column headers plus rows of [`Value`] cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name (rendered as a section heading; used as the CSV
    /// `table` discriminator when a report holds several tables).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each should have `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (builder style).
    #[must_use]
    pub fn row(mut self, cells: Vec<Value>) -> Self {
        self.push_row(cells);
        self
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<Value>) {
        debug_assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }
}

/// A complete experiment result: parameters, tables, notes, and
/// (text-only) rendered extras such as terminal charts.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report title (the experiment's headline).
    pub title: String,
    /// Effective parameters, in declaration order.
    pub params: Vec<(String, String)>,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form observations (paper reference values, shape checks).
    pub notes: Vec<String>,
    /// Pre-rendered text blocks (terminal charts); included in
    /// [`Report::to_text`] only.
    pub text_blocks: Vec<String>,
    /// Number of failed cells the report carries (degraded sweep rows,
    /// skipped trace blocks). Not rendered directly — the tables name
    /// the failures — but a non-zero count makes `cac` exit 1.
    pub failures: u64,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Records an effective parameter (builder style).
    #[must_use]
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Appends a table (builder style).
    #[must_use]
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Appends a note (builder style).
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Appends a pre-rendered text block (builder style).
    #[must_use]
    pub fn text_block(mut self, block: impl Into<String>) -> Self {
        self.text_blocks.push(block.into());
        self
    }

    /// Adds to the report's failure count (builder style); see
    /// [`Report::failures`].
    #[must_use]
    pub fn flag_failures(mut self, n: u64) -> Self {
        self.failures += n;
        self
    }

    /// Renders the report in the requested format.
    pub fn render(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Text => self.to_text(),
            OutputFormat::Json => self.to_json(),
            OutputFormat::Csv => self.to_csv(),
        }
    }

    /// Human-readable rendering: aligned columns, notes at the end.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if !self.params.is_empty() {
            let params: Vec<String> = self
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(out, "({})", params.join(", "));
        }
        for table in &self.tables {
            out.push('\n');
            if !table.name.is_empty() {
                let _ = writeln!(out, "## {}", table.name);
            }
            // Column widths from headers and rendered cells.
            let mut widths: Vec<usize> = table.columns.iter().map(String::len).collect();
            let rendered: Vec<Vec<String>> = table
                .rows
                .iter()
                .map(|row| row.iter().map(Value::render).collect())
                .collect();
            for row in &rendered {
                for (i, cell) in row.iter().enumerate() {
                    if i < widths.len() {
                        widths[i] = widths[i].max(cell.len());
                    } else {
                        widths.push(cell.len());
                    }
                }
            }
            let header: Vec<String> = table
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", header.join("  ").trim_end());
            for (row, cells) in table.rows.iter().zip(&rendered) {
                let line: Vec<String> = cells
                    .iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        // Left-align string cells (labels), right-align numbers.
                        if matches!(row.get(i), Some(Value::Str(_))) && i == 0 {
                            format!("{cell:<w$}", w = widths[i])
                        } else {
                            format!("{cell:>w$}", w = widths[i])
                        }
                    })
                    .collect();
                let _ = writeln!(out, "{}", line.join("  ").trim_end());
            }
        }
        for note in &self.notes {
            out.push('\n');
            let _ = writeln!(out, "{note}");
        }
        for block in &self.text_blocks {
            out.push('\n');
            out.push_str(block);
            if !block.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// JSON rendering of the full report (tables, params, notes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"title\":{}", json_string(&self.title));
        out.push_str(",\"params\":{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push_str("},\"tables\":[");
        for (ti, table) in self.tables.iter().enumerate() {
            if ti > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{},\"columns\":[", json_string(&table.name));
            for (i, c) in table.columns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(c));
            }
            out.push_str("],\"rows\":[");
            for (ri, row) in table.rows.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                out.push('[');
                for (i, cell) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&cell.to_json());
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(n));
        }
        out.push_str("]}");
        out
    }

    /// CSV rendering. A single-table report emits plain `header\nrows`;
    /// with several tables, each block is preceded by a `# table: name`
    /// comment line and separated by a blank line. Notes and text blocks
    /// are omitted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let multi = self.tables.len() > 1;
        for (ti, table) in self.tables.iter().enumerate() {
            if ti > 0 {
                out.push('\n');
            }
            if multi {
                let _ = writeln!(out, "# table: {}", table.name);
            }
            let header: Vec<String> = table.columns.iter().map(|c| csv_field(c)).collect();
            let _ = writeln!(out, "{}", header.join(","));
            for row in &table.rows {
                let line: Vec<String> = row.iter().map(|c| csv_field(&c.render())).collect();
                let _ = writeln!(out, "{}", line.join(","));
            }
        }
        out
    }
}

/// Output format selected with the CLI's `--format` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned human-readable text (default).
    #[default]
    Text,
    /// Machine-readable JSON document.
    Json,
    /// Comma-separated rows.
    Csv,
}

impl OutputFormat {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Option<OutputFormat> {
        match s {
            "text" => Some(OutputFormat::Text),
            "json" => Some(OutputFormat::Json),
            "csv" => Some(OutputFormat::Csv),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new("t")
            .param("ops", 10)
            .table(
                Table::new("a", &["name", "n", "pct"])
                    .row(vec![Value::s("x,y"), Value::u(3), Value::f(1.5, 2)])
                    .row(vec![Value::s("z\"q"), Value::u(400), Value::f(0.125, 3)]),
            )
            .table(Table::new("b", &["k"]).row(vec![Value::i(-7)]))
            .note("a note")
            .text_block("#### chart ####")
    }

    #[test]
    fn text_alignment_and_blocks() {
        let text = sample().to_text();
        assert!(text.contains("## a"));
        assert!(text.contains("1.50"));
        assert!(text.contains("0.125"));
        assert!(text.contains("a note"));
        assert!(text.contains("#### chart ####"));
        assert!(text.contains("(ops=10)"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let json = sample().to_json();
        assert!(json.contains("\"z\\\"q\""));
        assert!(json.contains("\"rows\":[[\"x,y\",3,1.5]"));
        assert!(json.contains("\"notes\":[\"a note\"]"));
        assert!(!json.contains("chart"), "text blocks are text-only");
        assert!(json.contains("\"params\":{\"ops\":\"10\"}"));
    }

    #[test]
    fn csv_quotes_and_separates_tables() {
        let csv = sample().to_csv();
        assert!(csv.contains("# table: a"));
        assert!(csv.contains("\"x,y\",3,1.50"));
        assert!(csv.contains("\"z\"\"q\",400,0.125"));
        assert!(csv.contains("# table: b"));
        let single = Report::new("s").table(Table::new("only", &["c"]));
        assert!(!single.to_csv().contains("# table"));
    }

    #[test]
    fn value_helpers() {
        assert_eq!(Value::f(1.0 / 3.0, 2).render(), "0.33");
        assert_eq!(Value::u(9).as_f64(), Some(9.0));
        assert_eq!(Value::s("x").as_f64(), None);
        assert_eq!(OutputFormat::parse("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("yaml"), None);
    }
}
